"""Quickstart: build an MQA system and hold a three-round dialogue.

Run:  python examples/quickstart.py
"""

from repro import DatasetSpec, MQAConfig, MQASystem


def main() -> None:
    # 1. Configure the system.  Every knob here maps to a control in the
    #    paper's configuration panel; defaults give CLIP embeddings, learned
    #    modality weights, an HNSW navigation graph, the MUST retrieval
    #    framework, and the grounded template LLM.
    config = MQAConfig(
        dataset=DatasetSpec(domain="scenes", size=400, seed=7),
        weight_learning={"steps": 30, "batch_size": 16},
        result_count=5,
    )

    # 2. Build: generates the knowledge base, encodes it, learns weights,
    #    and constructs the navigation graph index.
    system = MQASystem.from_config(config)
    print(system.status_report())
    print()
    print("learned modality weights:", {str(m): round(w, 2) for m, w in system.weights.items()})
    print()

    # 3. Converse.  Round one: plain text.
    answer = system.ask("i would like some images of foggy clouds")
    print("user: i would like some images of foggy clouds")
    print("mqa :", answer.text)
    for item in answer.items:
        print(f"      #{item.object_id}  {item.description}  (score {item.score:.3f})")
    print()

    # 4. Round two: click the top result and refine — the selected image
    #    augments the query (the dotted arrow in the paper's Figure 2).
    system.select(0)
    answer = system.refine("i like this one, could you find more similar images")
    print("user: i like this one, could you find more similar images")
    print("mqa :", answer.text)
    for item in answer.items:
        print(f"      #{item.object_id}  {item.description}  (score {item.score:.3f})")
    print()

    # 5. Round three: narrow further.
    system.select(0)
    answer = system.refine("perfect, now only at dusk please")
    print("user: perfect, now only at dusk please")
    print("mqa :", answer.text)
    for item in answer.items:
        print(f"      #{item.object_id}  {item.description}  (score {item.score:.3f})")


if __name__ == "__main__":
    main()
