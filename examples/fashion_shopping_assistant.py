"""The paper's Figure 1 scenario: a multi-round fashion shopping dialogue.

A user looks for "a long-sleeved top for older women", inspects the results,
then asks for "a floral pattern" on the item they liked.  The example prints
the whole QA-panel transcript plus the evolving concept alignment, showing
how each refinement round folds the selected item's image into the query.

Run:  python examples/fashion_shopping_assistant.py
"""

from repro import DatasetSpec, MQAConfig, MQASystem


def show(kb, answer) -> None:
    for item in answer.items:
        concepts = ", ".join(kb.get(item.object_id).concepts)
        marker = "*" if item.preferred else " "
        print(f"   {marker} #{item.object_id:<4} [{concepts}]")


def main() -> None:
    config = MQAConfig(
        dataset=DatasetSpec(domain="fashion", size=500, seed=11),
        weight_learning={"steps": 30, "batch_size": 16},
        result_count=5,
    )
    system = MQASystem.from_config(config)
    kb = system.kb

    print("=== round 1: text request ===")
    request = "a long-sleeved top for older women"
    print("user:", request)
    answer = system.ask(request)
    print("mqa :", answer.text)
    show(kb, answer)

    # The user clicks the best match and asks for a floral variant.
    print()
    print("=== round 2: refine with a pattern ===")
    chosen = system.select(0)
    print(f"user: (selects #{chosen}) could you add a floral pattern to this style?")
    answer = system.refine("could you add a floral pattern to this style")
    print("mqa :", answer.text)
    show(kb, answer)

    floral_hits = sum(
        1 for item in answer.items if "floral" in kb.get(item.object_id).concepts
    )
    print(f"\nfloral items among results: {floral_hits}/{len(answer.items)}")

    print()
    print("=== round 3: adjust the colour ===")
    chosen = system.select(0)
    print(f"user: (selects #{chosen}) the same but in blue, please")
    answer = system.refine("the same but in blue please")
    print("mqa :", answer.text)
    show(kb, answer)


if __name__ == "__main__":
    main()
