"""The paper's Figure 5: a two-round comparison of retrieval frameworks.

Identical queries run against MUST, MR, JE, and the generative-image
baseline (the DALL·E 2 stand-in).  Round one is the text request "foggy
clouds"; round two refines from the user's selected image.  For each
framework the script prints the returned items with their true concepts and
the alignment to the user's intent, so the qualitative ranking of the
paper's figure becomes a number.

Run:  python examples/framework_comparison.py
"""

from repro import DatasetSpec, RawQuery, generate_knowledge_base
from repro.encoders import build_encoder_set
from repro.index import build_index
from repro.llm import GenerativeImageModel
from repro.retrieval import build_framework
from repro.weights import VectorWeightLearner, WeightLearningConfig


def alignment(kb, object_id, target_latent) -> float:
    return float(kb.get(object_id).latent @ target_latent)


def main() -> None:
    kb = generate_knowledge_base(DatasetSpec(domain="scenes", size=500, seed=7))
    encoder_set = build_encoder_set("clip-joint", kb, seed=3)
    weights = VectorWeightLearner(
        WeightLearningConfig(steps=30, batch_size=16)
    ).fit(kb, encoder_set).weights
    builder = lambda: build_index("hnsw", {"m": 8, "ef_construction": 48})

    frameworks = {}
    for name in ("must", "mr", "je"):
        framework = build_framework(name)
        framework.setup(kb, encoder_set, builder, weights=weights)
        frameworks[name] = framework

    target_round1 = kb.space.compose(["foggy", "clouds"])
    print('round 1 — user: "could you assist me in finding images of foggy clouds?"')
    selections = {}
    for name, framework in frameworks.items():
        response = framework.retrieve(RawQuery.from_text("foggy clouds"), k=3, budget=64)
        scores = [alignment(kb, i, target_round1) for i in response.ids]
        print(f"  {name:5s} -> ids {response.ids}  alignment "
              + ", ".join(f"{s:.2f}" for s in scores))
        selections[name] = response.ids[0]

    # The generative baseline draws an image instead of retrieving one.
    generated = GenerativeImageModel(kb, seed=0).generate("foggy clouds")
    print(f"  gen   -> synthesises an image (alignment "
          f"{float(generated.latent @ target_round1):.2f}, grounded in KB: "
          f"{generated.grounded_object_id is not None})")

    print()
    print('round 2 — user selects their favourite and asks:')
    print('          "i like this one, could you provide more similar images of foggy clouds?"')
    for name, framework in frameworks.items():
        selected = kb.get(selections[name])
        target_round2 = kb.space.compose(
            list(dict.fromkeys(list(selected.concepts) + ["foggy", "clouds"]))
        )
        query = RawQuery.from_text_and_image(
            "more similar images of foggy clouds",
            selected.get("image"),
        )
        response = framework.retrieve(query, k=4, budget=64)
        ids = [i for i in response.ids if i != selections[name]][:3]
        scores = [alignment(kb, i, target_round2) for i in ids]
        print(f"  {name:5s} -> ids {ids}  alignment "
              + ", ".join(f"{s:.2f}" for s in scores))

    generated2 = GenerativeImageModel(kb, seed=0).generate(
        "more similar images of foggy clouds", round_index=1
    )
    print(f"  gen   -> synthesises again (hallucinated concepts: "
          f"{', '.join(generated2.hallucinated_concepts)})")
    print()
    print("expected shape (paper): MUST best in both rounds; MR competitive in")
    print("round 1 but degrading in round 2; JE behind; generation plausible")
    print("but never grounded in the knowledge base.")


if __name__ == "__main__":
    main()
