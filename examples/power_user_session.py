"""A power-user session: every advanced interaction feature in one dialogue.

Walks a single conversation that uses, in order: metadata-filtered search
(`where=`), per-query modality weights, negative feedback (`reject`),
LLM-guided query rewriting, grounded attribute QA, live ingestion, and
deletion — the feature set a production deployment layers on top of the
paper's core loop.

Run:  python examples/power_user_session.py
"""

from repro import DatasetSpec, MQAConfig, MQASystem


def show(kb, answer) -> None:
    for item in answer.items:
        concepts = ", ".join(kb.get(item.object_id).concepts)
        print(f"    #{item.object_id:<4} [{concepts}]")


def main() -> None:
    config = MQAConfig(
        dataset=DatasetSpec(domain="products", size=400, seed=9),
        weight_learning={"steps": 25, "batch_size": 12},
        llm="attribute-qa",
        query_rewriting=True,
        result_count=4,
    )
    system = MQASystem.from_config(config)
    kb = system.kb

    print("=== 1. filtered search: only leather items ===")
    answer = system.ask(
        "a classic bag", where=lambda obj: "leather" in obj.concepts
    )
    show(kb, answer)
    assert all("leather" in kb.get(i).concepts for i in answer.ids)

    print("\n=== 2. per-query weights: trust the image, ignore my wording ===")
    reference = kb.get(answer.ids[0])
    answer = system.ask(
        "something roughly like this",
        image=reference.get("image"),
        weights={"text": 0.2, "image": 1.8},
    )
    show(kb, answer)

    print("\n=== 3. negative feedback: not that one ===")
    rejected = system.reject(0)
    print(f"    (user rejects #{rejected})")
    answer = system.ask("something roughly like this", image=reference.get("image"))
    assert rejected not in answer.ids
    show(kb, answer)

    print("\n=== 4. vague refinement, rescued by query rewriting ===")
    system.select(0)
    answer = system.refine("more please")  # rewriter injects carried intent
    show(kb, answer)

    print("\n=== 5. grounded attribute QA over the current results ===")
    answer = system.ask("which of these are leather?")
    print("    mqa:", answer.text)

    print("\n=== 6. live ingestion: merchant adds a product ===")
    new_id = system.ingest(["bag", "leather", "burgundy"], metadata={"sku": "B-77"})
    answer = system.ask("a burgundy leather bag")
    marker = "  <= just ingested" if new_id in answer.ids else ""
    print(f"    results: {answer.ids}{marker}")

    print("\n=== 7. deletion: product discontinued ===")
    system.remove(new_id)
    answer = system.ask("a burgundy leather bag")
    assert new_id not in answer.ids
    print(f"    results after removal: {answer.ids}")

    print("\nsession transcript has", system.session.round_count, "rounds;")
    print("cache hit rate:", round(system.coordinator.execution.cache.hit_rate, 2))


if __name__ == "__main__":
    main()
