"""Building a custom navigation graph with the five-stage pipeline.

The paper: "users can modify existing navigation graphs (e.g., NSG, HNSW,
DiskANN, Starling) or initiate custom graphs via the backend API."  This
example composes a novel index from the stage library — random-regular
initialisation (Vamana), exact-kNN candidates (NSG), strict-RNG selection,
repair, and random multi-entry points — registers it, and serves it through
the full MQA system exactly like a built-in.

Run:  python examples/custom_index_pipeline.py
"""

from repro import DatasetSpec, MQAConfig, MQASystem
from repro.index import GraphPipelineSpec, PipelineGraphIndex, register_index
from repro.index.stages import (
    candidates_exact_knn,
    connect_repair,
    entry_random,
    init_random_regular,
    select_mrng,
)


def build_custom_spec() -> GraphPipelineSpec:
    """A hybrid graph: NSG-style edges over a Vamana-style warm start."""
    return GraphPipelineSpec(
        name="hybrid-demo",
        init=init_random_regular(max_degree=12, out_degree=6, seed=0),
        candidates=candidates_exact_knn(24),
        selection=select_mrng(12),
        connectivity=connect_repair(),
        entry=entry_random(count=2, seed=0),
    )


def main() -> None:
    register_index("hybrid-demo", lambda params: PipelineGraphIndex(build_custom_spec()))

    config = MQAConfig(
        dataset=DatasetSpec(domain="movies", size=300, seed=13),
        index="hybrid-demo",
        weight_learning={"steps": 25, "batch_size": 16},
    )
    system = MQASystem.from_config(config)
    print(system.status_report())

    # Inspect the constructed graph through the framework.
    framework = system.coordinator.execution.framework
    index = framework._index  # the unified multi-vector index
    print()
    print("custom index:", index.describe())
    print("stage execution:")
    for report in index.stage_reports:
        print(f"  {report.name:<14} {report.status.value:<8} {report.elapsed * 1000:7.1f} ms")

    print()
    answer = system.ask("an acclaimed dark thriller in an urban setting")
    print("user: an acclaimed dark thriller in an urban setting")
    print("mqa :", answer.text)
    for item in answer.items:
        concepts = ", ".join(system.kb.get(item.object_id).concepts)
        print(f"    #{item.object_id:<4} [{concepts}]")


if __name__ == "__main__":
    main()
