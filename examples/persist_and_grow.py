"""Persistence and live growth: save, reload, ingest, re-query.

Demonstrates the operational lifecycle a production deployment needs on
top of the paper's demo:

1. build a knowledge base + unified index, and save both to disk;
2. reload them in a "fresh process" without rebuilding;
3. ingest new objects into the *live* system (no rebuild) and retrieve
   them immediately;
4. inspect the navigation graph's health with the diagnostics report.

Run:  python examples/persist_and_grow.py
"""

import tempfile
from pathlib import Path

from repro import (
    DatasetSpec,
    MQAConfig,
    MQASystem,
    generate_knowledge_base,
    load_knowledge_base,
    save_knowledge_base,
)
from repro.distance import MultiVectorSchema, WeightedMultiVectorKernel
from repro.encoders import build_encoder_set
from repro.index import MustGraphIndex, MustGraphParams, analyze_graph, load_index, save_index


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="mqa-demo-"))
    print(f"working under {workdir}\n")

    # ------------------------------------------------------------------
    # 1. build once, save everything
    # ------------------------------------------------------------------
    kb = generate_knowledge_base(DatasetSpec(domain="products", size=400, seed=9))
    encoder_set = build_encoder_set("clip-joint", kb, seed=3)
    schema = MultiVectorSchema(encoder_set.dims())
    kernel = WeightedMultiVectorKernel(schema, [0.9, 1.1])
    corpus = kernel.stack_corpus(encoder_set.encode_corpus(list(kb)))

    index = MustGraphIndex(MustGraphParams(max_degree=12, candidate_pool=32))
    index.build(corpus, kernel)
    print(f"built {index.describe()} in {index.build_seconds:.2f}s")

    save_knowledge_base(kb, workdir / "kb")
    save_index(index, workdir / "index")
    print("saved knowledge base and index\n")

    # ------------------------------------------------------------------
    # 2. reload without rebuilding
    # ------------------------------------------------------------------
    kb2 = load_knowledge_base(workdir / "kb")
    index2 = load_index(workdir / "index")
    print(f"reloaded: {index2.describe()}")
    query = corpus[5]
    assert index.search(query, k=3).ids == index2.search(query, k=3).ids
    print("reloaded index returns identical results\n")

    # ------------------------------------------------------------------
    # 3. live ingestion through the full system
    # ------------------------------------------------------------------
    system = MQASystem.from_knowledge_base(
        kb2,
        MQAConfig(
            weight_learning={"steps": 25, "batch_size": 12},
            index_params={"m": 8, "ef_construction": 48},
        ),
    )
    new_id = system.ingest(
        ["coat", "fur", "burgundy"], metadata={"source": "merchant feed"}
    )
    print(f"ingested new object #{new_id} (coat / fur / burgundy)")
    answer = system.ask("a burgundy fur coat")
    marker = " <= just ingested" if new_id in answer.ids else ""
    print(f"query 'a burgundy fur coat' returns: {answer.ids}{marker}\n")

    # ------------------------------------------------------------------
    # 4. graph health report
    # ------------------------------------------------------------------
    report = analyze_graph(index2.graph, index2.vectors, index2.kernel, sample=40)
    print(report.render())


if __name__ == "__main__":
    main()
