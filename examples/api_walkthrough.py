"""Driving MQA through the backend API (the Flask stand-in).

Walks the exact endpoint sequence the demo's React frontend performs:
fetch options, configure, apply, monitor status, converse, ingest a new
object live, and read the event log — all as JSON-dict requests against
:class:`repro.server.ApiServer`.

Run:  python examples/api_walkthrough.py
"""

import json

from repro.core import MQAConfig
from repro.data import DatasetSpec
from repro.server import ApiServer


def call(server, method, path, body=None):
    response = server.handle(method, path, body)
    print(f"{method} {path} {'(' + json.dumps(body) + ')' if body else ''}")
    if not response["ok"]:
        print("  ERROR:", response["error"])
    return response


def main() -> None:
    server = ApiServer(
        MQAConfig(
            dataset=DatasetSpec(domain="scenes", size=300, seed=7),
            weight_learning={"steps": 25, "batch_size": 12},
        )
    )

    # 1. The frontend populates its dropdowns.
    options = call(server, "GET", "/options")["options"]
    print("  frameworks:", options["framework"])
    print("  indexes   :", options["index"])

    # 2. The user flips two options and applies.
    call(server, "POST", "/configure", {"option": "framework", "value": "must"})
    call(server, "POST", "/configure", {"option": "result_count", "value": 4})
    applied = call(server, "POST", "/apply")
    print("  summary:", applied["summary"]["framework"], "/", applied["summary"]["index"])

    # 3. The status panel refreshes.
    status = call(server, "GET", "/status")
    for milestone in status["milestones"][:3]:
        print(f"  [{milestone['state']}] {milestone['name']} ({milestone['elapsed_ms']} ms)")
    weights = call(server, "GET", "/weights")["weights"]
    print("  weights:", {k: round(v, 2) for k, v in weights.items()})

    # 4. A dialogue: query, click, refine.
    answer = call(server, "POST", "/query", {"text": "foggy clouds"})["answer"]
    print("  mqa:", answer["text"][:90], "...")
    call(server, "POST", "/select", {"rank": 0})
    answer = call(server, "POST", "/refine", {"text": "more of these but dramatic"})["answer"]
    print("  mqa:", answer["text"][:90], "...")

    # 5. The event log shows the architecture's data flow.
    events = call(server, "GET", "/events")["events"]
    print("  flow:", " -> ".join(e["kind"] for e in events[:9]))

    # 6. The transcript is the QA panel's content.
    transcript = call(server, "GET", "/transcript")["transcript"]
    print()
    print(transcript)


if __name__ == "__main__":
    main()
