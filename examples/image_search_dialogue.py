"""The paper's Figure 4 interaction scenarios.

(a) Text-only input — "I would like some images of moldy cheese", then a
    refinement keyed on the selected image's degree of mold.
(b) Image-assisted input — the user uploads a reference coat photo and asks
    for "more coats made of similar material".

Run:  python examples/image_search_dialogue.py
"""

from repro import DatasetSpec, MQAConfig, MQASystem, Modality


def show(kb, answer) -> None:
    for item in answer.items:
        concepts = ", ".join(kb.get(item.object_id).concepts)
        print(f"    #{item.object_id:<4} [{concepts}]")


def scenario_a_text_only() -> None:
    print("=" * 60)
    print("scenario (a): text-only input — moldy cheese")
    print("=" * 60)
    config = MQAConfig(
        dataset=DatasetSpec(domain="food", size=400, seed=5),
        weight_learning={"steps": 30, "batch_size": 16},
    )
    system = MQASystem.from_config(config)
    kb = system.kb

    print("user: i would like some images of moldy cheese")
    answer = system.ask("i would like some images of moldy cheese")
    print("mqa :", answer.text)
    show(kb, answer)

    system.select(0)
    print("\nuser: i like this one, could you locate more cheese of this type")
    print("      that has a similar degree of mold?")
    answer = system.refine(
        "i like this one, could you locate more cheese with a similar degree of mold"
    )
    print("mqa :", answer.text)
    show(kb, answer)


def scenario_b_image_assisted() -> None:
    print()
    print("=" * 60)
    print("scenario (b): image-assisted input — coats of similar material")
    print("=" * 60)
    config = MQAConfig(
        dataset=DatasetSpec(domain="products", size=400, seed=9),
        weight_learning={"steps": 30, "batch_size": 16},
    )
    system = MQASystem.from_config(config)
    kb = system.kb

    # The user's own photo: borrow a leather coat's image as the upload.
    reference_id = next(
        object_id
        for object_id in kb.store.ids()
        if {"coat", "leather"} <= set(kb.get(object_id).concepts)
    )
    reference = kb.get(reference_id)
    print(f"user uploads a photo (like object #{reference_id}:",
          f"[{', '.join(reference.concepts)}])")
    print("user: could you find more coats made of similar material to this one?")
    answer = system.ask(
        "could you find more coats made of similar material",
        image=reference.get(Modality.IMAGE),
    )
    print("mqa :", answer.text)
    show(kb, answer)

    material_hits = sum(
        1 for item in answer.items if "leather" in kb.get(item.object_id).concepts
    )
    print(f"\nleather items among results: {material_hits}/{len(answer.items)}")

    system.select(0)
    print("\nuser: great — same material, but in a darker colour")
    answer = system.refine("same material but in a darker colour like black")
    print("mqa :", answer.text)
    show(kb, answer)


if __name__ == "__main__":
    scenario_a_text_only()
    scenario_b_image_assisted()
