"""Endpoint routing over the coordinator.

Endpoints (mirroring the demo's backend):

* ``GET  /options``            — dropdown contents for the config panel.
* ``POST /configure``          — set one configuration option.
* ``POST /apply``              — build the system from the draft config.
* ``GET  /status``             — status-monitoring panel content.
* ``GET  /weights``            — modality weights in force.
* ``POST /session/new``        — open an additional dialogue session;
  returns its id (session ``0`` always exists after apply).
* ``POST /query``              — submit a dialogue query (text, optional
  reference object id standing in for an uploaded image, optional
  ``session`` id).
* ``POST /select``             — click a result card.
* ``POST /reject``             — dismiss a result card (negative feedback).
* ``POST /refine``             — refine from the selected result.
* ``GET  /transcript``         — the QA panel transcript.
* ``GET  /events``             — the coordinator's event log, paginated
  (``offset`` / ``limit``; also reports ring-buffer totals).
* ``POST /ingest``             — add a new object to the live system.
* ``GET  /metrics``            — request counters, latency percentiles,
  per-stage timings, and cache statistics; with ``format="prometheus"``
  returns text exposition instead (``{"content_type": ..., "body": ...}``).
* ``GET  /trace``              — the last-N query traces as JSON span
  trees (requires ``tracing`` enabled in the configuration).
* ``GET  /profile``            — aggregated per-span-path profile over all
  captured traces (``format="collapsed"`` returns collapsed-stack text
  for flamegraph tooling, ``format="table"`` the rendered table).
* ``GET  /stats``              — the cost plane: rolling per-(framework,
  index, shard) latency/cost/recall distributions with the K slowest
  queries retained as exemplars (requires ``cost_accounting``).
* ``POST /search``             — raw batched retrieval, no dialogue state
  and no answer generation.  A single-query body (``{"text": ...}``) may
  be micro-batched with concurrent requests when ``max_batch > 1``; a
  list body (``{"queries": [...]}``) runs as one explicit batch.
* ``GET  /health``             — SLO grading (ok / degraded / breach),
  online retrieval-quality scores, recorder state, the micro-batch
  collector's batch-size histogram (requires ``monitoring`` for the
  SLO/quality sections), and — when sharding is configured — the shard
  router's per-shard ledger (live/tombstoned counts, replica health,
  breaker states, degraded-search totals).

Dialogue endpoints accept an optional ``session`` field; all sessions share
the coordinator (and therefore the index) but keep independent dialogue
state — several users against one deployment.

All responses are ``{"ok": True, ...}`` or ``{"ok": False, "error": ...}``.
"""

from __future__ import annotations

import threading
import time
import traceback
from concurrent.futures import Future
from typing import Any, Callable, Dict, FrozenSet, Optional, Tuple

from repro.core import ConfigurationPanel, MQAConfig, QAPanel, StatusPanel
from repro.core.concurrency import (
    READ,
    WRITE,
    EngineSaturatedError,
    MicroBatcher,
    QueryEngine,
)
from repro.core.coordinator import Coordinator
from repro.core.planning import AdmissionShedError
from repro.data import KnowledgeBase, Modality, RawQuery
from repro.errors import DeadlineExceededError, MQAError
from repro.index.tiered import tiered_snapshot
from repro.observability import (
    STATE_OK,
    ProfileAggregator,
    collapse_spans,
    render_prometheus,
)


class ApiError(MQAError):
    """A request that cannot be routed or is malformed."""


class ApiServer:
    """Routes endpoint calls to the panels and the coordinator.

    Every request dispatches through a :class:`QueryEngine`: reads (query,
    refine, transcript, metrics, ...) run concurrently under the engine's
    shared read lock, writes (configure, apply, ingest, remove,
    session/new) run exclusively, and dialogue verbs carrying a ``session``
    id serialise per session.  With the default ``workers=1`` the engine
    executes inline on the calling thread — identical behaviour to the
    historical serial server, no pool threads.

    Args:
        config: Initial draft configuration (panel defaults otherwise).
        knowledge_base: Optional prebuilt base served instead of generating
            one at apply time.
        clock: Time source for request latency (injectable so SLO grading
            can be driven deterministically in tests).
        workers: Engine worker count; overrides ``config.workers`` when
            given (as the CLI ``--workers`` flag does).
        engine_queue: Bounded-queue depth; overrides ``config.engine_queue``.
        max_batch: Micro-batch size cap for ``POST /search``; overrides
            ``config.max_batch`` when given (as ``--max-batch`` does).
            ``1`` disables coalescing — identical serving behaviour to the
            pre-batching server.
        batch_window_ms: Collector wait window; overrides
            ``config.batch_window_ms``.
    """

    #: Verbs that mutate shared state — exclusive under the engine lock.
    _WRITE_ROUTES: FrozenSet[Tuple[str, str]] = frozenset(
        {
            ("POST", "/configure"),
            ("POST", "/apply"),
            ("POST", "/ingest"),
            ("POST", "/remove"),
            ("POST", "/session/new"),
        }
    )
    #: Verbs whose dialogue state must not interleave within one session.
    _SESSION_ROUTES: FrozenSet[Tuple[str, str]] = frozenset(
        {
            ("POST", "/query"),
            ("POST", "/ask"),
            ("POST", "/select"),
            ("POST", "/refine"),
            ("POST", "/reject"),
            ("GET", "/transcript"),
        }
    )
    #: Retrieval-bearing verbs subject to admission control; monitoring
    #: and configuration verbs are never shed.
    _ADMITTED_ROUTES: FrozenSet[Tuple[str, str]] = frozenset(
        {
            ("POST", "/query"),
            ("POST", "/ask"),
            ("POST", "/refine"),
            ("POST", "/search"),
        }
    )

    def __init__(
        self,
        config: Optional[MQAConfig] = None,
        knowledge_base: Optional[KnowledgeBase] = None,
        clock: Optional[Callable[[], float]] = None,
        workers: Optional[int] = None,
        engine_queue: Optional[int] = None,
        max_batch: Optional[int] = None,
        batch_window_ms: Optional[float] = None,
    ) -> None:
        self._panel = ConfigurationPanel(config)
        self._knowledge_base = knowledge_base
        self._clock = clock or time.perf_counter
        self._coordinator: Optional[Coordinator] = None
        self._sessions: Dict[int, QAPanel] = {}
        # Explicit constructor/CLI settings pin the engine; otherwise it
        # follows the (possibly reconfigured) panel config.
        self._engine_pinned = workers is not None or engine_queue is not None
        draft = self._panel.config
        self.engine = QueryEngine(
            workers=workers if workers is not None else draft.workers,
            max_queue=engine_queue if engine_queue is not None else draft.engine_queue,
        )
        self._batcher_pinned = max_batch is not None or batch_window_ms is not None
        self.batcher = MicroBatcher(
            self._run_search_batch,
            max_batch=max_batch if max_batch is not None else draft.max_batch,
            window_ms=(
                batch_window_ms
                if batch_window_ms is not None
                else draft.batch_window_ms
            ),
        )
        self._engine_lock = threading.Lock()
        self._metrics_lock = threading.Lock()
        self._routes: Dict[Tuple[str, str], Callable[[Dict[str, Any]], Dict[str, Any]]] = {
            ("GET", "/options"): self._get_options,
            ("POST", "/configure"): self._post_configure,
            ("POST", "/apply"): self._post_apply,
            ("GET", "/status"): self._get_status,
            ("GET", "/weights"): self._get_weights,
            ("POST", "/query"): self._post_query,
            ("POST", "/ask"): self._post_ask,
            ("POST", "/select"): self._post_select,
            ("POST", "/refine"): self._post_refine,
            ("GET", "/transcript"): self._get_transcript,
            ("GET", "/events"): self._get_events,
            ("POST", "/ingest"): self._post_ingest,
            ("POST", "/session/new"): self._post_session_new,
            ("POST", "/reject"): self._post_reject,
            ("POST", "/remove"): self._post_remove,
            ("POST", "/search"): self._post_search,
            ("GET", "/metrics"): self._get_metrics,
            ("GET", "/trace"): self._get_trace,
            ("GET", "/stats"): self._get_stats,
            ("GET", "/profile"): self._get_profile,
            ("GET", "/health"): self._get_health,
        }
        self._query_count = 0
        self._refine_count = 0
        self._error_count = 0
        self._query_seconds = 0.0

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle(self, method: str, path: str, body: "Dict[str, Any] | None" = None) -> Dict[str, Any]:
        """Route one request through the engine; exceptions become error
        responses, including engine saturation (``"saturated": True``)."""
        try:
            return self.handle_async(method, path, body).result()
        except AdmissionShedError as exc:
            # Admission control turned the request away before it touched
            # the engine (admission mode only).
            return {"ok": False, "error": str(exc), "shed": True}
        except EngineSaturatedError as exc:
            return {"ok": False, "error": str(exc), "saturated": True}
        except DeadlineExceededError as exc:
            # The engine shed the request after its budget expired in the
            # queue (resilience mode only).
            return {"ok": False, "error": str(exc), "deadline_exceeded": True}

    def handle_async(
        self, method: str, path: str, body: "Dict[str, Any] | None" = None
    ) -> "Future[Dict[str, Any]]":
        """Submit one request to the engine; the future resolves to the
        response dict.

        Raises:
            EngineSaturatedError: The bounded queue is full — callers doing
                their own dispatch decide whether to retry or shed.
        """
        route = (method.upper(), path)
        mode = WRITE if route in self._WRITE_ROUTES else READ
        session_key = None
        if route in self._SESSION_ROUTES:
            try:
                session_key = int((body or {}).get("session", 0))
            except (TypeError, ValueError):
                session_key = None  # the handler raises the proper ApiError
        self._maybe_resize_engine()
        self._maybe_resize_batcher()
        # In resilience mode the engine sheds requests whose latency budget
        # expires while queued; this deadline covers queue wait only — the
        # coordinator starts its own round budget once the verb runs.
        deadline = None
        coordinator = self._coordinator
        if coordinator is not None and coordinator.resilience.enabled:
            deadline = coordinator.resilience.deadline(
                self._deadline_override(body)
            )
        if (
            coordinator is not None
            and coordinator.admission is not None
            and route in self._ADMITTED_ROUTES
        ):
            # Admission happens before the engine queue is touched: the
            # predicted tier-0 cost is the token charge, a shed decision
            # never enqueues, and a degrade decision is picked up by the
            # planner through ``under_pressure``.
            predicted = (
                coordinator.planner.predicted_base_ms()
                if coordinator.planner is not None
                else 1.0
            )
            if coordinator.admission.decide(predicted) == "shed":
                coordinator.resilience.record_fallback("admission_shed")
                raise AdmissionShedError(
                    "admission control shed the request: engine queue "
                    "delay or predicted cost exceeds serving capacity"
                )
        return self.engine.submit(
            lambda: self._dispatch(method, path, body),
            mode=mode,
            session_key=session_key,
            deadline=deadline,
        )

    @staticmethod
    def _deadline_override(body: "Dict[str, Any] | None") -> Optional[float]:
        """The request's ``deadline_ms`` as a float, or None."""
        raw = (body or {}).get("deadline_ms")
        if raw is None:
            return None
        try:
            value = float(raw)
        except (TypeError, ValueError):
            return None  # the verb handler raises the proper ApiError
        return value if value > 0 else None

    def _dispatch(self, method: str, path: str, body: "Dict[str, Any] | None") -> Dict[str, Any]:
        handler = self._routes.get((method.upper(), path))
        if handler is None:
            return {"ok": False, "error": f"no route for {method.upper()} {path}"}
        try:
            payload = handler(dict(body or {}))
        except DeadlineExceededError as exc:
            return {"ok": False, "error": str(exc), "deadline_exceeded": True}
        except MQAError as exc:
            return {"ok": False, "error": str(exc)}
        response = {"ok": True}
        response.update(payload)
        return response

    def _maybe_resize_engine(self) -> None:
        """Follow ``POST /configure`` engine settings (unless pinned).

        The swap happens here — on the submitting thread, outside any
        engine task — because a task cannot shut down the pool it is
        running on.
        """
        if self._engine_pinned:
            return
        draft = self._panel.config
        desired = (draft.workers, draft.engine_queue)
        if desired == (self.engine.workers, self.engine.max_queue):
            return
        with self._engine_lock:
            if desired == (self.engine.workers, self.engine.max_queue):
                return
            old = self.engine
            self.engine = QueryEngine(workers=desired[0], max_queue=desired[1])
            self._install_wait_observer()
            old.shutdown(wait=False)

    def _install_wait_observer(self) -> None:
        """Feed the engine's queue signals to admission control.

        Two hooks: the engine's measured per-request queue waits (EWMA
        fallback signal) and a live queue-depth probe (the preferred
        Little's-law wait estimate).  Re-run after every apply and
        engine swap so the active engine's signals always reach the
        active coordinator's controller (a no-op ``None`` when admission
        is off); the probe closes over ``self`` so it follows engine
        swaps automatically.
        """
        coordinator = self._coordinator
        admission = coordinator.admission if coordinator is not None else None
        self.engine.wait_observer = (
            admission.observe_wait if admission is not None else None
        )
        if admission is not None:
            admission.queue_probe = lambda: self.engine.queue_depth

    def _maybe_resize_batcher(self) -> None:
        """Follow ``POST /configure`` batching settings (unless pinned).

        Swapping in a fresh collector is safe at any point: waiters on the
        old instance elect leaders among themselves, so every in-flight
        submission still completes.
        """
        if self._batcher_pinned:
            return
        draft = self._panel.config
        desired = (draft.max_batch, draft.batch_window_ms)
        if desired == (self.batcher.max_batch, self.batcher.window_ms):
            return
        with self._engine_lock:
            if desired == (self.batcher.max_batch, self.batcher.window_ms):
                return
            self.batcher = MicroBatcher(
                self._run_search_batch,
                max_batch=desired[0],
                window_ms=desired[1],
            )

    def close(self) -> None:
        """Shut the engine down (stops accepting work, drains the pool)."""
        self.engine.shutdown()

    def __enter__(self) -> "ApiServer":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.close()
        return False

    def _require_system(self, body: "Dict[str, Any] | None" = None) -> Tuple[Coordinator, QAPanel]:
        if self._coordinator is None or not self._sessions:
            raise ApiError("system not applied yet; POST /apply first")
        session_id = int((body or {}).get("session", 0))
        if session_id not in self._sessions:
            known = ", ".join(str(s) for s in sorted(self._sessions))
            raise ApiError(f"unknown session {session_id}; known sessions: {known}")
        return self._coordinator, self._sessions[session_id]

    @staticmethod
    def _require_field(body: Dict[str, Any], field: str) -> Any:
        if field not in body:
            raise ApiError(f"request body is missing field {field!r}")
        return body[field]

    @staticmethod
    def _int_field(body: Dict[str, Any], field: str, default: Optional[int]) -> Optional[int]:
        value = body.get(field)
        if value is None:
            return default
        try:
            return int(value)
        except (TypeError, ValueError):
            raise ApiError(f"{field!r} must be an integer, got {value!r}") from None

    # ------------------------------------------------------------------
    # configuration endpoints
    # ------------------------------------------------------------------
    def _get_options(self, body: Dict[str, Any]) -> Dict[str, Any]:
        return {"options": self._panel.options()}

    def _post_configure(self, body: Dict[str, Any]) -> Dict[str, Any]:
        option = self._require_field(body, "option")
        value = self._require_field(body, "value")
        self._panel.set_option(option, value)
        return {"feedback": self._panel.feedback[-1]}

    def _post_apply(self, body: Dict[str, Any]) -> Dict[str, Any]:
        self._coordinator = self._panel.apply(knowledge_base=self._knowledge_base)
        self._sessions = {0: QAPanel(self._coordinator)}
        self._install_wait_observer()
        return {
            "feedback": self._panel.feedback[-1],
            "summary": self._panel.config.summary(),
        }

    # ------------------------------------------------------------------
    # monitoring endpoints
    # ------------------------------------------------------------------
    def _get_status(self, body: Dict[str, Any]) -> Dict[str, Any]:
        coordinator, _ = self._require_system()
        milestones = [
            {
                "name": m.name,
                "state": m.state.value,
                "elapsed_ms": round(m.elapsed * 1000, 2),
                "details": dict(m.details),
            }
            for m in coordinator.status.milestones()
        ]
        return {
            "milestones": milestones,
            "rendered": StatusPanel(
                coordinator.status,
                tracer=coordinator.tracer,
                slo=coordinator.slo,
                quality=coordinator.quality,
                stats=coordinator.stats,
                cache=(
                    coordinator.execution.cache
                    if coordinator.execution is not None
                    else None
                ),
            ).render(),
        }

    def _get_weights(self, body: Dict[str, Any]) -> Dict[str, Any]:
        coordinator, _ = self._require_system()
        return {
            "weights": {m.value: w for m, w in coordinator.weights.items()}
        }

    def _get_events(self, body: Dict[str, Any]) -> Dict[str, Any]:
        coordinator, _ = self._require_system()
        offset = self._int_field(body, "offset", 0)
        limit = self._int_field(body, "limit", None)
        # One snapshot call: the page and its ring-buffer totals must
        # describe the same instant even while appends continue.
        retained, total_recorded, dropped = coordinator.events.snapshot()
        offset = max(int(offset), 0)
        if limit is None:
            page = retained[offset:]
        else:
            page = retained[offset : offset + max(int(limit), 0)]
        events = [
            {
                "source": e.source,
                "target": e.target,
                "kind": e.kind,
                "detail": e.detail,
            }
            for e in page
        ]
        return {
            "events": events,
            "offset": offset,
            "retained": len(retained),
            "total_recorded": total_recorded,
            "dropped": dropped,
        }

    # ------------------------------------------------------------------
    # dialogue endpoints
    # ------------------------------------------------------------------
    @staticmethod
    def _answer_payload(answer) -> Dict[str, Any]:
        payload = {
            "text": answer.text,
            "grounded": answer.grounded,
            "round": answer.round_index,
            "degraded": answer.degraded,
            "degraded_reasons": list(answer.degraded_reasons),
            "items": [
                {
                    "object_id": item.object_id,
                    "description": item.description,
                    "score": round(item.score, 4),
                    "preferred": item.preferred,
                }
                for item in answer.items
            ],
        }
        if answer.cost is not None:
            payload["cost"] = answer.cost.to_dict()
        if answer.plan is not None:
            payload["plan"] = answer.plan.to_dict()
        # Agentic rounds only — absent keys keep non-agentic payloads
        # bit-identical to the pre-agentic server.
        if answer.claims is not None:
            payload["claims"] = [claim.to_dict() for claim in answer.claims]
        if answer.groundedness is not None:
            payload["groundedness"] = round(answer.groundedness, 4)
        return payload

    def _timed_verb(self, coordinator: Coordinator, verb: str, fn: Callable[[], Any]):
        """Run one dialogue verb, feeding counters and latency histograms.

        Both ``/query`` and ``/refine`` flow through here so ``/metrics``
        accounts for every dialogue round, not just first questions — and
        so the SLO monitor grades every round, including failed ones.

        The SLO observation and the server's own latency counters update
        together under one lock: with concurrent rounds, interleaved
        read-modify-write on ``_query_seconds`` loses updates, and an SLO
        window that saw a request the counters haven't would let
        ``/metrics`` and ``/health`` disagree about the same traffic.
        Errored rounds feed the same time and latency accounting as
        successful ones (plus an error counter), so both views always
        describe identical traffic.  The full traceback is recorded in
        the event log before re-raising — ``_dispatch`` flattens the
        exception into a one-line error payload, which used to be the
        only surviving evidence of *where* a round failed.
        """
        start = self._clock()
        try:
            answer = fn()
        except Exception as exc:
            elapsed = self._clock() - start
            with self._metrics_lock:
                if coordinator.slo is not None:
                    coordinator.slo.observe(elapsed * 1000.0, error=True)
                self._query_seconds += elapsed
                self._error_count += 1
            coordinator.metrics.inc("api.errors")
            coordinator.metrics.inc(f"api.{verb}.errors")
            coordinator.metrics.observe("api.request_ms", elapsed * 1000.0)
            coordinator.metrics.observe(f"api.{verb}_ms", elapsed * 1000.0)
            coordinator.events.record(
                "qa", "coordinator", "api-error",
                f"{verb}: " + "".join(
                    traceback.format_exception(type(exc), exc, exc.__traceback__)
                ).strip(),
            )
            raise
        elapsed = self._clock() - start
        with self._metrics_lock:
            if coordinator.slo is not None:
                coordinator.slo.observe(elapsed * 1000.0)
            self._query_seconds += elapsed
            if verb in ("query", "ask"):
                self._query_count += 1
            else:
                self._refine_count += 1
        coordinator.metrics.inc(f"api.{verb}")
        coordinator.metrics.observe("api.request_ms", elapsed * 1000.0)
        coordinator.metrics.observe(f"api.{verb}_ms", elapsed * 1000.0)
        return answer

    def _post_query(self, body: Dict[str, Any]) -> Dict[str, Any]:
        coordinator, qa = self._require_system(body)
        text = self._require_field(body, "text")
        image = None
        if "reference_object_id" in body and body["reference_object_id"] is not None:
            # An uploaded image is modelled by referencing an object whose
            # image modality stands in for the user's file.
            reference = coordinator.get_object(int(body["reference_object_id"]))
            image = reference.get(Modality.IMAGE)
        weights = body.get("weights")
        deadline_ms = self._deadline_override(body)
        answer = self._timed_verb(
            coordinator,
            "query",
            lambda: qa.session.ask(
                text, image=image, weights=weights, deadline_ms=deadline_ms
            ),
        )
        return {"answer": self._answer_payload(answer)}

    def _post_ask(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /ask`` — the multi-hop agentic mode of ``/query``.

        With ``config.agentic`` off the round falls through to the
        single-hop path and the response payload is bit-identical to
        ``POST /query`` for the same body.
        """
        coordinator, qa = self._require_system(body)
        text = self._require_field(body, "text")
        image = None
        if "reference_object_id" in body and body["reference_object_id"] is not None:
            reference = coordinator.get_object(int(body["reference_object_id"]))
            image = reference.get(Modality.IMAGE)
        weights = body.get("weights")
        deadline_ms = self._deadline_override(body)
        answer = self._timed_verb(
            coordinator,
            "ask",
            lambda: qa.session.ask_agentic(
                text, image=image, weights=weights, deadline_ms=deadline_ms
            ),
        )
        return {"answer": self._answer_payload(answer)}

    def _post_select(self, body: Dict[str, Any]) -> Dict[str, Any]:
        _, qa = self._require_system(body)
        rank = int(self._require_field(body, "rank"))
        object_id = qa.click_result(rank)
        return {"selected_object_id": object_id}

    def _post_refine(self, body: Dict[str, Any]) -> Dict[str, Any]:
        coordinator, qa = self._require_system(body)
        text = self._require_field(body, "text")
        weights = body.get("weights")
        deadline_ms = self._deadline_override(body)
        answer = self._timed_verb(
            coordinator,
            "refine",
            lambda: qa.session.refine(
                text, weights=weights, deadline_ms=deadline_ms
            ),
        )
        return {"answer": self._answer_payload(answer)}

    def _get_transcript(self, body: Dict[str, Any]) -> Dict[str, Any]:
        _, qa = self._require_system(body)
        return {"transcript": qa.render_transcript()}

    def _post_remove(self, body: Dict[str, Any]) -> Dict[str, Any]:
        coordinator, _ = self._require_system()
        object_id = int(self._require_field(body, "object_id"))
        coordinator.remove_object(object_id)
        return {"removed_object_id": object_id}

    # ------------------------------------------------------------------
    # raw batched retrieval
    # ------------------------------------------------------------------
    def _search_query(self, coordinator: Coordinator, spec: Dict[str, Any]) -> RawQuery:
        """Build one :class:`RawQuery` from a ``/search`` request spec."""
        text = str(self._require_field(spec, "text"))
        reference_id = spec.get("reference_object_id")
        if reference_id is not None:
            reference = coordinator.get_object(int(reference_id))
            return RawQuery.from_text_and_image(text, reference.get(Modality.IMAGE))
        return RawQuery.from_text(text)

    @staticmethod
    def _search_payload(response) -> Dict[str, Any]:
        payload = {
            "framework": response.framework,
            "items": [
                {
                    "object_id": item.object_id,
                    "score": round(item.score, 6),
                    "rank": item.rank,
                }
                for item in response.items
            ],
            "stats": {
                "hops": response.stats.hops,
                "distance_evaluations": response.stats.distance_evaluations,
            },
        }
        if response.degraded_reasons:
            payload["degraded_reasons"] = list(response.degraded_reasons)
        if response.cost is not None:
            payload["cost"] = response.cost.to_dict()
        return payload

    @staticmethod
    def _weights_key(weights) -> "Tuple | None":
        if weights is None:
            return None
        return tuple(sorted((str(m), float(w)) for m, w in weights.items()))

    def _run_search_batch(self, items):
        """Micro-batch runner: group compatible requests, one batched
        retrieval per group.

        Requests coalesce only when they share ``k`` and ``weights`` —
        mixed groups split into separate ``retrieve_batch`` calls, each
        still amortising encode and traversal across its members.
        """
        coordinator = self._coordinator
        if coordinator is None:
            raise ApiError("system not applied yet; POST /apply first")
        results: list = [None] * len(items)
        groups: Dict[Any, list] = {}
        for position, (query, k, weights_key, _weights) in enumerate(items):
            groups.setdefault((k, weights_key), []).append(position)
        for (k, _weights_key), members in groups.items():
            weights = items[members[0]][3]
            responses = coordinator.retrieve_batch(
                [items[m][0] for m in members], k=k, weights=weights
            )
            for member, response in zip(members, responses):
                results[member] = response
        return results

    def _post_search(self, body: Dict[str, Any]) -> Dict[str, Any]:
        coordinator, _ = self._require_system()
        k = self._int_field(body, "k", None)
        weights = body.get("weights")
        if "queries" in body:
            specs = body["queries"]
            if not isinstance(specs, (list, tuple)) or not specs:
                raise ApiError("'queries' must be a non-empty list")
            queries = [
                self._search_query(coordinator, dict(spec)) for spec in specs
            ]
            responses = coordinator.retrieve_batch(queries, k=k, weights=weights)
            self.batcher.note(len(queries))
            return {"results": [self._search_payload(r) for r in responses]}
        query = self._search_query(coordinator, body)
        planner = coordinator.planner
        if planner is not None and self.batcher.max_batch > 1:
            # A request whose remaining deadline cannot absorb several
            # collector windows runs inline instead of joining the batch.
            deadline = coordinator.resilience.deadline(
                self._deadline_override(body)
            )
            remaining = (
                deadline.remaining_ms if deadline is not None else None
            )
            if planner.skip_batching(remaining, self.batcher.window_ms):
                responses = coordinator.retrieve_batch(
                    [query], k=k, weights=weights
                )
                return {"result": self._search_payload(responses[0])}
        response = self.batcher.submit(
            (query, k, self._weights_key(weights), weights)
        )
        return {"result": self._search_payload(response)}

    def _get_metrics(self, body: Dict[str, Any]) -> Dict[str, Any]:
        coordinator, _ = self._require_system()
        fmt = str(body.get("format", "json")).lower()
        if fmt == "prometheus":
            return {
                "content_type": "text/plain; version=0.0.4; charset=utf-8",
                "body": render_prometheus(coordinator.metrics),
            }
        if fmt != "json":
            raise ApiError(f"unknown metrics format {fmt!r}; expected json or prometheus")
        cache = coordinator.execution.cache if coordinator.execution else None
        framework = coordinator.execution.framework if coordinator.execution else None
        with self._metrics_lock:
            query_count = self._query_count
            refine_count = self._refine_count
            error_count = self._error_count
            query_seconds = self._query_seconds
        # Errored rounds contributed to query_seconds, so the mean divides
        # by every round the SLO window saw — /metrics and /health agree.
        rounds = query_count + refine_count + error_count
        mean_ms = query_seconds / rounds * 1000.0 if rounds else 0.0
        latency = coordinator.metrics.histogram("api.request_ms").summary()
        stages = coordinator.metrics.histogram_summaries("stage_ms.")
        return {
            "metrics": {
                "queries": query_count,
                "refines": refine_count,
                "errors": error_count,
                "mean_query_ms": round(mean_ms, 3),
                "latency_ms": latency,
                "stages": stages,
                "sessions": len(self._sessions),
                "kb_objects": len(coordinator.kb) if coordinator.kb else 0,
                "deleted_objects": len(framework.deleted_ids) if framework else 0,
                # One locked snapshot: hits/misses/size are mutated
                # together, so reading them attribute-by-attribute could
                # pair a hit with the wrong total.
                "cache": (
                    {"enabled": True, **cache.snapshot()}
                    if cache is not None
                    else {
                        "enabled": False,
                        "size": 0,
                        "hits": 0,
                        "misses": 0,
                        "hit_rate": 0.0,
                    }
                ),
                "trace": {
                    "enabled": coordinator.tracer.enabled,
                    "captured": len(coordinator.tracer.traces),
                },
            }
        }

    def _get_trace(self, body: Dict[str, Any]) -> Dict[str, Any]:
        coordinator, _ = self._require_system()
        limit = body.get("limit")
        if limit is not None:
            try:
                limit = int(limit)
            except (TypeError, ValueError):
                raise ApiError(f"'limit' must be an integer, got {limit!r}")
        return {
            "enabled": coordinator.tracer.enabled,
            "traces": coordinator.tracer.export(limit),
        }

    def _get_profile(self, body: Dict[str, Any]) -> Dict[str, Any]:
        coordinator, _ = self._require_system()
        traces = coordinator.tracer.traces
        fmt = str(body.get("format", "rows")).lower()
        if fmt == "collapsed":
            return {
                "enabled": coordinator.tracer.enabled,
                "traces": len(traces),
                "collapsed": collapse_spans(traces),
            }
        aggregator = ProfileAggregator().add_traces(traces)
        payload: Dict[str, Any] = {
            "enabled": coordinator.tracer.enabled,
            "traces": len(traces),
        }
        if fmt == "table":
            payload["table"] = aggregator.render()
        elif fmt == "rows":
            payload["profile"] = aggregator.rows()
        else:
            raise ApiError(
                f"unknown profile format {fmt!r}; expected rows, table or collapsed"
            )
        return payload

    def _get_stats(self, body: Dict[str, Any]) -> Dict[str, Any]:
        coordinator, _ = self._require_system()
        tiered = tiered_snapshot(
            coordinator.execution.framework
            if coordinator.execution is not None
            else None
        )
        cache = (
            coordinator.execution.cache
            if coordinator.execution is not None
            else None
        )
        planning = {
            "planner": (
                coordinator.planner.snapshot()
                if coordinator.planner is not None
                else None
            ),
            "admission": (
                coordinator.admission.snapshot()
                if coordinator.admission is not None
                else None
            ),
            "cache": cache.snapshot() if cache is not None else None,
            "agentic": (
                coordinator.agentic.snapshot()
                if coordinator.agentic is not None
                else None
            ),
        }
        if coordinator.stats is None:
            return {"enabled": False, "stats": None, "tiered": tiered, **planning}
        return {
            "enabled": True,
            "stats": coordinator.stats.snapshot(),
            "tiered": tiered,
            **planning,
        }

    def _get_health(self, body: Dict[str, Any]) -> Dict[str, Any]:
        coordinator, _ = self._require_system()
        slo = coordinator.slo.snapshot() if coordinator.slo is not None else None
        quality = (
            coordinator.quality.snapshot() if coordinator.quality is not None else None
        )
        recorder = (
            coordinator.recorder.snapshot() if coordinator.recorder is not None else None
        )
        framework = (
            coordinator.execution.framework
            if coordinator.execution is not None
            else None
        )
        sharding = (
            framework.snapshot()
            if framework is not None and hasattr(framework, "snapshot")
            else None
        )
        cache = (
            coordinator.execution.cache
            if coordinator.execution is not None
            else None
        )
        return {
            "monitoring": coordinator.slo is not None,
            "state": slo["state"] if slo is not None else STATE_OK,
            "slo": slo,
            "quality": quality,
            "recorder": recorder,
            "engine": self.engine.snapshot(),
            "batching": self.batcher.snapshot(),
            "resilience": coordinator.resilience.snapshot(),
            "sharding": sharding,
            "tiered": tiered_snapshot(framework),
            "cache": cache.snapshot() if cache is not None else None,
            "planner": (
                coordinator.planner.snapshot()
                if coordinator.planner is not None
                else None
            ),
            "admission": (
                coordinator.admission.snapshot()
                if coordinator.admission is not None
                else None
            ),
            "agentic": (
                coordinator.agentic.snapshot()
                if coordinator.agentic is not None
                else None
            ),
        }

    def _post_session_new(self, body: Dict[str, Any]) -> Dict[str, Any]:
        coordinator, _ = self._require_system()
        session_id = max(self._sessions) + 1
        self._sessions[session_id] = QAPanel(coordinator)
        return {"session": session_id}

    def _post_reject(self, body: Dict[str, Any]) -> Dict[str, Any]:
        _, qa = self._require_system(body)
        rank = int(self._require_field(body, "rank"))
        object_id = qa.session.reject(rank)
        return {"rejected_object_id": object_id}

    def _post_ingest(self, body: Dict[str, Any]) -> Dict[str, Any]:
        coordinator, _ = self._require_system()
        concepts = self._require_field(body, "concepts")
        if not isinstance(concepts, (list, tuple)) or not concepts:
            raise ApiError("'concepts' must be a non-empty list of concept names")
        intensities = body.get("intensities")
        if intensities is not None:
            if not isinstance(intensities, (list, tuple)) or len(intensities) != len(concepts):
                raise ApiError(
                    "'intensities' must be a list matching 'concepts' in length"
                )
            intensities = [float(v) for v in intensities]
        object_id = coordinator.ingest_object(
            list(concepts),
            intensities=intensities,
            metadata=dict(body.get("metadata") or {}),
        )
        return {"object_id": object_id}
