"""The backend API layer (the Flask stand-in).

The real MQA backend is a Flask app whose endpoints "engage with a single
reference point" — the coordinator.  This package provides the same
endpoint surface as plain-Python request handling: JSON-dict requests in,
JSON-dict responses out, no sockets.  A frontend (or the bundled CLI) can
drive the whole system through it, and tests can assert the exact API
contract.
"""

from repro.server.api import ApiError, ApiServer

__all__ = ["ApiError", "ApiServer"]
