"""Concurrent synthetic load generation against a live :class:`ApiServer`.

``python -m repro loadgen`` (and ``benchmarks/bench_pr3_concurrency.py``)
drive a deterministic mixed read/write workload through the full API
stack — dialogue queries under the shared read lock, periodic ingests
under the exclusive write lock — and report throughput and latency
percentiles.

Determinism under concurrency is engineered, not hoped for: the read
queries draw their concepts from one half of the corpus vocabulary and
the ingested objects from the *other* half (at deliberately low
intensity), so no ingested object can enter a read's top-k regardless of
how reads and writes interleave.  That makes every read's result ids a
pure function of the query alone — the benchmark asserts the concurrent
run returns exactly the serial run's ids, and that no ingested id ever
surfaces.

The simulated LLM latency (``llm_latency_ms``) models the production
deployment's remote generation call (the MQA demo uses ChatGPT); the
sleep releases the GIL exactly as the network wait would, which is the
regime where a thread pool multiplies throughput.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.core import MQAConfig
from repro.data import DatasetSpec
from repro.index.tiered import tiered_snapshot
from repro.observability.metrics import Histogram
from repro.server.api import ApiServer

#: Low intensity keeps ingested objects' vectors far from every read
#: query, preserving read determinism (see module docstring).
_INGEST_INTENSITY = 0.35


def build_workload(
    concepts: Sequence[str],
    queries: int,
    write_every: int,
    seed: int,
    sessions: int,
    near_duplicate_every: int = 0,
) -> List[Dict[str, Any]]:
    """The deterministic operation list for one run.

    Every ``write_every``-th operation is an ingest drawing concepts from
    the back half of the vocabulary; all others are dialogue reads over
    the front half, round-robined across ``sessions`` session ids.

    ``near_duplicate_every`` (0 disables) rewrites every Nth read as the
    previous read's text with its word order reversed — a distinct exact
    cache key whose token-averaged embedding is identical, so the same
    objects are retrieved (read determinism holds) while a semantic
    cache recognises the near-duplicate.  This models the interactive
    reality the semantic cache targets: users rephrasing essentially the
    same question.
    """
    if len(concepts) < 4:
        raise ValueError(
            f"need at least 4 distinct corpus concepts, got {len(concepts)}"
        )
    rng = np.random.default_rng(seed)
    half = len(concepts) // 2
    read_pool = list(concepts[:half])
    write_pool = list(concepts[half:])
    ops: List[Dict[str, Any]] = []
    reads = 0
    last_text: "str | None" = None
    for i in range(queries):
        if write_every and i % write_every == write_every - 1:
            pair = rng.choice(len(write_pool), size=min(2, len(write_pool)), replace=False)
            chosen = [write_pool[int(j)] for j in pair]
            ops.append(
                {
                    "op": "ingest",
                    "body": {
                        "concepts": chosen,
                        "intensities": [_INGEST_INTENSITY] * len(chosen),
                        "metadata": {"source": "loadgen"},
                    },
                }
            )
        else:
            reads += 1
            if (
                near_duplicate_every
                and last_text is not None
                and reads % near_duplicate_every == 0
            ):
                text = " ".join(reversed(last_text.split()))
            else:
                pair = rng.choice(
                    len(read_pool), size=min(2, len(read_pool)), replace=False
                )
                text = " ".join(read_pool[int(j)] for j in pair)
            last_text = text
            ops.append(
                {
                    "op": "query",
                    "body": {"text": text, "session": i % sessions},
                }
            )
    return ops


def run_loadgen(
    workers: int = 1,
    queries: int = 200,
    write_every: int = 10,
    domain: str = "scenes",
    size: int = 300,
    seed: int = 7,
    llm_latency_ms: float = 25.0,
    k: int = 5,
    sessions: int = 4,
    batch: int = 1,
    batch_window_ms: float = 2.0,
    shards: "int | None" = None,
    replicas: int = 1,
    shard_latency_ms: float = 0.0,
    shard_latency_ms_per_1k: float = 0.0,
    cost_accounting: bool = False,
    index: str = "hnsw",
    index_params: "Dict[str, Any] | None" = None,
    tiered: bool = False,
    quantize_bits: int = 8,
    rerank_factor: int = 4,
    mmap_cache_blocks: int = 32,
    planner: bool = False,
    recall_floor: float = 0.8,
    semantic_cache: bool = False,
    semantic_threshold: float = 0.9,
    admission: bool = False,
    deadline_ms: "float | None" = None,
    cache: bool = False,
    client_workers: "int | None" = None,
    near_duplicate_every: int = 0,
    shed_retry_ms: float = 0.0,
    shed_retries: int = 8,
) -> Dict[str, Any]:
    """Build a system, fire the workload, and report the results.

    The client side uses ``workers`` threads calling the blocking
    :meth:`ApiServer.handle`, matching the engine's worker count so the
    bounded queue never rejects — rejections under deliberate over-drive
    are exercised by the concurrency tests instead.

    ``batch > 1`` switches read operations from the dialogue ``/query``
    verb to raw ``POST /search`` requests and enables server-side
    micro-batching with that cap: concurrent searches coalesce into one
    batched retrieval.  Results stay bit-identical to serial execution —
    only throughput changes.

    ``shards`` / ``replicas`` serve the same workload through the shard
    router; the ``shard_latency_*`` knobs add the simulated remote-shard
    service time under which sharding shows its read scaling (the
    per-shard sleeps overlap on the scatter pool).  Result ids never
    change — the sharding benchmark asserts that.

    ``cost_accounting`` turns the cost plane on; the report then carries
    the server's ``GET /stats`` snapshot under ``"stats"`` (the data
    behind ``python -m repro stats``).  Profiles never change result
    ids — the cost-plane benchmark asserts that too.

    ``index`` / ``index_params`` select the index algorithm; ``tiered``
    (with ``quantize_bits`` / ``rerank_factor`` / ``mmap_cache_blocks``)
    switches a Starling index to beyond-RAM serving, and the report then
    carries the aggregated tiered-store ledger under ``"tiered"``.

    The adaptive-serving knobs mirror their config fields: ``planner`` /
    ``recall_floor`` (per-query budget planning), ``semantic_cache`` /
    ``semantic_threshold`` (near-duplicate serving; implies ``cache``),
    ``admission`` (shed/degrade before saturation), and ``deadline_ms``
    (a per-request latency budget; enables the resilience layer).
    ``cache`` turns the query cache on (historically off here for
    uniform read cost).  ``client_workers`` sizes the *client* thread
    pool independently of the engine's ``workers`` — oversubscribing
    clients is how the planner benchmark creates queueing pressure.
    ``near_duplicate_every`` rewrites every Nth read as a word-order
    permutation of the previous one (see :func:`build_workload`).
    ``shed_retry_ms`` (0 disables) makes clients behave like real ones
    facing a 503: a shed response is retried after that backoff, up to
    ``shed_retries`` times, and the op's reported latency spans every
    attempt — shedding costs the client real time instead of instantly
    freeing it to burn through the finite operation list.

    The report always carries a ``goodput`` section — reads that
    completed within their deadline *without* degradation — plus shed /
    deadline-exceeded / saturated counts and the server cache's
    hit-rate snapshot, so planner-on and planner-off runs compare on
    useful work rather than raw throughput.
    """
    config = MQAConfig(
        dataset=DatasetSpec(domain=domain, size=size, seed=seed),
        workers=workers,
        llm_params={"latency_ms": llm_latency_ms},
        result_count=k,
        # Historically off for uniform read cost; the cache/semantic
        # knobs opt back in for the workloads that study caching.
        cache_queries=cache or semantic_cache,
        weight_learning={"steps": 20, "batch_size": 16},
        max_batch=batch,
        batch_window_ms=batch_window_ms,
        shards=shards,
        replicas=replicas,
        shard_latency_ms=shard_latency_ms,
        shard_latency_ms_per_1k=shard_latency_ms_per_1k,
        cost_accounting=cost_accounting,
        index=index,
        index_params=dict(index_params or {}),
        tiered=tiered,
        quantize_bits=quantize_bits,
        rerank_factor=rerank_factor,
        mmap_cache_blocks=mmap_cache_blocks,
        planner=planner,
        recall_floor=recall_floor,
        semantic_cache=semantic_cache,
        semantic_threshold=semantic_threshold,
        admission=admission,
        resilience=deadline_ms is not None,
        deadline_ms=deadline_ms,
    )
    use_search = batch > 1
    server = ApiServer(config)
    try:
        applied = server.handle("POST", "/apply")
        if not applied.get("ok"):
            raise RuntimeError(f"apply failed: {applied.get('error')}")
        kb = server._coordinator.kb
        assert kb is not None
        initial_size = len(kb)
        concepts = sorted({c for obj in kb for c in obj.concepts})
        for _ in range(1, sessions):
            server.handle("POST", "/session/new")
        ops = build_workload(
            concepts, queries, write_every, seed, sessions,
            near_duplicate_every=near_duplicate_every,
        )

        results: List[Dict[str, Any]] = [{} for _ in ops]

        def fire(index: int) -> None:
            op = ops[index]
            started = time.perf_counter()
            attempts = 0
            while True:
                if op["op"] == "ingest":
                    response = server.handle("POST", "/ingest", dict(op["body"]))
                elif use_search:
                    response = server.handle(
                        "POST", "/search", {"text": op["body"]["text"], "k": k}
                    )
                else:
                    response = server.handle("POST", "/query", dict(op["body"]))
                if (
                    shed_retry_ms > 0
                    and attempts < shed_retries
                    and not response.get("ok")
                    and response.get("shed")
                ):
                    attempts += 1
                    time.sleep(shed_retry_ms / 1000.0)
                    continue
                break
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            entry: Dict[str, Any] = {
                "op": op["op"],
                "ok": bool(response.get("ok")),
                "latency_ms": elapsed_ms,
                "retries": attempts,
            }
            if not entry["ok"]:
                entry["error"] = response.get("error")
                entry["shed"] = bool(response.get("shed"))
                entry["saturated"] = bool(response.get("saturated"))
                entry["deadline_exceeded"] = bool(
                    response.get("deadline_exceeded")
                )
            elif op["op"] != "query":
                entry["object_id"] = response["object_id"]
            elif use_search:
                entry["ids"] = [
                    item["object_id"] for item in response["result"]["items"]
                ]
                entry["degraded"] = bool(
                    response["result"].get("degraded_reasons")
                )
            else:
                entry["ids"] = [
                    item["object_id"] for item in response["answer"]["items"]
                ]
                entry["degraded"] = bool(response["answer"]["degraded"])
            results[index] = entry

        client_pool = client_workers if client_workers is not None else workers
        started = time.perf_counter()
        if client_pool == 1:
            for i in range(len(ops)):
                fire(i)
        else:
            with ThreadPoolExecutor(
                max_workers=client_pool, thread_name_prefix="loadgen"
            ) as pool:
                list(pool.map(fire, range(len(ops))))
        elapsed_s = time.perf_counter() - started

        latencies = [r["latency_ms"] for r in results]
        # Same percentile machinery the metrics plane uses; the reservoir
        # is sized to the sample so the quantiles stay exact.
        histogram = Histogram(
            "loadgen.latency_ms", reservoir_size=max(len(latencies), 1)
        )
        for value in latencies:
            histogram.observe(value)
        summary = histogram.summary()
        read_ids = [r["ids"] for r in results if r["op"] == "query" and r["ok"]]
        ingested = [r["object_id"] for r in results if r["op"] == "ingest" and r["ok"]]
        coordinator = server._coordinator
        # Goodput: reads that produced full-quality results inside their
        # deadline.  Shed, saturated, deadline-exceeded, and degraded
        # reads all completed *something* — but not useful work.
        read_entries = [r for r in results if r["op"] == "query"]
        good = sum(
            1
            for r in read_entries
            if r["ok"]
            and not r.get("degraded")
            and (deadline_ms is None or r["latency_ms"] <= deadline_ms)
        )
        server_cache = (
            coordinator.execution.cache
            if coordinator.execution is not None
            else None
        )
        return {
            "workers": workers,
            "operations": len(ops),
            "reads": sum(1 for r in results if r["op"] == "query"),
            "writes": sum(1 for r in results if r["op"] == "ingest"),
            "errors": sum(1 for r in results if not r["ok"]),
            "error_messages": [r["error"] for r in results if not r.get("ok")][:5],
            "elapsed_s": round(elapsed_s, 3),
            "throughput_qps": round(len(ops) / elapsed_s, 2) if elapsed_s else 0.0,
            "latency_ms": {
                "p50": round(summary["p50"], 2),
                "p95": round(summary["p95"], 2),
                "p99": round(summary["p99"], 2),
                "max": round(summary["max"], 2),
            },
            "deadline_ms": deadline_ms,
            "goodput": {
                "good": good,
                "ratio": (
                    round(good / len(read_entries), 4) if read_entries else 0.0
                ),
                "qps": round(good / elapsed_s, 2) if elapsed_s else 0.0,
                "degraded": sum(
                    1 for r in read_entries if r.get("degraded")
                ),
                "shed": sum(1 for r in results if r.get("shed")),
                "client_retries": sum(r.get("retries", 0) for r in results),
                "deadline_exceeded": sum(
                    1 for r in results if r.get("deadline_exceeded")
                ),
                "saturated": sum(1 for r in results if r.get("saturated")),
            },
            "cache": (
                server_cache.snapshot() if server_cache is not None else None
            ),
            "planner": (
                coordinator.planner.snapshot()
                if coordinator.planner is not None
                else None
            ),
            "admission": (
                coordinator.admission.snapshot()
                if coordinator.admission is not None
                else None
            ),
            "initial_corpus_size": initial_size,
            "read_ids": read_ids,
            "ingested_ids": ingested,
            "engine": server.engine.snapshot(),
            "batching": server.batcher.snapshot(),
            "sharding": (
                coordinator.execution.framework.snapshot()
                if config.sharding_enabled
                else None
            ),
            "stats": (
                coordinator.stats.snapshot()
                if coordinator.stats is not None
                else None
            ),
            "tiered": tiered_snapshot(
                coordinator.execution.framework
                if coordinator.execution is not None
                else None
            ),
        }
    finally:
        server.close()
