"""Knowledge base: object store + concept world + exact ground truth.

This is the unit the configuration panel lets users pick ("domain-specific
knowledge bases").  Besides holding the objects, it knows the generative
world they came from, which is what lets the evaluation harness compute the
exact top-k answer to any concept-level query.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.data.concepts import ConceptSpace
from repro.data.modality import Modality
from repro.data.objects import MultiModalObject
from repro.data.rendering import RenderModel
from repro.data.store import ObjectStore
from repro.errors import DataError


class KnowledgeBase:
    """A named multi-modal knowledge base.

    Args:
        name: Human-readable identifier (e.g. ``"fashion"``).
        space: The concept space objects were generated from.
        render_model: The renderers that produced (and can decode) content.
        store: The object collection; may start empty and be filled later.
        modalities: Modalities every object carries.
    """

    def __init__(
        self,
        name: str,
        space: ConceptSpace,
        render_model: RenderModel,
        store: Optional[ObjectStore] = None,
        modalities: Sequence[Modality] = (Modality.TEXT, Modality.IMAGE),
    ) -> None:
        if not name:
            raise DataError("knowledge base needs a non-empty name")
        self.name = name
        self.space = space
        self.render_model = render_model
        self.store = store if store is not None else ObjectStore()
        self.modalities = tuple(Modality.parse(m) for m in modalities)
        if not self.modalities:
            raise DataError("knowledge base needs at least one modality")

    def __len__(self) -> int:
        return len(self.store)

    def __iter__(self):
        return iter(self.store)

    def get(self, object_id: int) -> MultiModalObject:
        """Return the object with ``object_id``."""
        return self.store.get(object_id)

    # ------------------------------------------------------------------
    # object creation
    # ------------------------------------------------------------------
    def create_object(
        self,
        concepts: Sequence[str],
        intensities: "Sequence[float] | None" = None,
        metadata: "dict | None" = None,
    ) -> MultiModalObject:
        """Render and store a new object for ``concepts``.

        The object's content is rendered for every modality the knowledge
        base carries, using the next dense id as the per-object noise seed.
        """
        latent = self.space.compose(concepts, intensities)
        object_id = len(self.store)
        content = {}
        for modality in self.modalities:
            if modality is Modality.TEXT:
                content[modality] = self.render_model.text.render(list(concepts), object_id)
            elif modality is Modality.IMAGE:
                content[modality] = self.render_model.image.render(latent, object_id)
            elif modality is Modality.AUDIO:
                content[modality] = self.render_model.audio.render(latent, object_id)
            else:  # pragma: no cover - enum is closed
                raise DataError(f"no renderer for modality {modality!r}")
        return self.store.add(
            content=content,
            concepts=tuple(c.lower() for c in concepts),
            latent=latent,
            metadata=metadata,
        )

    def discard_object(self, object_id: int) -> None:
        """Roll back the most recent :meth:`create_object`.

        Used by the coordinator when the index insertion of a freshly
        created object fails: the store must not keep an object the index
        will never surface.  Only the newest object can be discarded.
        """
        self.store.discard_last(object_id)

    def render_view(self, object_id: int, view_seed: int) -> dict:
        """Re-render an existing object's content with fresh noise.

        Returns a modality -> content mapping for an *augmented view* of the
        object: same concepts and latent, different dropped tokens, pixel
        noise, and frame noise.  The contrastive weight learner uses pairs
        of views as positives, so it never touches the hidden latent.
        """
        obj = self.store.get(object_id)
        noise_key = ("view", object_id, view_seed)
        content = {}
        for modality in self.modalities:
            if modality is Modality.TEXT:
                content[modality] = self.render_model.text.render(
                    list(obj.concepts), noise_key
                )
            elif modality is Modality.IMAGE:
                content[modality] = self.render_model.image.render(obj.latent, noise_key)
            elif modality is Modality.AUDIO:
                content[modality] = self.render_model.audio.render(obj.latent, noise_key)
        return content

    # ------------------------------------------------------------------
    # oracle ground truth (evaluation only)
    # ------------------------------------------------------------------
    def latent_matrix(self) -> np.ndarray:
        """Stack all ground-truth latents into an (n, latent_dim) matrix."""
        if len(self.store) == 0:
            raise DataError(f"knowledge base {self.name!r} is empty")
        return np.stack([obj.latent for obj in self.store])

    def ground_truth_neighbors(
        self,
        target_latent: np.ndarray,
        k: int,
        exclude: Iterable[int] = (),
    ) -> List[int]:
        """Exact top-``k`` object ids by cosine similarity to a latent.

        This is the oracle the paper's accuracy comparisons are scored
        against.  ``exclude`` removes ids (e.g. the reference image's own
        object) from consideration.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        latents = self.latent_matrix()
        target = np.asarray(target_latent, dtype=np.float64)
        scores = latents @ target / max(np.linalg.norm(target), 1e-12)
        for object_id in exclude:
            if 0 <= object_id < scores.size:
                scores[object_id] = -np.inf
        k = min(k, scores.size)
        top = np.argpartition(-scores, k - 1)[:k]
        return [int(i) for i in top[np.argsort(-scores[top])]]

    def ground_truth_for_concepts(
        self,
        concepts: Sequence[str],
        k: int,
        exclude: Iterable[int] = (),
    ) -> List[int]:
        """Exact top-``k`` ids for a concept-level query."""
        return self.ground_truth_neighbors(self.space.compose(concepts), k, exclude)

    def describe(self) -> str:
        """One-line summary used by the status-monitoring panel."""
        mods = "+".join(m.value for m in self.modalities)
        return (
            f"knowledge base {self.name!r}: {len(self.store)} objects, "
            f"modalities [{mods}], {len(self.space)} concepts, "
            f"latent dim {self.space.latent_dim}"
        )
