"""Saving and loading knowledge bases.

The on-disk layout of a knowledge base directory is:

* ``space.json`` — concept vocabulary, latent dim, seeds, renderer settings.
* ``objects.json`` — per-object concepts, text content, and metadata.
* ``arrays.npz`` — ground-truth latents plus image/audio tensors.

Renderer projection matrices are not stored; they are deterministic in the
seed and are re-derived on load, so saved bases stay small and loads are
verified to reproduce identical content.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.data.concepts import ConceptSpace
from repro.data.knowledge_base import KnowledgeBase
from repro.data.modality import Modality
from repro.data.rendering import AudioSpec, ImageSpec, RenderModel
from repro.errors import DataError

_SPACE_FILE = "space.json"
_OBJECTS_FILE = "objects.json"
_ARRAYS_FILE = "arrays.npz"


def _vocabulary_of(space: ConceptSpace) -> Dict[str, List[str]]:
    """Reconstruct the category -> names mapping of a concept space."""
    vocabulary: Dict[str, List[str]] = {}
    for category in space.categories:
        vocabulary[category] = list(space.names_in_category(category))
    return vocabulary


def save_knowledge_base(kb: KnowledgeBase, directory: "str | Path") -> Path:
    """Serialise ``kb`` under ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    space_doc = {
        "name": kb.name,
        "latent_dim": kb.space.latent_dim,
        "seed": kb.space.seed,
        "vocabulary": _vocabulary_of(kb.space),
        "modalities": [m.value for m in kb.modalities],
        "render_seed": kb.render_model.seed,
        "text_drop_probability": kb.render_model.text.drop_probability,
        "image_spec": {
            "height": kb.render_model.image.spec.height,
            "width": kb.render_model.image.spec.width,
            "noise_sigma": kb.render_model.image.spec.noise_sigma,
        },
        "audio_spec": {
            "frames": kb.render_model.audio.spec.frames,
            "noise_sigma": kb.render_model.audio.spec.noise_sigma,
            "smoothing": kb.render_model.audio.spec.smoothing,
        },
    }
    (directory / _SPACE_FILE).write_text(json.dumps(space_doc, indent=2))

    objects_doc = []
    latents = []
    images = []
    audios = []
    for obj in kb.store:
        record = {
            "object_id": obj.object_id,
            "concepts": list(obj.concepts),
            "metadata": obj.metadata,
            "text": obj.content.get(Modality.TEXT),
        }
        objects_doc.append(record)
        latents.append(np.asarray(obj.latent))
        if Modality.IMAGE in obj.content:
            images.append(np.asarray(obj.content[Modality.IMAGE]))
        if Modality.AUDIO in obj.content:
            audios.append(np.asarray(obj.content[Modality.AUDIO]))
    (directory / _OBJECTS_FILE).write_text(json.dumps(objects_doc, indent=2))

    arrays = {"latents": np.stack(latents) if latents else np.zeros((0, kb.space.latent_dim))}
    if images:
        arrays["images"] = np.stack(images)
    if audios:
        arrays["audios"] = np.stack(audios)
    np.savez_compressed(directory / _ARRAYS_FILE, **arrays)
    return directory


def load_knowledge_base(directory: "str | Path") -> KnowledgeBase:
    """Load a knowledge base previously written by :func:`save_knowledge_base`."""
    directory = Path(directory)
    space_path = directory / _SPACE_FILE
    if not space_path.exists():
        raise DataError(f"no knowledge base found at {directory} (missing {_SPACE_FILE})")
    space_doc = json.loads(space_path.read_text())
    objects_doc = json.loads((directory / _OBJECTS_FILE).read_text())

    space = ConceptSpace(
        space_doc["vocabulary"],
        latent_dim=space_doc["latent_dim"],
        seed=space_doc["seed"],
    )
    render_model = RenderModel(
        space,
        seed=space_doc["render_seed"],
        text_drop_probability=space_doc["text_drop_probability"],
        image_spec=ImageSpec(**space_doc["image_spec"]),
        audio_spec=AudioSpec(**space_doc["audio_spec"]),
    )
    modalities = [Modality.parse(m) for m in space_doc["modalities"]]
    kb = KnowledgeBase(
        name=space_doc["name"],
        space=space,
        render_model=render_model,
        modalities=modalities,
    )

    with np.load(directory / _ARRAYS_FILE) as arrays:
        latents = arrays["latents"]
        images = arrays["images"] if "images" in arrays else None
        audios = arrays["audios"] if "audios" in arrays else None

    for record in objects_doc:
        object_id = record["object_id"]
        content = {}
        if record["text"] is not None:
            content[Modality.TEXT] = record["text"]
        if images is not None and Modality.IMAGE in modalities:
            content[Modality.IMAGE] = images[object_id]
        if audios is not None and Modality.AUDIO in modalities:
            content[Modality.AUDIO] = audios[object_id]
        kb.store.add(
            content=content,
            concepts=tuple(record["concepts"]),
            latent=latents[object_id],
            metadata=record["metadata"],
        )
    return kb
