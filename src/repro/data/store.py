"""The object collection underlying a knowledge base.

The paper's data-preprocessing component stores multi-modal data "as an
object collection with unique IDs for indexing"; :class:`ObjectStore` is that
collection.  Ids are dense integers assigned at insertion, which lets vector
indexes address objects by row number.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.data.modality import Modality
from repro.data.objects import MultiModalObject
from repro.errors import DataError, UnknownObjectError


class ObjectStore:
    """An append-only collection of :class:`MultiModalObject` with dense ids."""

    def __init__(self) -> None:
        self._objects: List[MultiModalObject] = []

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[MultiModalObject]:
        return iter(self._objects)

    def __contains__(self, object_id: int) -> bool:
        return 0 <= object_id < len(self._objects)

    def add(
        self,
        content: Dict[Modality, Any],
        concepts: Tuple[str, ...] = (),
        latent: Optional[Any] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> MultiModalObject:
        """Create an object from ``content`` and assign it the next id."""
        obj = MultiModalObject(
            object_id=len(self._objects),
            content=content,
            concepts=tuple(concepts),
            latent=latent,
            metadata=dict(metadata or {}),
        )
        self._objects.append(obj)
        return obj

    def add_object(self, obj: MultiModalObject) -> None:
        """Append a pre-built object; its id must equal the next dense id."""
        expected = len(self._objects)
        if obj.object_id != expected:
            raise DataError(
                f"object id {obj.object_id} breaks dense id assignment "
                f"(expected {expected})"
            )
        self._objects.append(obj)

    def get(self, object_id: int) -> MultiModalObject:
        """Return the object with ``object_id`` or raise UnknownObjectError."""
        if not isinstance(object_id, int) or object_id not in self:
            raise UnknownObjectError(object_id)
        return self._objects[object_id]

    def discard_last(self, object_id: int) -> None:
        """Roll back the most recent add.

        Only the newest object may be discarded — dense ids must stay
        dense — so ``object_id`` is required and checked to make the
        caller's rollback intent explicit.
        """
        if not self._objects or self._objects[-1].object_id != object_id:
            raise DataError(
                f"cannot discard object {object_id}: it is not the most "
                "recently added object"
            )
        self._objects.pop()

    def ids(self) -> range:
        """All assigned ids, in order."""
        return range(len(self._objects))

    def modalities(self) -> Tuple[Modality, ...]:
        """The modalities carried by every object in the store.

        Returns the intersection across objects, preserving the first
        object's ordering; empty store yields an empty tuple.
        """
        if not self._objects:
            return ()
        common = set(self._objects[0].modalities)
        for obj in self._objects[1:]:
            common &= set(obj.modalities)
        return tuple(m for m in self._objects[0].modalities if m in common)
