"""Multi-modal data substrate.

This package replaces the real image/text corpora used by the MQA demo with a
generative *latent-concept world*: every object owns a ground-truth latent
vector assembled from named concepts, and each modality (text, image, audio)
is rendered from that latent with modality-specific projections and noise.

The latent is never exposed to the retrieval stack — encoders must recover it
from rendered content — but it gives the evaluation harness exact ground
truth, which is what makes the paper's comparisons measurable offline.
"""

from repro.data.concepts import Concept, ConceptSpace
from repro.data.datasets import DOMAINS, DatasetSpec, generate_knowledge_base
from repro.data.knowledge_base import KnowledgeBase
from repro.data.modality import Modality
from repro.data.objects import MultiModalObject, RawQuery
from repro.data.persistence import load_knowledge_base, save_knowledge_base
from repro.data.rendering import (
    AudioRenderer,
    ImageRenderer,
    RenderModel,
    TextRenderer,
)
from repro.data.store import ObjectStore

__all__ = [
    "AudioRenderer",
    "Concept",
    "ConceptSpace",
    "DOMAINS",
    "DatasetSpec",
    "ImageRenderer",
    "KnowledgeBase",
    "Modality",
    "MultiModalObject",
    "ObjectStore",
    "RawQuery",
    "RenderModel",
    "TextRenderer",
    "generate_knowledge_base",
    "load_knowledge_base",
    "save_knowledge_base",
]
