"""Domain-specific synthetic dataset generators.

Each domain mirrors a scenario from the paper's figures:

* ``fashion`` — Figure 1 ("long-sleeved top for older women", "floral pattern").
* ``scenes`` — Figure 5 ("foggy clouds").
* ``food`` — Figure 4(a) ("moldy cheese ... similar degree of mold").
* ``products`` — Figure 4(b) ("coats made of similar material").
* ``movies`` — the data-preprocessing example (film + poster + synopsis).

Domains differ only in their concept vocabularies; the generative machinery
is shared, so every domain gets exact ground truth for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.data.concepts import ConceptSpace
from repro.data.knowledge_base import KnowledgeBase
from repro.data.modality import DEFAULT_MODALITIES, Modality
from repro.data.rendering import AudioSpec, ImageSpec, RenderModel
from repro.errors import DataError
from repro.utils import derive_rng

DOMAINS: Dict[str, Mapping[str, Tuple[str, ...]]] = {
    "fashion": {
        "garment": ("top", "dress", "coat", "skirt", "trousers", "blouse", "jacket"),
        "sleeve": ("long-sleeved", "short-sleeved", "sleeveless"),
        "pattern": ("floral", "striped", "plain", "checked", "polka-dot"),
        "color": ("red", "blue", "black", "white", "green", "beige"),
        "material": ("cotton", "wool", "silk", "leather", "linen", "denim"),
        "audience": ("women", "men", "older", "younger", "children"),
    },
    "scenes": {
        "weather": ("foggy", "sunny", "stormy", "snowy", "rainy", "misty"),
        "sky": ("clouds", "clear-sky", "sunset", "stars", "rainbow"),
        "landscape": ("mountains", "forest", "ocean", "desert", "valley", "lake"),
        "time": ("dawn", "noon", "dusk", "night"),
        "mood": ("serene", "dramatic", "gloomy", "vivid"),
    },
    "food": {
        "item": ("cheese", "bread", "wine", "ham", "olives", "grapes"),
        "condition": ("moldy", "fresh", "aged", "ripe", "dried", "smoked"),
        "intensity": ("lightly", "moderately", "heavily"),
        "texture": ("soft", "hard", "creamy", "crumbly"),
        "origin": ("french", "italian", "swiss", "spanish", "dutch"),
    },
    "products": {
        "item": ("coat", "bag", "shoes", "scarf", "hat", "gloves", "belt"),
        "material": ("leather", "wool", "suede", "canvas", "fur", "nylon", "tweed"),
        "finish": ("matte", "glossy", "textured", "quilted", "brushed"),
        "color": ("brown", "black", "tan", "navy", "grey", "burgundy"),
        "style": ("classic", "modern", "vintage", "sporty"),
    },
    "movies": {
        "genre": ("thriller", "comedy", "drama", "sci-fi", "romance", "horror", "western"),
        "era": ("silent-era", "golden-age", "modern", "contemporary"),
        "tone": ("dark", "lighthearted", "epic", "intimate", "surreal"),
        "setting": ("urban", "rural", "space", "historical", "underwater"),
        "award": ("acclaimed", "cult", "blockbuster", "independent"),
    },
    "travel": {
        "place": ("beach", "city", "temple", "market", "harbor", "castle", "vineyard"),
        "region": ("mediterranean", "alpine", "tropical", "nordic", "coastal"),
        "season": ("spring", "summer", "autumn", "winter"),
        "activity": ("hiking", "diving", "sightseeing", "dining", "skiing"),
        "vibe": ("crowded", "quiet", "romantic", "adventurous"),
    },
}
"""Concept vocabularies keyed by domain name."""


@dataclass(frozen=True)
class DatasetSpec:
    """Parameters controlling knowledge-base generation.

    Attributes:
        domain: One of the keys of :data:`DOMAINS`.
        size: Number of objects to generate.
        seed: Master seed for the concept space, renderers, and sampling.
        latent_dim: Latent dimensionality of the concept space.
        modalities: Modalities each object carries.
        text_drop_probability: Chance that a concept is omitted from an
            object's description (text incompleteness).
        image_noise_sigma: Pixel noise level of the image modality.
        audio_noise_sigma: Frame noise level of the audio modality.
        min_concepts / max_concepts: Concept-bag size range per object.
    """

    domain: str = "fashion"
    size: int = 500
    seed: int = 7
    latent_dim: int = 64
    modalities: Tuple[Modality, ...] = DEFAULT_MODALITIES
    text_drop_probability: float = 0.15
    image_noise_sigma: float = 0.05
    audio_noise_sigma: float = 0.1
    min_concepts: int = 2
    max_concepts: int = 4


def generate_knowledge_base(spec: DatasetSpec = DatasetSpec()) -> KnowledgeBase:
    """Generate a knowledge base according to ``spec``.

    Sampling is deterministic in ``spec.seed``: the same spec always yields
    byte-identical content across processes.
    """
    if spec.domain not in DOMAINS:
        valid = ", ".join(sorted(DOMAINS))
        raise DataError(f"unknown domain {spec.domain!r}; expected one of: {valid}")
    if spec.size <= 0:
        raise DataError(f"dataset size must be positive, got {spec.size}")

    space = ConceptSpace(
        DOMAINS[spec.domain], latent_dim=spec.latent_dim, seed=spec.seed
    )
    render_model = RenderModel(
        space,
        seed=spec.seed,
        text_drop_probability=spec.text_drop_probability,
        image_spec=ImageSpec(noise_sigma=spec.image_noise_sigma),
        audio_spec=AudioSpec(noise_sigma=spec.audio_noise_sigma),
    )
    kb = KnowledgeBase(
        name=spec.domain,
        space=space,
        render_model=render_model,
        modalities=spec.modalities,
    )
    rng = derive_rng(spec.seed, "dataset", spec.domain)
    for _ in range(spec.size):
        concepts = space.sample_object_concepts(
            rng, min_concepts=spec.min_concepts, max_concepts=spec.max_concepts
        )
        intensities = 0.5 + rng.random(len(concepts))
        kb.create_object(concepts, intensities=intensities)
    return kb
