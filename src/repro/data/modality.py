"""The modality taxonomy shared by the whole system."""

from __future__ import annotations

import enum


class Modality(str, enum.Enum):
    """A kind of content an object or query can carry.

    Inherits from :class:`str` so values serialise cleanly to JSON and can be
    used directly as dictionary keys in configuration files.
    """

    TEXT = "text"
    IMAGE = "image"
    AUDIO = "audio"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @classmethod
    def parse(cls, value: "str | Modality") -> "Modality":
        """Coerce a string such as ``"text"`` into a :class:`Modality`.

        Raises :class:`ValueError` with the list of valid names on failure.
        """
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            valid = ", ".join(m.value for m in cls)
            raise ValueError(f"unknown modality {value!r}; expected one of: {valid}") from None


DEFAULT_MODALITIES = (Modality.TEXT, Modality.IMAGE)
"""The modality pair used throughout the paper's demonstration scenarios."""
