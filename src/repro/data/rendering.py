"""Rendering latents into modality content (and decoding them back).

Each renderer owns the fixed generative parameters for one modality:

* :class:`TextRenderer` — emits the object's concept names as tokens, with a
  drop probability (descriptions are incomplete in real corpora) plus filler
  words drawn from a domain-neutral vocabulary.
* :class:`ImageRenderer` — projects the latent through a fixed random matrix
  into a 2-D pixel grid and adds Gaussian noise.
* :class:`AudioRenderer` — projects the latent into a 1-D frame sequence with
  temporal smoothing and noise.

Renderers also expose ``decode`` methods (the pseudo-inverse of the
projection).  Encoders use these the way a pretrained model uses its learned
weights: they are public "model parameters" of the world, not the per-object
ground truth, which stays hidden behind noise and dropped tokens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.data.concepts import ConceptSpace
from repro.errors import DataError
from repro.utils import derive_rng, l2_normalize

FILLER_WORDS: Tuple[str, ...] = (
    "a", "an", "the", "photo", "picture", "image", "of", "with", "some",
    "very", "style", "item", "shown", "featuring", "and", "quite", "nice",
)
"""Non-concept tokens mixed into descriptions, shared across domains."""


class TextRenderer:
    """Render an object's concepts as a noisy textual description."""

    def __init__(
        self,
        space: ConceptSpace,
        drop_probability: float = 0.15,
        filler_count: int = 3,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(f"drop_probability must be in [0, 1), got {drop_probability}")
        if filler_count < 0:
            raise ValueError(f"filler_count must be >= 0, got {filler_count}")
        self.space = space
        self.drop_probability = drop_probability
        self.filler_count = filler_count
        self.seed = seed

    def render(self, concepts: Sequence[str], noise_key: object) -> str:
        """Produce a token string for ``concepts``.

        At least one concept always survives the drop step so no object ends
        up with an empty description.
        """
        if not concepts:
            raise DataError("cannot render text for zero concepts")
        rng = derive_rng(self.seed, "text", noise_key)
        kept: List[str] = [c for c in concepts if rng.random() >= self.drop_probability]
        if not kept:
            kept = [concepts[int(rng.integers(len(concepts)))]]
        fillers = [
            FILLER_WORDS[int(rng.integers(len(FILLER_WORDS)))]
            for _ in range(self.filler_count)
        ]
        tokens = kept + fillers
        order = rng.permutation(len(tokens))
        return " ".join(tokens[i] for i in order)

    @staticmethod
    def tokenize(text: str) -> List[str]:
        """Split a description into lower-case tokens."""
        return [token for token in text.lower().split() if token]


@dataclass(frozen=True)
class ImageSpec:
    """Shape and noise level of the synthetic image modality."""

    height: int = 16
    width: int = 16
    noise_sigma: float = 0.05

    @property
    def pixels(self) -> int:
        return self.height * self.width


class ImageRenderer:
    """Render latents into pixel grids via a fixed random projection."""

    def __init__(self, space: ConceptSpace, spec: ImageSpec = ImageSpec(), seed: int = 0) -> None:
        if spec.pixels < space.latent_dim:
            raise DataError(
                f"image has {spec.pixels} pixels but latent_dim is {space.latent_dim}; "
                "the projection would lose rank"
            )
        self.space = space
        self.spec = spec
        self.seed = seed
        rng = derive_rng(seed, "image-projection")
        self._projection = rng.standard_normal((spec.pixels, space.latent_dim))
        self._projection /= np.sqrt(space.latent_dim)
        self._decoder = np.linalg.pinv(self._projection)

    @property
    def projection(self) -> np.ndarray:
        """The (pixels, latent_dim) generative projection matrix."""
        return self._projection

    def render(self, latent: np.ndarray, noise_key: object) -> np.ndarray:
        """Project ``latent`` into an image grid and add pixel noise."""
        latent = np.asarray(latent, dtype=np.float64)
        if latent.shape != (self.space.latent_dim,):
            raise DataError(
                f"latent has shape {latent.shape}, expected ({self.space.latent_dim},)"
            )
        rng = derive_rng(self.seed, "image-noise", noise_key)
        flat = self._projection @ latent
        flat = flat + self.spec.noise_sigma * rng.standard_normal(self.spec.pixels)
        return flat.reshape(self.spec.height, self.spec.width)

    def decode(self, image: np.ndarray) -> np.ndarray:
        """Recover a latent estimate from an image (least-squares inverse)."""
        flat = np.asarray(image, dtype=np.float64).reshape(-1)
        if flat.size != self.spec.pixels:
            raise DataError(
                f"image has {flat.size} pixels, renderer expects {self.spec.pixels}"
            )
        return l2_normalize(self._decoder @ flat)

    def decode_batch(self, images: np.ndarray) -> np.ndarray:
        """Decode ``(n, pixels)`` (or ``(n, h, w)``) images in one gemm."""
        flat = np.asarray(images, dtype=np.float64).reshape(len(images), -1)
        if flat.shape[1] != self.spec.pixels:
            raise DataError(
                f"images have {flat.shape[1]} pixels, renderer expects {self.spec.pixels}"
            )
        return l2_normalize(flat @ self._decoder.T)


@dataclass(frozen=True)
class AudioSpec:
    """Shape and noise level of the synthetic audio modality."""

    frames: int = 128
    noise_sigma: float = 0.1
    smoothing: int = 4


class AudioRenderer:
    """Render latents into 1-D frame sequences with temporal smoothing."""

    def __init__(self, space: ConceptSpace, spec: AudioSpec = AudioSpec(), seed: int = 0) -> None:
        if spec.frames < space.latent_dim:
            raise DataError(
                f"audio has {spec.frames} frames but latent_dim is {space.latent_dim}"
            )
        self.space = space
        self.spec = spec
        self.seed = seed
        rng = derive_rng(seed, "audio-projection")
        self._projection = rng.standard_normal((spec.frames, space.latent_dim))
        self._projection /= np.sqrt(space.latent_dim)
        self._decoder = np.linalg.pinv(self._projection)

    def render(self, latent: np.ndarray, noise_key: object) -> np.ndarray:
        """Project ``latent`` into frames, smooth, and add noise."""
        latent = np.asarray(latent, dtype=np.float64)
        if latent.shape != (self.space.latent_dim,):
            raise DataError(
                f"latent has shape {latent.shape}, expected ({self.space.latent_dim},)"
            )
        rng = derive_rng(self.seed, "audio-noise", noise_key)
        frames = self._projection @ latent
        if self.spec.smoothing > 1:
            kernel = np.ones(self.spec.smoothing) / self.spec.smoothing
            frames = np.convolve(frames, kernel, mode="same")
        return frames + self.spec.noise_sigma * rng.standard_normal(self.spec.frames)

    def decode(self, audio: np.ndarray) -> np.ndarray:
        """Recover a latent estimate from audio frames."""
        frames = np.asarray(audio, dtype=np.float64).reshape(-1)
        if frames.size != self.spec.frames:
            raise DataError(
                f"audio has {frames.size} frames, renderer expects {self.spec.frames}"
            )
        return l2_normalize(self._decoder @ frames)

    def decode_batch(self, audios: np.ndarray) -> np.ndarray:
        """Decode ``(n, frames)`` clips in one gemm."""
        frames = np.asarray(audios, dtype=np.float64).reshape(len(audios), -1)
        if frames.shape[1] != self.spec.frames:
            raise DataError(
                f"audio has {frames.shape[1]} frames, renderer expects {self.spec.frames}"
            )
        return l2_normalize(frames @ self._decoder.T)


class RenderModel:
    """Bundle of per-modality renderers for one knowledge base."""

    def __init__(
        self,
        space: ConceptSpace,
        seed: int = 0,
        text_drop_probability: float = 0.15,
        image_spec: ImageSpec = ImageSpec(),
        audio_spec: AudioSpec = AudioSpec(),
    ) -> None:
        self.space = space
        self.seed = seed
        self.text = TextRenderer(space, drop_probability=text_drop_probability, seed=seed)
        self.image = ImageRenderer(space, spec=image_spec, seed=seed)
        self.audio = AudioRenderer(space, spec=audio_spec, seed=seed)
