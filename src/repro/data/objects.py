"""Multi-modal objects and raw user queries.

An object bundles all modalities of one real-world entity under a single id —
the paper's example is a movie stored as film + poster + synopsis.  Queries
mirror objects but may carry any subset of modalities (text only, text +
reference image, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.data.modality import Modality
from repro.errors import ModalityError


@dataclass
class MultiModalObject:
    """One entity in the knowledge base.

    Attributes:
        object_id: Unique integer id assigned by the store.
        content: Mapping from modality to rendered content (text string,
            image array, audio array).
        concepts: Ground-truth concept names.  Hidden from the retrieval
            stack; used only for rendering and evaluation.
        latent: Ground-truth unit-norm latent vector (same caveat).
        metadata: Free-form attributes (e.g. a product title).
    """

    object_id: int
    content: Dict[Modality, Any]
    concepts: Tuple[str, ...] = ()
    latent: Optional[np.ndarray] = field(default=None, repr=False)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.content = {Modality.parse(k): v for k, v in self.content.items()}
        if not self.content:
            raise ModalityError(f"object {self.object_id} has no modalities")

    @property
    def modalities(self) -> Tuple[Modality, ...]:
        """Modalities this object carries, in insertion order."""
        return tuple(self.content)

    def get(self, modality: Modality) -> Any:
        """Return the content for ``modality``.

        Raises :class:`ModalityError` if the object does not carry it.
        """
        modality = Modality.parse(modality)
        try:
            return self.content[modality]
        except KeyError:
            carried = ", ".join(m.value for m in self.content)
            raise ModalityError(
                f"object {self.object_id} has no {modality.value!r} modality "
                f"(carries: {carried})"
            ) from None

    def has(self, modality: Modality) -> bool:
        """True if the object carries ``modality``."""
        return Modality.parse(modality) in self.content


@dataclass
class RawQuery:
    """A user query before encoding: any subset of modality content.

    Attributes:
        content: Mapping from modality to raw content.  A text-only query has
            just a TEXT entry; an image-assisted query adds an IMAGE entry.
        metadata: Free-form query attributes (round number, session id, ...).
    """

    content: Dict[Modality, Any]
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.content = {Modality.parse(k): v for k, v in self.content.items()}
        if not self.content:
            raise ModalityError("query has no modalities")

    @classmethod
    def from_text(cls, text: str, **metadata: Any) -> "RawQuery":
        """Convenience constructor for a text-only query."""
        return cls(content={Modality.TEXT: text}, metadata=dict(metadata))

    @classmethod
    def from_text_and_image(cls, text: str, image: Any, **metadata: Any) -> "RawQuery":
        """Convenience constructor for an image-assisted query."""
        return cls(
            content={Modality.TEXT: text, Modality.IMAGE: image},
            metadata=dict(metadata),
        )

    @property
    def modalities(self) -> Tuple[Modality, ...]:
        """Modalities present in the query."""
        return tuple(self.content)

    def get(self, modality: Modality) -> Any:
        """Return the query content for ``modality`` or raise ModalityError."""
        modality = Modality.parse(modality)
        try:
            return self.content[modality]
        except KeyError:
            raise ModalityError(f"query has no {modality.value!r} modality") from None

    def has(self, modality: Modality) -> bool:
        """True if the query carries ``modality``."""
        return Modality.parse(modality) in self.content

    def with_content(self, modality: Modality, value: Any) -> "RawQuery":
        """Return a copy of this query with ``modality`` set to ``value``."""
        content: Dict[Modality, Any] = dict(self.content)
        content[Modality.parse(modality)] = value
        return RawQuery(content=content, metadata=dict(self.metadata))
