"""The latent concept space underlying every synthetic knowledge base.

A :class:`ConceptSpace` assigns each named concept (e.g. ``"floral"``,
``"long-sleeved"``, ``"fog"``) a unit-norm latent vector.  Objects are born
as weighted bags of concepts; their ground-truth latent is the normalised
weighted sum of concept vectors.  Rendered modalities and queries all derive
from these latents, so similarity in latent space is the oracle the
evaluation harness measures retrieval against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import DataError
from repro.utils import derive_rng, l2_normalize


@dataclass(frozen=True)
class Concept:
    """A named point in latent space.

    Attributes:
        name: Unique lower-case identifier, also used as a text token.
        category: Grouping label (e.g. ``"pattern"``, ``"weather"``) used by
            dataset generators to sample coherent objects.
        vector: Unit-norm latent vector of the space's dimensionality.
    """

    name: str
    category: str
    vector: np.ndarray = field(repr=False, compare=False)


class ConceptSpace:
    """A vocabulary of concepts embedded in a shared latent space.

    Args:
        vocabulary: Mapping from category name to the concept names in it.
        latent_dim: Dimensionality of the latent space.
        seed: Master seed; concept vectors are derived deterministically
            from ``(seed, category, name)`` so spaces are reproducible.
    """

    def __init__(
        self,
        vocabulary: Mapping[str, Sequence[str]],
        latent_dim: int = 64,
        seed: int = 0,
    ) -> None:
        if latent_dim <= 0:
            raise ValueError(f"latent_dim must be positive, got {latent_dim}")
        if not vocabulary:
            raise DataError("concept vocabulary must not be empty")
        self.latent_dim = latent_dim
        self.seed = seed
        self._concepts: Dict[str, Concept] = {}
        self._by_category: Dict[str, List[str]] = {}
        for category, names in vocabulary.items():
            if not names:
                raise DataError(f"category {category!r} has no concepts")
            for name in names:
                self._add(name, category)

    def _add(self, name: str, category: str) -> None:
        name = name.lower()
        if name in self._concepts:
            raise DataError(f"duplicate concept name: {name!r}")
        rng = derive_rng(self.seed, "concept", category, name)
        vector = l2_normalize(rng.standard_normal(self.latent_dim))
        self._concepts[name] = Concept(name=name, category=category, vector=vector)
        self._by_category.setdefault(category, []).append(name)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name.lower() in self._concepts

    def __len__(self) -> int:
        return len(self._concepts)

    def get(self, name: str) -> Concept:
        """Return the concept called ``name`` (case-insensitive)."""
        try:
            return self._concepts[name.lower()]
        except KeyError:
            raise DataError(f"unknown concept: {name!r}") from None

    @property
    def names(self) -> Tuple[str, ...]:
        """All concept names, in insertion order."""
        return tuple(self._concepts)

    @property
    def categories(self) -> Tuple[str, ...]:
        """All category names, in insertion order."""
        return tuple(self._by_category)

    def names_in_category(self, category: str) -> Tuple[str, ...]:
        """Concept names belonging to ``category``."""
        try:
            return tuple(self._by_category[category])
        except KeyError:
            raise DataError(f"unknown concept category: {category!r}") from None

    # ------------------------------------------------------------------
    # latent composition
    # ------------------------------------------------------------------
    def compose(
        self,
        concepts: Iterable[str],
        intensities: "Sequence[float] | None" = None,
    ) -> np.ndarray:
        """Build the unit-norm latent for a weighted bag of concepts.

        Args:
            concepts: Concept names (must exist in the space).
            intensities: Optional per-concept weights; defaults to all ones.

        Returns:
            A unit-norm latent vector of shape ``(latent_dim,)``.
        """
        names = [name.lower() for name in concepts]
        if not names:
            raise DataError("cannot compose a latent from zero concepts")
        if intensities is None:
            weights = np.ones(len(names))
        else:
            weights = np.asarray(list(intensities), dtype=np.float64)
            if weights.shape != (len(names),):
                raise DataError(
                    f"got {len(names)} concepts but {weights.size} intensities"
                )
            if (weights < 0).any():
                raise DataError("concept intensities must be non-negative")
        stacked = np.stack([self.get(name).vector for name in names])
        return l2_normalize(weights @ stacked)

    def known_tokens(self, tokens: Iterable[str]) -> List[str]:
        """Filter ``tokens`` down to those that are concept names."""
        return [token for token in (t.lower() for t in tokens) if token in self._concepts]

    def sample_object_concepts(
        self,
        rng: np.random.Generator,
        min_concepts: int = 2,
        max_concepts: int = 4,
    ) -> List[str]:
        """Sample a coherent concept bag: at most one concept per category.

        Drawing each concept from a distinct category mimics real objects
        (a coat has one material, one colour, one pattern) and keeps the
        synthetic retrieval problem well-posed.
        """
        if min_concepts < 1 or max_concepts < min_concepts:
            raise ValueError("need 1 <= min_concepts <= max_concepts")
        count = int(rng.integers(min_concepts, max_concepts + 1))
        count = min(count, len(self._by_category))
        categories = list(self._by_category)
        chosen = rng.choice(len(categories), size=count, replace=False)
        picked: List[str] = []
        for idx in chosen:
            names = self._by_category[categories[int(idx)]]
            picked.append(names[int(rng.integers(len(names)))])
        return picked
