"""Command-line interface: an interactive MQA shell over the API layer.

Usage::

    python -m repro --domain scenes --size 400          # interactive shell
    python -m repro --domain food --ask "moldy cheese"  # one-shot query
    python -m repro --workers 4 --ask "foggy peaks"     # concurrent engine
    python -m repro replay flight.jsonl                 # re-execute a recording
    python -m repro profile flight.jsonl                # aggregate its spans
    python -m repro loadgen --workers 4 --queries 200   # throughput report
    python -m repro stats --queries 100                 # cost-plane report

Inside the shell::

    > foggy clouds over mountains        # any text = a query
    > /select 0                          # click result card 0
    > /refine more of these at dusk      # refine from the selection
    > /status  /weights  /transcript     # panels
    > /quit
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import MQAConfig
from repro.data import DOMAINS, DatasetSpec
from repro.server import ApiServer


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Interactive multi-modal query answering (MQA reproduction)",
    )
    parser.add_argument(
        "--domain", default="scenes", choices=sorted(DOMAINS),
        help="knowledge-base domain",
    )
    parser.add_argument("--size", type=int, default=400, help="knowledge-base size")
    parser.add_argument("--seed", type=int, default=7, help="generation seed")
    parser.add_argument(
        "--framework", default="must", help="retrieval framework (mr/je/must)"
    )
    parser.add_argument("--index", default="hnsw", help="index algorithm")
    parser.add_argument(
        "--encoder-set", default="clip-joint", dest="encoder_set",
        help="encoder set name",
    )
    parser.add_argument("--llm", default="template", help="llm name or 'none'")
    parser.add_argument("--k", type=int, default=5, help="results per round")
    parser.add_argument(
        "--ask", default=None, help="one-shot query instead of the shell"
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="capture query traces and print the span tree after each answer",
    )
    parser.add_argument(
        "--record", default=None, metavar="PATH",
        help="persist every query to a flight-recorder JSONL file "
        "(replayable with 'repro replay PATH')",
    )
    parser.add_argument(
        "--monitor", action="store_true",
        help="enable online SLO + retrieval-quality monitoring (/health)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="query-engine worker threads (1 = serial inline execution)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=1, dest="max_batch",
        help="micro-batch size cap for POST /search "
        "(1 = no coalescing, the serial behaviour)",
    )
    parser.add_argument(
        "--batch-window-ms", type=float, default=2.0, dest="batch_window_ms",
        help="how long the micro-batch collector waits for the batch to fill",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="partition the knowledge base across N shards behind the "
        "scatter-gather router (default: unsharded)",
    )
    parser.add_argument(
        "--replicas", type=int, default=1,
        help="replicas per shard for read scaling (implies the router)",
    )
    parser.add_argument(
        "--resilience", action="store_true",
        help="enable the resilience layer (retries, deadlines, circuit "
        "breakers, graceful degradation)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None, dest="deadline_ms",
        help="per-request latency budget in milliseconds (implies --resilience)",
    )
    parser.add_argument(
        "--retry-attempts", type=int, default=1, dest="retry_attempts",
        help="attempts per guarded component call (1 = no retries)",
    )
    parser.add_argument(
        "--inject", action="append", default=None, metavar="SPEC",
        dest="inject",
        help="seeded fault injection, repeatable; SPEC is "
        "'site:key=value[,key=value...]', e.g. "
        "'llm.generate:error_rate=0.2' or 'encoder:latency_ms=50,"
        "latency_rate=0.5' (implies --resilience)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0, dest="fault_seed",
        help="seed for the deterministic fault injector",
    )
    parser.add_argument(
        "--tiered", action="store_true",
        help="beyond-RAM serving for --index starling: quantized codes "
        "resident for traversal, full precision memory-mapped for rerank",
    )
    parser.add_argument(
        "--quantize-bits", type=int, default=8, dest="quantize_bits",
        choices=(4, 8), help="resident-tier code width (with --tiered)",
    )
    parser.add_argument(
        "--rerank-factor", type=int, default=4, dest="rerank_factor",
        help="full-precision rerank over-fetch multiplier (with --tiered)",
    )
    parser.add_argument(
        "--mmap-cache-blocks", type=int, default=32, dest="mmap_cache_blocks",
        help="buffer-pool blocks in front of the mmap tier (with --tiered)",
    )
    parser.add_argument(
        "--planner", action="store_true",
        help="self-tuning query planner: pick per-query search budget "
        "and shard fan-out from live latency/recall distributions",
    )
    parser.add_argument(
        "--recall-floor", type=float, default=0.8, dest="recall_floor",
        help="minimum acceptable recall@k for planner and semantic-cache "
        "decisions",
    )
    parser.add_argument(
        "--semantic-cache", action="store_true", dest="semantic_cache",
        help="serve near-duplicate queries from the semantic cache "
        "(cosine matching over query embeddings)",
    )
    parser.add_argument(
        "--semantic-threshold", type=float, default=0.9,
        dest="semantic_threshold",
        help="cosine similarity at or above which a cached near-duplicate "
        "qualifies (0 = exact-match only)",
    )
    parser.add_argument(
        "--admission", action="store_true",
        help="admission control: shed or degrade requests before the "
        "engine saturates",
    )
    parser.add_argument(
        "--agentic", action="store_true",
        help="agentic answering: decompose the question into per-concept "
        "hops and compose per-claim cited answers",
    )
    parser.add_argument(
        "--agentic-max-hops", type=int, default=4, dest="agentic_max_hops",
        help="maximum decomposed sub-queries per agentic question",
    )
    parser.add_argument(
        "--agentic-refine-rounds", type=int, default=1,
        dest="agentic_refine_rounds",
        help="re-retrieval rounds for unsupported claims (0 disables "
        "refinement)",
    )
    return parser


def parse_fault_specs(specs: "Optional[List[str]]") -> dict:
    """Parse repeated ``--inject site:key=value,...`` flags into a faults dict.

    Raises SystemExit with a usage message on malformed specs; validation
    of the keys/values themselves happens in ``MQAConfig.validate``.
    """
    faults: dict = {}
    for spec in specs or []:
        site, sep, body = spec.partition(":")
        site = site.strip()
        if not sep or not site or not body.strip():
            raise SystemExit(
                f"--inject {spec!r}: expected 'site:key=value[,key=value...]'"
            )
        entry = faults.setdefault(site, {})
        for pair in body.split(","):
            key, sep, value = pair.partition("=")
            key = key.strip()
            if not sep or not key:
                raise SystemExit(
                    f"--inject {spec!r}: malformed 'key=value' pair {pair!r}"
                )
            try:
                entry[key] = float(value)
            except ValueError:
                raise SystemExit(
                    f"--inject {spec!r}: value for {key!r} must be numeric"
                ) from None
    return faults


def make_server(args: argparse.Namespace) -> ApiServer:
    """Build and apply the configured system, reporting progress."""
    faults = parse_fault_specs(getattr(args, "inject", None))
    deadline_ms = getattr(args, "deadline_ms", None)
    resilience = bool(
        getattr(args, "resilience", False) or faults or deadline_ms
    )
    config = MQAConfig(
        dataset=DatasetSpec(domain=args.domain, size=args.size, seed=args.seed),
        framework=args.framework,
        index=args.index,
        encoder_set=args.encoder_set,
        llm=None if args.llm == "none" else args.llm,
        result_count=args.k,
        weight_learning={"steps": 30, "batch_size": 16},
        tracing=getattr(args, "trace", False),
        recorder_path=getattr(args, "record", None),
        monitoring=getattr(args, "monitor", False),
        workers=getattr(args, "workers", 1),
        max_batch=getattr(args, "max_batch", 1),
        batch_window_ms=getattr(args, "batch_window_ms", 2.0),
        shards=getattr(args, "shards", None),
        replicas=getattr(args, "replicas", 1),
        resilience=resilience,
        retry_attempts=getattr(args, "retry_attempts", 1),
        deadline_ms=deadline_ms,
        fault_seed=getattr(args, "fault_seed", 0),
        faults=faults,
        tiered=getattr(args, "tiered", False),
        quantize_bits=getattr(args, "quantize_bits", 8),
        rerank_factor=getattr(args, "rerank_factor", 4),
        mmap_cache_blocks=getattr(args, "mmap_cache_blocks", 32),
        planner=getattr(args, "planner", False),
        recall_floor=getattr(args, "recall_floor", 0.8),
        semantic_cache=getattr(args, "semantic_cache", False),
        semantic_threshold=getattr(args, "semantic_threshold", 0.9),
        admission=getattr(args, "admission", False),
        agentic=getattr(args, "agentic", False),
        agentic_max_hops=getattr(args, "agentic_max_hops", 4),
        agentic_refine_rounds=getattr(args, "agentic_refine_rounds", 1),
    )
    server = ApiServer(config)
    print(f"building {args.domain} knowledge base ({args.size} objects)...")
    response = server.handle("POST", "/apply")
    if not response["ok"]:
        print("setup failed:", response["error"], file=sys.stderr)
        raise SystemExit(1)
    for key, value in response["summary"].items():
        print(f"  {key}: {value}")
    return server


ASCII_RAMP = " .:-=+*#%@"


def ascii_image(image, width: int = 32) -> str:
    """Render a synthetic image grid as character art for the terminal."""
    import numpy as np

    grid = np.asarray(image, dtype=float)
    low, high = grid.min(), grid.max()
    span = (high - low) or 1.0
    normalised = (grid - low) / span
    lines = []
    for row in normalised:
        chars = [
            ASCII_RAMP[min(int(v * len(ASCII_RAMP)), len(ASCII_RAMP) - 1)]
            for v in row
        ]
        # double each char so the aspect ratio looks square-ish
        lines.append("".join(c * 2 for c in chars))
    return "\n".join(lines)


def print_answer(payload: dict) -> None:
    """Print one answer payload (text plus ranked result cards).

    Agentic payloads additionally carry ``claims`` and ``groundedness``;
    both are rendered when present and silently skipped otherwise.
    """
    print("mqa :", payload["text"])
    for rank, item in enumerate(payload["items"]):
        star = "*" if item["preferred"] else " "
        print(
            f"   {star}[{rank}] #{item['object_id']} {item['description']} "
            f"(score {item['score']})"
        )
    claims = payload.get("claims")
    if claims:
        print("   claims:")
        for claim in claims:
            mark = "+" if claim.get("supported") else "-"
            cites = ", ".join(f"#{cid}" for cid in claim.get("citations", []))
            refined = " (refined)" if claim.get("refined") else ""
            print(
                f"    {mark} {claim.get('concept')}: "
                f"cites [{cites}]{refined}"
            )
    if payload.get("groundedness") is not None:
        print(f"   groundedness: {payload['groundedness']}")


def format_trace(trace: dict, indent: int = 0) -> str:
    """Render one exported span tree as an indented text block."""
    attrs = ", ".join(f"{k}={v}" for k, v in trace.get("attributes", {}).items())
    line = (
        "  " * indent
        + f"{trace['name']} [{trace['duration_ms']:.2f} ms]"
        + (f" ({attrs})" if attrs else "")
    )
    lines = [line]
    lines.extend(
        format_trace(child, indent + 1) for child in trace.get("children", ())
    )
    return "\n".join(lines)


def print_trace(server: ApiServer) -> None:
    """Print the most recent query's span tree, if tracing captured one."""
    response = server.handle("GET", "/trace", {"limit": 1})
    if response.get("ok") and response.get("traces"):
        print("trace:")
        print(format_trace(response["traces"][-1], indent=1))


def report_shell_error(server: ApiServer, command: str, exc: BaseException) -> None:
    """Report a shell-command failure without losing the traceback.

    Prints a one-line error for the user, records the full traceback in
    the coordinator event log, and increments the ``cli.errors`` metric,
    so interactive failures are observable via ``/events`` and
    ``/metrics`` rather than silently swallowed.
    """
    import traceback

    print(f"error: {type(exc).__name__}: {exc}")
    coordinator = server._coordinator
    if coordinator is None:
        return
    coordinator.events.record(
        "qa", "coordinator", "cli-error",
        f"{command}: " + "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ).strip(),
    )
    coordinator.metrics.inc("cli.errors")


def run_shell(
    server: ApiServer, show_trace: bool = False, agentic: bool = False
) -> None:
    """The interactive read-eval loop.

    With ``agentic`` set, plain query lines go through ``POST /ask``
    (multi-hop answering) instead of ``POST /query``.
    """
    print("\ntype a query, /select N, /reject N, /refine TEXT, /show ID,")
    print("/ingest concept1 concept2 ..., /status, /weights, /transcript,")
    print("/events, /health, /profile, or /quit\n")
    while True:
        try:
            line = input("> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            return
        if not line:
            continue
        if line in ("/quit", "/exit"):
            return
        if line == "/status":
            print(server.handle("GET", "/status").get("rendered", ""))
            continue
        if line == "/weights":
            print(server.handle("GET", "/weights").get("weights", {}))
            continue
        if line == "/transcript":
            print(server.handle("GET", "/transcript").get("transcript", ""))
            continue
        if line == "/events":
            for event in server.handle("GET", "/events").get("events", []):
                print(f"  {event['source']} -> {event['target']}: {event['kind']}")
            continue
        if line == "/health":
            response = server.handle("GET", "/health")
            if not response.get("monitoring"):
                print("monitoring disabled (start with --monitor)")
                continue
            slo = response.get("slo") or {}
            print(
                f"state: {response['state']} "
                f"(p95 {slo.get('window_p95_ms', 0)} ms, "
                f"errors {slo.get('window_error_rate', 0)})"
            )
            quality = response.get("quality")
            if quality:
                print(
                    f"quality: recall@{quality['k']} {quality['mean_recall_at_k']}, "
                    f"mrr {quality['mean_mrr']} ({quality['sampled']} sampled)"
                )
            continue
        if line == "/profile":
            response = server.handle("GET", "/profile", {"format": "table"})
            if response.get("ok"):
                print(response.get("table", ""))
            else:
                print("error:", response.get("error"))
            continue
        if line.startswith("/select"):
            parts = line.split()
            rank = int(parts[1]) if len(parts) > 1 else 0
            response = server.handle("POST", "/select", {"rank": rank})
            if response["ok"]:
                print(f"selected #{response['selected_object_id']}")
            else:
                print("error:", response["error"])
            continue
        if line.startswith("/reject"):
            parts = line.split()
            rank = int(parts[1]) if len(parts) > 1 else 0
            response = server.handle("POST", "/reject", {"rank": rank})
            if response["ok"]:
                print(f"rejected #{response['rejected_object_id']}")
            else:
                print("error:", response["error"])
            continue
        if line.startswith("/ingest"):
            concepts = line.split()[1:]
            response = server.handle("POST", "/ingest", {"concepts": concepts})
            if response["ok"]:
                print(f"ingested as #{response['object_id']}")
            else:
                print("error:", response["error"])
            continue
        if line.startswith("/show"):
            parts = line.split()
            if len(parts) < 2:
                print("usage: /show OBJECT_ID")
                continue
            try:
                obj = server._coordinator.get_object(int(parts[1]))
                print(ascii_image(obj.get("image")))
                print("caption:", obj.get("text"))
            except Exception as exc:  # noqa: BLE001 - interactive surface
                report_shell_error(server, "/show", exc)
            continue
        if line.startswith("/refine"):
            text = line[len("/refine") :].strip()
            response = server.handle("POST", "/refine", {"text": text})
            if response["ok"]:
                print_answer(response["answer"])
                if show_trace:
                    print_trace(server)
            else:
                print("error:", response["error"])
            continue
        verb = "/ask" if agentic else "/query"
        response = server.handle("POST", verb, {"text": line})
        if response["ok"]:
            print_answer(response["answer"])
            if show_trace:
                print_trace(server)
        else:
            print("error:", response["error"])


def run_replay(argv: List[str]) -> int:
    """``python -m repro replay <trace-file> [--trace-id N]``.

    Re-executes a flight recording against a freshly built system and
    prints the per-entry diff; exits non-zero when any replayed entry
    drifted from its recording.
    """
    from repro.observability.replay import ReplayError, replay_recording

    parser = argparse.ArgumentParser(
        prog="repro replay",
        description="Deterministically re-execute a flight recording",
    )
    parser.add_argument("trace_file", help="flight-recorder JSONL file")
    parser.add_argument(
        "--trace-id", type=int, default=None, dest="trace_id",
        help="replay only this recorded trace id",
    )
    args = parser.parse_args(argv)
    print(f"replaying {args.trace_file} (rebuilding the recorded system)...")
    try:
        reports = replay_recording(args.trace_file, trace_id=args.trace_id)
    except (ReplayError, OSError, ValueError) as exc:
        print("error:", exc, file=sys.stderr)
        return 1
    for report in reports:
        print(report.render())
    replayed = [r for r in reports if r.skipped is None]
    drifted = [r for r in replayed if not r.clean]
    print(
        f"{len(replayed)} replayed, {len(reports) - len(replayed)} skipped, "
        f"{len(drifted)} drifted"
    )
    return 1 if drifted else 0


def run_profile(argv: List[str]) -> int:
    """``python -m repro profile <trace-file> [--format table|collapsed]``.

    Folds every span tree of a flight recording into the per-path
    profile table (or collapsed-stack lines for flamegraph tooling).
    """
    from repro.observability import ProfileAggregator, collapse_spans, read_recording

    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Aggregate the span trees of a flight recording",
    )
    parser.add_argument("trace_file", help="flight-recorder JSONL file")
    parser.add_argument(
        "--format", default="table", choices=("table", "collapsed"),
        help="table = per-path profile, collapsed = flamegraph stacks",
    )
    args = parser.parse_args(argv)
    try:
        _, entries = read_recording(args.trace_file)
    except (OSError, ValueError) as exc:
        print("error:", exc, file=sys.stderr)
        return 1
    trees = [e["span_tree"] for e in entries if e.get("span_tree")]
    if not trees:
        print(f"{args.trace_file}: no span trees recorded", file=sys.stderr)
        return 1
    if args.format == "collapsed":
        print(collapse_spans(trees), end="")
    else:
        print(ProfileAggregator().add_traces(trees).render())
    return 0


def run_loadgen_command(argv: List[str]) -> int:
    """``python -m repro loadgen [--workers N] [--queries N] ...``.

    Fires a deterministic mixed read/write workload at a freshly built
    system through the concurrent query engine and prints throughput,
    latency percentiles, and engine statistics.
    """
    import json

    from repro.server.loadgen import run_loadgen

    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description="Concurrent synthetic load generation",
    )
    parser.add_argument("--workers", type=int, default=1, help="engine worker threads")
    parser.add_argument("--queries", type=int, default=200, help="total operations")
    parser.add_argument(
        "--write-every", type=int, default=10, dest="write_every",
        help="every Nth operation is an ingest (0 = read-only)",
    )
    parser.add_argument("--domain", default="scenes", help="knowledge-base domain")
    parser.add_argument("--size", type=int, default=300, help="knowledge-base size")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--llm-latency-ms", type=float, default=25.0, dest="llm_latency_ms",
        help="simulated remote-LLM latency per generation call",
    )
    parser.add_argument(
        "--batch", type=int, default=1,
        help="micro-batch size cap: reads become raw POST /search requests "
        "that coalesce server-side (1 = dialogue /query verbs, no batching)",
    )
    parser.add_argument(
        "--batch-window-ms", type=float, default=2.0, dest="batch_window_ms",
        help="micro-batch collector window",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="serve through the shard router with N shards",
    )
    parser.add_argument(
        "--replicas", type=int, default=1,
        help="replicas per shard (implies the router)",
    )
    parser.add_argument(
        "--shard-latency-ms", type=float, default=0.0, dest="shard_latency_ms",
        help="simulated fixed per-shard service time",
    )
    parser.add_argument(
        "--shard-latency-ms-per-1k", type=float, default=0.0,
        dest="shard_latency_ms_per_1k",
        help="simulated per-shard service time per 1000 live objects "
        "(models remote shard servers; enables the parallel scatter)",
    )
    parser.add_argument(
        "--index", default="hnsw", help="index type (tiered requires starling)"
    )
    parser.add_argument(
        "--tiered", action="store_true",
        help="tiered serving: quantized traversal + memory-mapped rerank",
    )
    parser.add_argument(
        "--quantize-bits", type=int, choices=(4, 8), default=8,
        dest="quantize_bits", help="resident code width for the tiered store",
    )
    parser.add_argument(
        "--rerank-factor", type=int, default=4, dest="rerank_factor",
        help="full-precision rerank depth as a multiple of k",
    )
    parser.add_argument(
        "--mmap-cache-blocks", type=int, default=32, dest="mmap_cache_blocks",
        help="LRU buffer pool over the memory-mapped full-precision tier",
    )
    parser.add_argument(
        "--planner", action="store_true",
        help="self-tuning per-query planning from live distributions",
    )
    parser.add_argument(
        "--recall-floor", type=float, default=0.8, dest="recall_floor",
        help="planner/semantic-cache minimum acceptable recall@k",
    )
    parser.add_argument(
        "--semantic-cache", action="store_true", dest="semantic_cache",
        help="near-duplicate query serving over the exact-match cache",
    )
    parser.add_argument(
        "--semantic-threshold", type=float, default=0.9,
        dest="semantic_threshold",
        help="cosine threshold for semantic cache hits (0 = exact only)",
    )
    parser.add_argument(
        "--admission", action="store_true",
        help="shed/degrade load before the engine saturates",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None, dest="deadline_ms",
        help="per-request latency budget (enables the resilience layer; "
        "goodput counts reads finishing inside it)",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="enable the exact-match query cache (historically off here)",
    )
    parser.add_argument(
        "--client-workers", type=int, default=None, dest="client_workers",
        help="client thread count (defaults to --workers; oversubscribe "
        "to create queueing pressure)",
    )
    parser.add_argument(
        "--near-duplicate-every", type=int, default=0,
        dest="near_duplicate_every",
        help="rewrite every Nth read as a word-order permutation of the "
        "previous one (semantic-cache workload; 0 = off)",
    )
    parser.add_argument(
        "--shed-retry-ms", type=float, default=0.0, dest="shed_retry_ms",
        help="client backoff before retrying a shed request (0 = treat "
        "shed as final)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH", help="also write the full report as JSON"
    )
    args = parser.parse_args(argv)
    print(
        f"loadgen: {args.queries} ops, workers={args.workers}, "
        f"write every {args.write_every or 'never'}, "
        f"llm latency {args.llm_latency_ms} ms"
    )
    report = run_loadgen(
        workers=args.workers,
        queries=args.queries,
        write_every=args.write_every,
        domain=args.domain,
        size=args.size,
        seed=args.seed,
        llm_latency_ms=args.llm_latency_ms,
        batch=args.batch,
        batch_window_ms=args.batch_window_ms,
        shards=args.shards,
        replicas=args.replicas,
        shard_latency_ms=args.shard_latency_ms,
        shard_latency_ms_per_1k=args.shard_latency_ms_per_1k,
        index=args.index,
        tiered=args.tiered,
        quantize_bits=args.quantize_bits,
        rerank_factor=args.rerank_factor,
        mmap_cache_blocks=args.mmap_cache_blocks,
        planner=args.planner,
        recall_floor=args.recall_floor,
        semantic_cache=args.semantic_cache,
        semantic_threshold=args.semantic_threshold,
        admission=args.admission,
        deadline_ms=args.deadline_ms,
        cache=args.cache,
        client_workers=args.client_workers,
        near_duplicate_every=args.near_duplicate_every,
        shed_retry_ms=args.shed_retry_ms,
    )
    print(
        f"  {report['operations']} ops ({report['reads']} reads, "
        f"{report['writes']} writes) in {report['elapsed_s']} s"
    )
    print(f"  throughput: {report['throughput_qps']} ops/s")
    latency = report["latency_ms"]
    print(
        f"  latency: p50 {latency['p50']} ms, p95 {latency['p95']} ms, "
        f"p99 {latency['p99']} ms, max {latency['max']} ms"
    )
    print(f"  errors: {report['errors']}")
    goodput = report.get("goodput")
    if goodput is not None:
        print(
            f"  goodput: {goodput['good']} good "
            f"(ratio {goodput['ratio']}, {goodput['qps']} good ops/s); "
            f"degraded={goodput['degraded']} shed={goodput['shed']} "
            f"deadline_exceeded={goodput['deadline_exceeded']} "
            f"saturated={goodput['saturated']}"
        )
    cache_snap = report.get("cache")
    if cache_snap is not None:
        line = (
            f"  cache: {cache_snap['hits']} hits / "
            f"{cache_snap['misses']} misses "
            f"(rate {cache_snap['hit_rate']:.1%})"
        )
        if cache_snap.get("semantic"):
            line += (
                f", semantic {cache_snap['semantic_hits']} hits / "
                f"{cache_snap['semantic_rejects']} rejected "
                f"(rate {cache_snap['semantic_hit_rate']:.1%})"
            )
        print(line)
    engine = report["engine"]
    print(
        f"  engine: workers={engine['workers']} completed={engine['completed']} "
        f"rejected={engine['rejected']} "
        f"queue wait p95 {engine['queue_wait_ms']['p95']} ms"
    )
    batching = report.get("batching") or {}
    if batching.get("enabled"):
        print(
            f"  batching: max={batching['max_batch']} "
            f"batches={batching['batches']} queries={batching['queries']} "
            f"histogram={batching['histogram']}"
        )
    sharding = report.get("sharding") or {}
    if sharding.get("enabled"):
        live = [shard["live"] for shard in sharding["per_shard"]]
        print(
            f"  sharding: {sharding['shards']} shard(s) × "
            f"{sharding['replicas']} replica(s), live per shard {live}, "
            f"moves={sharding['moves']} degraded={sharding['degraded_searches']}"
        )
    tiered = report.get("tiered")
    if tiered:
        totals = tiered["totals"]
        print(
            f"  tiered: {totals['stores']} store(s), "
            f"{totals['resident_bytes']} B resident / "
            f"{totals['full_bytes']} B spilled, "
            f"mmap hit rate {totals['mmap_hit_rate']}, "
            f"reranked rows {totals['reranked_rows']}"
        )
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(json.dumps(report, indent=2))
        print(f"  report written to {args.json}")
    return 1 if report["errors"] else 0


def render_stats(snapshot: dict) -> str:
    """Render a ``GET /stats`` snapshot as the CLI's cost table."""
    lines = [
        f"cost plane: {snapshot['queries']} queries observed, "
        f"{len(snapshot['exemplars'])} exemplar(s) retained"
    ]
    header = (
        f"  {'framework':<14} {'index':<8} {'shard':>5} {'queries':>7} "
        f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8} {'evals':>8} {'recall':>7}"
    )
    lines.append(header)
    for group in snapshot["groups"]:
        latency = group["latency_ms"]
        recall = group.get("recall_at_k")
        lines.append(
            f"  {group['framework']:<14} {group['index']:<8} "
            f"{group['shard']:>5} {group['queries']:>7} "
            f"{latency['p50']:>8.2f} {latency['p95']:>8.2f} "
            f"{latency['p99']:>8.2f} "
            f"{group['distance_evaluations']['mean']:>8.1f} "
            + (f"{recall['mean']:>7.3f}" if recall else f"{'-':>7}")
        )
    for exemplar in snapshot["exemplars"]:
        lines.append(
            f"  slowest: trace {exemplar['trace_id']} "
            f"({exemplar['latency_ms']} ms, {exemplar['framework']}"
            f"/{exemplar['index']})"
        )
    return "\n".join(lines)


def run_stats(argv: List[str]) -> int:
    """``python -m repro stats [--queries N] [--shards N] ...``.

    Drives a deterministic workload with ``cost_accounting`` enabled and
    prints the cost plane's per-(framework, index, shard) distributions
    plus the slowest-query exemplars — the CLI view of ``GET /stats``.
    """
    import json

    from repro.server.loadgen import run_loadgen

    parser = argparse.ArgumentParser(
        prog="repro stats",
        description="Per-query cost accounting report over a synthetic workload",
    )
    parser.add_argument("--queries", type=int, default=60, help="total operations")
    parser.add_argument("--workers", type=int, default=1, help="engine worker threads")
    parser.add_argument("--domain", default="scenes", help="knowledge-base domain")
    parser.add_argument("--size", type=int, default=200, help="knowledge-base size")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--shards", type=int, default=None,
        help="serve through the shard router with N shards",
    )
    parser.add_argument(
        "--replicas", type=int, default=1,
        help="replicas per shard (implies the router)",
    )
    parser.add_argument(
        "--batch", type=int, default=1,
        help="micro-batch size cap (reads become POST /search requests)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the stats snapshot as JSON",
    )
    args = parser.parse_args(argv)
    report = run_loadgen(
        workers=args.workers,
        queries=args.queries,
        write_every=0,
        domain=args.domain,
        size=args.size,
        seed=args.seed,
        llm_latency_ms=0.0,
        batch=args.batch,
        shards=args.shards,
        replicas=args.replicas,
        cost_accounting=True,
    )
    snapshot = report.get("stats")
    if not snapshot:
        print("error: the run produced no cost statistics", file=sys.stderr)
        return 1
    print(render_stats(snapshot))
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(json.dumps(snapshot, indent=2))
        print(f"  snapshot written to {args.json}")
    return 1 if report["errors"] else 0


SUBCOMMANDS = {
    "replay": run_replay,
    "profile": run_profile,
    "loadgen": run_loadgen_command,
    "stats": run_stats,
}


def main(argv: "Optional[List[str]]" = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in SUBCOMMANDS:
        return SUBCOMMANDS[argv[0]](argv[1:])
    args = build_parser().parse_args(argv)
    server = make_server(args)
    if args.ask is not None:
        verb = "/ask" if getattr(args, "agentic", False) else "/query"
        response = server.handle("POST", verb, {"text": args.ask})
        if not response["ok"]:
            print("error:", response["error"], file=sys.stderr)
            return 1
        print_answer(response["answer"])
        if args.trace:
            print_trace(server)
        return 0
    run_shell(
        server,
        show_trace=args.trace,
        agentic=getattr(args, "agentic", False),
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
