"""Pluggable encoder-set registry.

The paper advertises "seamless encoder integration, such as LSTM, ResNet,
and CLIP"; this registry is that plug point.  An encoder-set factory takes a
knowledge base (for the renderer parameters that stand in for pretrained
weights) and a seed, and returns a fully-assigned :class:`EncoderSet`.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.data.knowledge_base import KnowledgeBase
from repro.data.modality import Modality
from repro.encoders.audio import SpectralAudioEncoder
from repro.encoders.base import EncoderSet
from repro.encoders.clip import SimulatedClipEncoder
from repro.encoders.image import PatchPoolingImageEncoder
from repro.encoders.text import BagOfTokensEncoder, SequenceTextEncoder
from repro.errors import ConfigurationError

EncoderSetFactory = Callable[[KnowledgeBase, int], EncoderSet]

_REGISTRY: Dict[str, EncoderSetFactory] = {}


def register_encoder_set(name: str, factory: EncoderSetFactory) -> None:
    """Register ``factory`` under ``name`` (overwrites an existing entry)."""
    if not name:
        raise ConfigurationError("encoder set name must be non-empty")
    _REGISTRY[name] = factory


def available_encoder_sets() -> Tuple[str, ...]:
    """Names of all registered encoder sets."""
    return tuple(sorted(_REGISTRY))


def build_encoder_set(name: str, kb: KnowledgeBase, seed: int = 0) -> EncoderSet:
    """Instantiate the encoder set called ``name`` for ``kb``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        valid = ", ".join(available_encoder_sets())
        raise ConfigurationError(
            f"unknown encoder set {name!r}; available: {valid}"
        ) from None
    return factory(kb, seed)


# ----------------------------------------------------------------------
# built-in encoder sets
# ----------------------------------------------------------------------
def _assignment_for(kb: KnowledgeBase, text, image, audio) -> dict:
    """Assign per-modality encoders for exactly the modalities kb carries."""
    assignment = {}
    for modality in kb.modalities:
        if modality is Modality.TEXT:
            assignment[modality] = text
        elif modality is Modality.IMAGE:
            assignment[modality] = image
        elif modality is Modality.AUDIO:
            if audio is None:
                raise ConfigurationError(
                    "knowledge base carries audio but the encoder set has "
                    "no audio encoder"
                )
            assignment[modality] = audio
    return assignment


def _unimodal_strong(kb: KnowledgeBase, seed: int) -> EncoderSet:
    """Sequence text + patch image (+ audio) in separate spaces."""
    assignment = _assignment_for(
        kb,
        text=SequenceTextEncoder(kb.space, seed=seed),
        image=PatchPoolingImageEncoder(kb.render_model.image, seed=seed),
        audio=SpectralAudioEncoder(kb.render_model.audio, seed=seed),
    )
    return EncoderSet(assignment, name="unimodal-strong")


def _unimodal_basic(kb: KnowledgeBase, seed: int) -> EncoderSet:
    """Bag-of-tokens text + patch image: the weaker unimodal stack."""
    assignment = _assignment_for(
        kb,
        text=BagOfTokensEncoder(kb.space, seed=seed),
        image=PatchPoolingImageEncoder(kb.render_model.image, seed=seed),
        audio=SpectralAudioEncoder(kb.render_model.audio, seed=seed),
    )
    return EncoderSet(assignment, name="unimodal-basic")


def _clip_joint(kb: KnowledgeBase, seed: int) -> EncoderSet:
    """One shared-space CLIP encoder for both text and image."""
    unsupported = [
        m for m in kb.modalities if m not in (Modality.TEXT, Modality.IMAGE)
    ]
    if unsupported:
        names = ", ".join(m.value for m in unsupported)
        raise ConfigurationError(f"sim-clip does not support modalities: {names}")
    clip = SimulatedClipEncoder(kb.render_model.image, seed=seed)
    assignment = {m: clip for m in kb.modalities}
    return EncoderSet(assignment, name="clip-joint")


register_encoder_set("unimodal-strong", _unimodal_strong)
register_encoder_set("unimodal-basic", _unimodal_basic)
register_encoder_set("clip-joint", _clip_joint)
