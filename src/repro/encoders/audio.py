"""Audio encoder: decodes smoothed frame sequences back toward latent space."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.modality import Modality
from repro.data.rendering import AudioRenderer
from repro.encoders.base import Encoder
from repro.errors import EncodingError
from repro.utils import derive_rng, l2_normalize


class SpectralAudioEncoder(Encoder):
    """Decoder-based audio encoder over the synthetic frame sequence.

    The renderer's temporal smoothing is not inverted (its kernel is treated
    as unknown, as a real model would), so the latent estimate carries the
    smoothing loss — audio is inherently the noisiest modality here.
    """

    name = "spectral-audio"

    def __init__(self, renderer: AudioRenderer, output_dim: int = 64, seed: int = 0) -> None:
        if output_dim <= 0:
            raise ValueError(f"output_dim must be positive, got {output_dim}")
        self.renderer = renderer
        self._output_dim = output_dim
        self.seed = seed
        rng = derive_rng(seed, "spectral-audio-projection")
        latent_dim = renderer.space.latent_dim
        self._projection = rng.standard_normal((output_dim, latent_dim))
        self._projection /= np.sqrt(latent_dim)

    @property
    def output_dim(self) -> int:
        return self._output_dim

    @property
    def modalities(self) -> Tuple[Modality, ...]:
        return (Modality.AUDIO,)

    def encode(self, modality: Modality, content: object) -> np.ndarray:
        self._require_support(modality)
        frames = np.asarray(content, dtype=np.float64).reshape(-1)
        if frames.size != self.renderer.spec.frames:
            raise EncodingError(
                f"{self.name} expects {self.renderer.spec.frames} frames, "
                f"got {frames.size}"
            )
        latent_estimate = self.renderer.decode(frames)
        return l2_normalize(self._projection @ latent_estimate)

    def encode_batch(self, modality: Modality, contents) -> np.ndarray:
        """Whole-corpus encoding as two gemms (decode, project)."""
        self._require_support(modality)
        if not len(contents):
            return np.empty((0, self._output_dim))
        frames = np.stack(
            [np.asarray(content, dtype=np.float64).reshape(-1) for content in contents]
        )
        if frames.shape[1] != self.renderer.spec.frames:
            raise EncodingError(
                f"{self.name} expects {self.renderer.spec.frames} frames, "
                f"got {frames.shape[1]}"
            )
        latent_estimates = self.renderer.decode_batch(frames)
        return l2_normalize(latent_estimates @ self._projection.T)
