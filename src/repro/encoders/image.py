"""Image encoder (the ResNet stand-in).

Pools the pixel grid into patch means — the lossy spatial abstraction a CNN
backbone performs — and decodes the pooled signal back toward latent space
with the pseudo-inverse of the pooled generative projection (its
"pretrained weights").  Pooling discards within-patch detail, so this
encoder is strictly noisier than the CLIP image branch, which decodes at
full resolution.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.modality import Modality
from repro.data.rendering import ImageRenderer
from repro.encoders.base import Encoder
from repro.errors import EncodingError
from repro.utils import derive_rng, l2_normalize


class PatchPoolingImageEncoder(Encoder):
    """Patch-pooling image encoder over the synthetic pixel grid."""

    name = "patch-resnet"

    def __init__(
        self,
        renderer: ImageRenderer,
        output_dim: int = 96,
        patch_size: int = 2,
        ridge: float = 0.03,
        seed: int = 0,
    ) -> None:
        if output_dim <= 0:
            raise ValueError(f"output_dim must be positive, got {output_dim}")
        spec = renderer.spec
        if patch_size <= 0 or spec.height % patch_size or spec.width % patch_size:
            raise ValueError(
                f"patch_size {patch_size} must evenly divide the "
                f"{spec.height}x{spec.width} image"
            )
        self.renderer = renderer
        self.patch_size = patch_size
        self._output_dim = output_dim
        self.seed = seed

        # Pooling is linear, so compose it with the generative projection and
        # invert the composition once: latent -> pooled is (n_patches, latent).
        if ridge < 0:
            raise ValueError(f"ridge must be >= 0, got {ridge}")
        pool = self._pooling_matrix(spec.height, spec.width, patch_size)
        pooled_projection = pool @ renderer.projection
        self._pool = pool
        # Pooling a random projection yields a badly-conditioned operator;
        # ridge-regularised decoding keeps pixel noise from being amplified
        # past the signal ("pretraining" would learn the same trade-off).
        latent_dim = renderer.space.latent_dim
        self._decoder = np.linalg.solve(
            pooled_projection.T @ pooled_projection + ridge * np.eye(latent_dim),
            pooled_projection.T,
        )
        rng = derive_rng(seed, "patch-resnet-projection")
        self._projection = rng.standard_normal((output_dim, latent_dim))
        self._projection /= np.sqrt(latent_dim)

    @staticmethod
    def _pooling_matrix(height: int, width: int, patch: int) -> np.ndarray:
        """Linear operator averaging each patch of a flattened image."""
        rows = (height // patch) * (width // patch)
        matrix = np.zeros((rows, height * width))
        row = 0
        for top in range(0, height, patch):
            for left in range(0, width, patch):
                for dy in range(patch):
                    for dx in range(patch):
                        pixel = (top + dy) * width + (left + dx)
                        matrix[row, pixel] = 1.0 / (patch * patch)
                row += 1
        return matrix

    @property
    def output_dim(self) -> int:
        return self._output_dim

    @property
    def modalities(self) -> Tuple[Modality, ...]:
        return (Modality.IMAGE,)

    def encode(self, modality: Modality, content: object) -> np.ndarray:
        self._require_support(modality)
        image = np.asarray(content, dtype=np.float64)
        spec = self.renderer.spec
        if image.size != spec.pixels:
            raise EncodingError(
                f"{self.name} expects a {spec.height}x{spec.width} image, "
                f"got {image.size} pixels"
            )
        pooled = self._pool @ image.reshape(-1)
        latent_estimate = l2_normalize(self._decoder @ pooled)
        return l2_normalize(self._projection @ latent_estimate)

    def encode_batch(self, modality: Modality, contents) -> np.ndarray:
        """Whole-corpus encoding as three gemms (pool, decode, project)."""
        self._require_support(modality)
        if not len(contents):
            return np.empty((0, self._output_dim))
        images = np.stack(
            [np.asarray(content, dtype=np.float64).reshape(-1) for content in contents]
        )
        spec = self.renderer.spec
        if images.shape[1] != spec.pixels:
            raise EncodingError(
                f"{self.name} expects a {spec.height}x{spec.width} image, "
                f"got {images.shape[1]} pixels"
            )
        pooled = images @ self._pool.T
        latent_estimates = l2_normalize(pooled @ self._decoder.T)
        return l2_normalize(latent_estimates @ self._projection.T)
