"""Vector-representation substrate: simulated multi-modal encoders.

Real MQA plugs in pretrained GPU models (LSTM, ResNet, CLIP).  Here each
encoder is a deterministic numpy function that recovers a noisy estimate of
the latent concept vector from rendered content — the renderer's public
projection parameters play the role of pretrained weights, while per-object
noise and dropped tokens keep the estimate imperfect.

Unimodal encoders project into *separate* output spaces (the situation the
Multi-streamed Retrieval framework must cope with); the simulated CLIP
encoder maps text and images into one *shared* space (what Joint Embedding
relies on).  MUST consumes either kind, one vector per modality.
"""

from repro.encoders.base import Encoder, EncoderSet
from repro.encoders.audio import SpectralAudioEncoder
from repro.encoders.clip import SimulatedClipEncoder
from repro.encoders.image import PatchPoolingImageEncoder
from repro.encoders.registry import (
    available_encoder_sets,
    build_encoder_set,
    register_encoder_set,
)
from repro.encoders.text import BagOfTokensEncoder, SequenceTextEncoder

__all__ = [
    "BagOfTokensEncoder",
    "Encoder",
    "EncoderSet",
    "PatchPoolingImageEncoder",
    "SequenceTextEncoder",
    "SimulatedClipEncoder",
    "SpectralAudioEncoder",
    "available_encoder_sets",
    "build_encoder_set",
    "register_encoder_set",
]
