"""Encoder abstractions shared by all modalities."""

from __future__ import annotations

import abc
from typing import Any, Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.data.modality import Modality
from repro.data.objects import MultiModalObject, RawQuery
from repro.errors import EncodingError


class Encoder(abc.ABC):
    """Encodes raw content of one or more modalities into vectors.

    Concrete encoders are pure functions of their content argument: encoding
    the same content twice yields the same vector, which is what makes index
    construction and queries consistent.
    """

    #: Human-readable identifier shown by the status panel.
    name: str = "encoder"

    @property
    @abc.abstractmethod
    def output_dim(self) -> int:
        """Dimensionality of produced vectors."""

    @property
    @abc.abstractmethod
    def modalities(self) -> Tuple[Modality, ...]:
        """Modalities this encoder accepts."""

    @abc.abstractmethod
    def encode(self, modality: Modality, content: Any) -> np.ndarray:
        """Encode ``content`` of ``modality`` into a unit-norm vector."""

    def encode_batch(self, modality: Modality, contents: Sequence[Any]) -> np.ndarray:
        """Encode many contents of one modality into an ``(n, d)`` matrix.

        The default loops over :meth:`encode`; encoders whose pipeline is a
        linear map override it with one matrix multiply over the whole
        batch.  Batched corpus vectors may differ from the looped ones at
        the last-ulp level (gemm accumulation order), which is why only
        corpus encoding uses this path — query encoding stays per-query so
        batched retrieval matches serial retrieval bit-for-bit.
        """
        return np.stack([self.encode(modality, content) for content in contents])

    def supports(self, modality: Modality) -> bool:
        """True if this encoder accepts ``modality``."""
        return Modality.parse(modality) in self.modalities

    def _require_support(self, modality: Modality) -> Modality:
        modality = Modality.parse(modality)
        if modality not in self.modalities:
            supported = ", ".join(m.value for m in self.modalities)
            raise EncodingError(
                f"encoder {self.name!r} cannot encode {modality.value!r} "
                f"(supports: {supported})"
            )
        return modality


class EncoderSet:
    """A complete modality -> encoder assignment for one knowledge base.

    This is what the configuration panel's "embedding" section selects.  A
    set is *joint* when every modality is served by the same shared-space
    encoder (CLIP-style), which is the prerequisite for the Joint Embedding
    retrieval framework.
    """

    def __init__(self, assignment: Mapping[Modality, Encoder], name: str = "custom") -> None:
        if not assignment:
            raise EncodingError("encoder set needs at least one modality")
        self.name = name
        self._assignment: Dict[Modality, Encoder] = {}
        for modality, encoder in assignment.items():
            modality = Modality.parse(modality)
            if not encoder.supports(modality):
                raise EncodingError(
                    f"encoder {encoder.name!r} assigned to {modality.value!r} "
                    "but does not support it"
                )
            self._assignment[modality] = encoder

    @property
    def modalities(self) -> Tuple[Modality, ...]:
        """Modalities this set can encode, in assignment order."""
        return tuple(self._assignment)

    def encoder_for(self, modality: Modality) -> Encoder:
        """Return the encoder assigned to ``modality``."""
        modality = Modality.parse(modality)
        try:
            return self._assignment[modality]
        except KeyError:
            raise EncodingError(f"no encoder assigned for modality {modality.value!r}") from None

    def dims(self) -> Dict[Modality, int]:
        """Output dimensionality per modality."""
        return {m: e.output_dim for m, e in self._assignment.items()}

    @property
    def is_joint(self) -> bool:
        """True when one shared-space encoder serves every modality."""
        encoders = {id(e) for e in self._assignment.values()}
        return len(encoders) == 1 and len(self._assignment) > 1

    # ------------------------------------------------------------------
    # encoding objects and queries
    # ------------------------------------------------------------------
    def encode_object(self, obj: MultiModalObject) -> Dict[Modality, np.ndarray]:
        """Encode every assigned modality of ``obj``.

        Raises :class:`EncodingError` if the object lacks a modality the set
        expects — every indexed object must supply all configured modalities.
        """
        vectors: Dict[Modality, np.ndarray] = {}
        for modality, encoder in self._assignment.items():
            if not obj.has(modality):
                raise EncodingError(
                    f"object {obj.object_id} lacks modality {modality.value!r} "
                    f"required by encoder set {self.name!r}"
                )
            vectors[modality] = encoder.encode(modality, obj.get(modality))
        return vectors

    def encode_query(self, query: RawQuery) -> Dict[Modality, np.ndarray]:
        """Encode the modalities the query actually carries.

        Unlike objects, queries may be partial (text-only); missing
        modalities are simply absent from the result.
        """
        vectors: Dict[Modality, np.ndarray] = {}
        for modality, encoder in self._assignment.items():
            if query.has(modality):
                vectors[modality] = encoder.encode(modality, query.get(modality))
        if not vectors:
            expected = ", ".join(m.value for m in self._assignment)
            raise EncodingError(
                f"query carries none of the configured modalities ({expected})"
            )
        return vectors

    def encode_query_full(self, query: RawQuery) -> Dict[Modality, np.ndarray]:
        """Encode a query with cross-modal fill for missing modalities.

        With a joint encoder set (one shared-space encoder for every
        modality), content of one modality embeds meaningfully into any
        segment — CLIP's text-to-image property — so a text-only query
        fills its image segment with the text embedding instead of zeros.
        Unimodal sets cannot do this; missing modalities stay absent.
        """
        vectors = self.encode_query(query)
        if not self.is_joint:
            return vectors
        missing = [m for m in self._assignment if m not in vectors]
        if not missing or not vectors:
            return vectors
        donor = next(iter(vectors.values()))
        for modality in missing:
            vectors[modality] = donor.copy()
        return vectors

    def encode_query_batch(self, queries: Sequence[RawQuery]) -> list:
        """Encode many queries; element ``i`` is ``encode_query_full(queries[i])``.

        Deliberately per-query underneath: the batched retrieval path
        promises results id-identical to serial retrieval, so query vectors
        must be the exact same floats either way.  Encoding is a handful of
        gemv calls per query — batching it would change bits for a
        negligible saving next to the search itself.
        """
        return [self.encode_query_full(query) for query in queries]

    def encode_corpus(self, objects: Sequence[MultiModalObject]) -> Dict[Modality, np.ndarray]:
        """Encode a corpus into per-modality matrices (row i = object i).

        Each modality's column is produced by one :meth:`Encoder.encode_batch`
        call, so encoders with a vectorised override pay one matrix multiply
        per modality instead of a Python loop over objects.
        """
        if not objects:
            raise EncodingError("cannot encode an empty corpus")
        for obj in objects:
            for modality in self._assignment:
                if not obj.has(modality):
                    raise EncodingError(
                        f"object {obj.object_id} lacks modality {modality.value!r} "
                        f"required by encoder set {self.name!r}"
                    )
        return {
            modality: encoder.encode_batch(
                modality, [obj.get(modality) for obj in objects]
            )
            for modality, encoder in self._assignment.items()
        }

    def describe(self) -> str:
        """Status-panel summary: encoder and dimension per modality."""
        parts = [
            f"{m.value}:{e.name}(d={e.output_dim})" for m, e in self._assignment.items()
        ]
        kind = "joint" if self.is_joint else "unimodal"
        return f"encoder set {self.name!r} [{kind}] " + ", ".join(parts)
