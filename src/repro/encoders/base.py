"""Encoder abstractions shared by all modalities."""

from __future__ import annotations

import abc
from typing import Any, Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.data.modality import Modality
from repro.data.objects import MultiModalObject, RawQuery
from repro.errors import EncodingError


class Encoder(abc.ABC):
    """Encodes raw content of one or more modalities into vectors.

    Concrete encoders are pure functions of their content argument: encoding
    the same content twice yields the same vector, which is what makes index
    construction and queries consistent.
    """

    #: Human-readable identifier shown by the status panel.
    name: str = "encoder"

    @property
    @abc.abstractmethod
    def output_dim(self) -> int:
        """Dimensionality of produced vectors."""

    @property
    @abc.abstractmethod
    def modalities(self) -> Tuple[Modality, ...]:
        """Modalities this encoder accepts."""

    @abc.abstractmethod
    def encode(self, modality: Modality, content: Any) -> np.ndarray:
        """Encode ``content`` of ``modality`` into a unit-norm vector."""

    def supports(self, modality: Modality) -> bool:
        """True if this encoder accepts ``modality``."""
        return Modality.parse(modality) in self.modalities

    def _require_support(self, modality: Modality) -> Modality:
        modality = Modality.parse(modality)
        if modality not in self.modalities:
            supported = ", ".join(m.value for m in self.modalities)
            raise EncodingError(
                f"encoder {self.name!r} cannot encode {modality.value!r} "
                f"(supports: {supported})"
            )
        return modality


class EncoderSet:
    """A complete modality -> encoder assignment for one knowledge base.

    This is what the configuration panel's "embedding" section selects.  A
    set is *joint* when every modality is served by the same shared-space
    encoder (CLIP-style), which is the prerequisite for the Joint Embedding
    retrieval framework.
    """

    def __init__(self, assignment: Mapping[Modality, Encoder], name: str = "custom") -> None:
        if not assignment:
            raise EncodingError("encoder set needs at least one modality")
        self.name = name
        self._assignment: Dict[Modality, Encoder] = {}
        for modality, encoder in assignment.items():
            modality = Modality.parse(modality)
            if not encoder.supports(modality):
                raise EncodingError(
                    f"encoder {encoder.name!r} assigned to {modality.value!r} "
                    "but does not support it"
                )
            self._assignment[modality] = encoder

    @property
    def modalities(self) -> Tuple[Modality, ...]:
        """Modalities this set can encode, in assignment order."""
        return tuple(self._assignment)

    def encoder_for(self, modality: Modality) -> Encoder:
        """Return the encoder assigned to ``modality``."""
        modality = Modality.parse(modality)
        try:
            return self._assignment[modality]
        except KeyError:
            raise EncodingError(f"no encoder assigned for modality {modality.value!r}") from None

    def dims(self) -> Dict[Modality, int]:
        """Output dimensionality per modality."""
        return {m: e.output_dim for m, e in self._assignment.items()}

    @property
    def is_joint(self) -> bool:
        """True when one shared-space encoder serves every modality."""
        encoders = {id(e) for e in self._assignment.values()}
        return len(encoders) == 1 and len(self._assignment) > 1

    # ------------------------------------------------------------------
    # encoding objects and queries
    # ------------------------------------------------------------------
    def encode_object(self, obj: MultiModalObject) -> Dict[Modality, np.ndarray]:
        """Encode every assigned modality of ``obj``.

        Raises :class:`EncodingError` if the object lacks a modality the set
        expects — every indexed object must supply all configured modalities.
        """
        vectors: Dict[Modality, np.ndarray] = {}
        for modality, encoder in self._assignment.items():
            if not obj.has(modality):
                raise EncodingError(
                    f"object {obj.object_id} lacks modality {modality.value!r} "
                    f"required by encoder set {self.name!r}"
                )
            vectors[modality] = encoder.encode(modality, obj.get(modality))
        return vectors

    def encode_query(self, query: RawQuery) -> Dict[Modality, np.ndarray]:
        """Encode the modalities the query actually carries.

        Unlike objects, queries may be partial (text-only); missing
        modalities are simply absent from the result.
        """
        vectors: Dict[Modality, np.ndarray] = {}
        for modality, encoder in self._assignment.items():
            if query.has(modality):
                vectors[modality] = encoder.encode(modality, query.get(modality))
        if not vectors:
            expected = ", ".join(m.value for m in self._assignment)
            raise EncodingError(
                f"query carries none of the configured modalities ({expected})"
            )
        return vectors

    def encode_query_full(self, query: RawQuery) -> Dict[Modality, np.ndarray]:
        """Encode a query with cross-modal fill for missing modalities.

        With a joint encoder set (one shared-space encoder for every
        modality), content of one modality embeds meaningfully into any
        segment — CLIP's text-to-image property — so a text-only query
        fills its image segment with the text embedding instead of zeros.
        Unimodal sets cannot do this; missing modalities stay absent.
        """
        vectors = self.encode_query(query)
        if not self.is_joint:
            return vectors
        missing = [m for m in self._assignment if m not in vectors]
        if not missing or not vectors:
            return vectors
        donor = next(iter(vectors.values()))
        for modality in missing:
            vectors[modality] = donor.copy()
        return vectors

    def encode_corpus(self, objects: Sequence[MultiModalObject]) -> Dict[Modality, np.ndarray]:
        """Encode a corpus into per-modality matrices (row i = object i)."""
        if not objects:
            raise EncodingError("cannot encode an empty corpus")
        columns: Dict[Modality, list] = {m: [] for m in self._assignment}
        for obj in objects:
            vectors = self.encode_object(obj)
            for modality, vector in vectors.items():
                columns[modality].append(vector)
        return {m: np.stack(vs) for m, vs in columns.items()}

    def describe(self) -> str:
        """Status-panel summary: encoder and dimension per modality."""
        parts = [
            f"{m.value}:{e.name}(d={e.output_dim})" for m, e in self._assignment.items()
        ]
        kind = "joint" if self.is_joint else "unimodal"
        return f"encoder set {self.name!r} [{kind}] " + ", ".join(parts)
