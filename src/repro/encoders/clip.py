"""The simulated CLIP encoder: one shared space for text and images.

Both branches first estimate the latent concept vector of their content —
text by averaging concept-table embeddings of recognised tokens, images by
decoding the pixel grid at full resolution — and then apply the *same*
orthonormal projection into the shared output space.  Two views of the same
underlying object therefore land close together, which is precisely the
contract of a jointly-trained vision/language encoder and what the Joint
Embedding retrieval framework depends on.

The joint space is still imperfect: each branch keeps its modality's noise
(dropped tokens, pixel noise), so joint vectors collapse modality-specific
detail — the weakness Figure 5 of the paper shows for JE.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.data.modality import Modality
from repro.data.rendering import ImageRenderer, TextRenderer
from repro.encoders.base import Encoder
from repro.errors import EncodingError
from repro.utils import derive_rng, l2_normalize


class SimulatedClipEncoder(Encoder):
    """Joint text/image encoder with a shared orthonormal output space."""

    name = "sim-clip"

    def __init__(
        self,
        image_renderer: ImageRenderer,
        output_dim: int = 32,
        modality_gap: float = 0.25,
        seed: int = 0,
    ) -> None:
        space = image_renderer.space
        if output_dim <= 0 or output_dim > space.latent_dim:
            raise ValueError(
                f"output_dim must be in [1, latent_dim={space.latent_dim}], "
                f"got {output_dim}"
            )
        if modality_gap < 0:
            raise ValueError(f"modality_gap must be >= 0, got {modality_gap}")
        self.space = space
        self.image_renderer = image_renderer
        self._output_dim = output_dim
        self.modality_gap = modality_gap
        self.seed = seed
        rng = derive_rng(seed, "clip-shared-projection")
        # Orthonormal rows: the shared projection preserves latent geometry,
        # which is what makes the joint space meaningful across modalities.
        # Keeping output_dim < latent_dim models the lossy compression of a
        # jointly trained space — the root of JE's accuracy ceiling.
        random_matrix = rng.standard_normal((space.latent_dim, space.latent_dim))
        q, _ = np.linalg.qr(random_matrix)
        self._projection = q[:output_dim, :]
        # Real CLIP spaces exhibit a "modality gap": text and image
        # embeddings occupy distinct cones.  A fixed per-modality offset
        # reproduces it.
        gap_rng = derive_rng(seed, "clip-modality-gap")
        self._gap = {
            Modality.TEXT: l2_normalize(gap_rng.standard_normal(output_dim)),
            Modality.IMAGE: l2_normalize(gap_rng.standard_normal(output_dim)),
        }

    @property
    def output_dim(self) -> int:
        return self._output_dim

    @property
    def modalities(self) -> Tuple[Modality, ...]:
        return (Modality.TEXT, Modality.IMAGE)

    # ------------------------------------------------------------------
    # branches
    # ------------------------------------------------------------------
    def _encode_text(self, content: object) -> np.ndarray:
        if not isinstance(content, str):
            raise EncodingError(
                f"{self.name} text branch expects a string, got {type(content).__name__}"
            )
        tokens = TextRenderer.tokenize(content)
        if not tokens:
            raise EncodingError(f"{self.name} cannot encode empty text")
        known = self.space.known_tokens(tokens)
        if known:
            stacked = np.stack([self.space.get(token).vector for token in known])
            return l2_normalize(stacked.mean(axis=0))
        # No recognised concept ("more like this one"): a real CLIP still
        # returns *some* embedding.  Hash tokens into pseudo-embeddings so
        # the vector is deterministic but carries no concept signal — the
        # other query modalities must do the work.
        from repro.encoders.text import _token_pseudo_embedding

        stacked = np.stack(
            [
                _token_pseudo_embedding(token, self.space.latent_dim, self.seed)
                for token in tokens
            ]
        )
        return l2_normalize(stacked.mean(axis=0))

    def _encode_image(self, content: object) -> np.ndarray:
        image = np.asarray(content, dtype=np.float64)
        if image.size != self.image_renderer.spec.pixels:
            raise EncodingError(
                f"{self.name} image branch expects "
                f"{self.image_renderer.spec.pixels} pixels, got {image.size}"
            )
        return self.image_renderer.decode(image)

    def encode(self, modality: Modality, content: object) -> np.ndarray:
        modality = self._require_support(modality)
        if modality is Modality.TEXT:
            latent_estimate = self._encode_text(content)
        else:
            latent_estimate = self._encode_image(content)
        projected = self._projection @ latent_estimate
        return l2_normalize(projected + self.modality_gap * self._gap[modality])

    def encode_batch(self, modality: Modality, contents) -> np.ndarray:
        """Batched branch: latents per item (text) or one gemm (images),
        then one shared projection gemm and a broadcast modality-gap add."""
        modality = self._require_support(modality)
        if not len(contents):
            return np.empty((0, self._output_dim))
        if modality is Modality.TEXT:
            latents = np.stack([self._encode_text(content) for content in contents])
        else:
            images = np.stack(
                [
                    np.asarray(content, dtype=np.float64).reshape(-1)
                    for content in contents
                ]
            )
            if images.shape[1] != self.image_renderer.spec.pixels:
                raise EncodingError(
                    f"{self.name} image branch expects "
                    f"{self.image_renderer.spec.pixels} pixels, "
                    f"got {images.shape[1]}"
                )
            latents = self.image_renderer.decode_batch(images)
        projected = latents @ self._projection.T
        return l2_normalize(projected + self.modality_gap * self._gap[modality])

    def encode_joint(self, vectors: Dict[Modality, np.ndarray]) -> np.ndarray:
        """Fuse per-modality CLIP vectors into one joint vector.

        Joint Embedding represents a whole multi-modal object (or query) as
        the normalised mean of its modality vectors in the shared space.
        """
        if not vectors:
            raise EncodingError("cannot fuse an empty vector set")
        stacked = np.stack(list(vectors.values()))
        return l2_normalize(stacked.mean(axis=0))
