"""Text encoders.

Both encoders turn a token string into a latent estimate and then project it
into an encoder-specific output space.  The latent estimate averages the
concept-table vectors of recognised tokens (the "pretrained vocabulary");
unrecognised tokens contribute hashed pseudo-embeddings, so filler words act
as noise exactly the way out-of-distribution words degrade a real encoder.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.concepts import ConceptSpace
from repro.data.modality import Modality
from repro.data.rendering import TextRenderer
from repro.encoders.base import Encoder
from repro.errors import EncodingError
from repro.utils import derive_rng, l2_normalize


def _token_pseudo_embedding(token: str, dim: int, seed: int) -> np.ndarray:
    """A fixed random unit vector for an out-of-vocabulary token."""
    rng = derive_rng(seed, "oov-token", token)
    return l2_normalize(rng.standard_normal(dim))


class BagOfTokensEncoder(Encoder):
    """Order-free averaging text encoder (the weaker baseline).

    Averages embeddings of *all* tokens — concept tokens resolve through the
    concept table, everything else through hashing — so filler words dilute
    the signal.  ``oov_weight`` controls how much they hurt.
    """

    name = "bag-of-tokens"

    def __init__(
        self,
        space: ConceptSpace,
        output_dim: int = 48,
        oov_weight: float = 0.5,
        seed: int = 0,
    ) -> None:
        if output_dim <= 0:
            raise ValueError(f"output_dim must be positive, got {output_dim}")
        if oov_weight < 0:
            raise ValueError(f"oov_weight must be >= 0, got {oov_weight}")
        self.space = space
        self._output_dim = output_dim
        self.oov_weight = oov_weight
        self.seed = seed
        rng = derive_rng(seed, "bag-of-tokens-projection")
        self._projection = rng.standard_normal((output_dim, space.latent_dim))
        self._projection /= np.sqrt(space.latent_dim)

    @property
    def output_dim(self) -> int:
        return self._output_dim

    @property
    def modalities(self) -> Tuple[Modality, ...]:
        return (Modality.TEXT,)

    def encode(self, modality: Modality, content: object) -> np.ndarray:
        self._require_support(modality)
        if not isinstance(content, str):
            raise EncodingError(
                f"{self.name} expects a string, got {type(content).__name__}"
            )
        tokens = TextRenderer.tokenize(content)
        if not tokens:
            raise EncodingError(f"{self.name} cannot encode empty text")
        return l2_normalize(self._projection @ self._latent(content))

    def _latent(self, content: object) -> np.ndarray:
        if not isinstance(content, str):
            raise EncodingError(
                f"{self.name} expects a string, got {type(content).__name__}"
            )
        tokens = TextRenderer.tokenize(content)
        if not tokens:
            raise EncodingError(f"{self.name} cannot encode empty text")
        accumulated = np.zeros(self.space.latent_dim)
        for token in tokens:
            if token in self.space:
                accumulated += self.space.get(token).vector
            else:
                accumulated += self.oov_weight * _token_pseudo_embedding(
                    token, self.space.latent_dim, self.seed
                )
        return l2_normalize(accumulated)

    def encode_batch(self, modality: Modality, contents) -> np.ndarray:
        """Token accumulation stays per-string; projection is one gemm."""
        self._require_support(modality)
        if not len(contents):
            return np.empty((0, self._output_dim))
        latents = np.stack([self._latent(content) for content in contents])
        return l2_normalize(latents @ self._projection.T)


class SequenceTextEncoder(Encoder):
    """Recurrent text encoder (the LSTM stand-in, the stronger option).

    Runs a fixed echo-state recurrence over token embeddings, which keeps it
    order-sensitive, but gates out unrecognised tokens almost entirely —
    modelling a well-trained sequence model that learned to ignore filler.
    """

    name = "sequence-lstm"

    def __init__(
        self,
        space: ConceptSpace,
        output_dim: int = 48,
        oov_weight: float = 0.05,
        recurrence_decay: float = 0.7,
        seed: int = 0,
    ) -> None:
        if output_dim <= 0:
            raise ValueError(f"output_dim must be positive, got {output_dim}")
        if not 0.0 < recurrence_decay <= 1.0:
            raise ValueError(
                f"recurrence_decay must be in (0, 1], got {recurrence_decay}"
            )
        self.space = space
        self._output_dim = output_dim
        self.oov_weight = oov_weight
        self.recurrence_decay = recurrence_decay
        self.seed = seed
        rng = derive_rng(seed, "sequence-projection")
        self._projection = rng.standard_normal((output_dim, space.latent_dim))
        self._projection /= np.sqrt(space.latent_dim)

    @property
    def output_dim(self) -> int:
        return self._output_dim

    @property
    def modalities(self) -> Tuple[Modality, ...]:
        return (Modality.TEXT,)

    def encode(self, modality: Modality, content: object) -> np.ndarray:
        self._require_support(modality)
        if not isinstance(content, str):
            raise EncodingError(
                f"{self.name} expects a string, got {type(content).__name__}"
            )
        tokens = TextRenderer.tokenize(content)
        if not tokens:
            raise EncodingError(f"{self.name} cannot encode empty text")
        return l2_normalize(self._projection @ self._latent(content))

    def _latent(self, content: object) -> np.ndarray:
        if not isinstance(content, str):
            raise EncodingError(
                f"{self.name} expects a string, got {type(content).__name__}"
            )
        tokens = TextRenderer.tokenize(content)
        if not tokens:
            raise EncodingError(f"{self.name} cannot encode empty text")
        state = np.zeros(self.space.latent_dim)
        for token in tokens:
            if token in self.space:
                step = self.space.get(token).vector
            else:
                step = self.oov_weight * _token_pseudo_embedding(
                    token, self.space.latent_dim, self.seed
                )
            state = self.recurrence_decay * state + step
        return l2_normalize(state)

    def encode_batch(self, modality: Modality, contents) -> np.ndarray:
        """The recurrence stays per-string; projection is one gemm."""
        self._require_support(modality)
        if not len(contents):
            return np.empty((0, self._output_dim))
        latents = np.stack([self._latent(content) for content in contents])
        return l2_normalize(latents @ self._projection.T)
