"""Experiment runner + fixed-width table printer.

Every benchmark regenerates its paper artefact as an
:class:`ExperimentTable` so the printed rows look the same across
experiments and can be diffed between runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.evaluation.metrics import mean_reciprocal_rank, recall_at_k
from repro.evaluation.workloads import EvalQuery
from repro.retrieval.base import RetrievalFramework


@dataclass
class FrameworkScore:
    """Aggregated quality/efficiency of one framework on one workload.

    Attributes:
        framework: Framework name.
        recall: Mean recall@k.
        mrr: Mean reciprocal rank.
        qps: Queries per second (wall clock).
        hops: Mean graph hops per query.
        distance_evaluations: Mean distance computations per query.
    """

    framework: str
    recall: float
    mrr: float
    qps: float
    hops: float
    distance_evaluations: float


def evaluate_framework(
    framework: RetrievalFramework,
    workload: Sequence[EvalQuery],
    k: int,
    budget: int = 64,
) -> FrameworkScore:
    """Run ``workload`` through ``framework`` and aggregate the metrics.

    Reference objects of composed queries are excluded from the retrieved
    lists before scoring (they are excluded from the ground truth too).
    """
    if not workload:
        raise ValueError("workload must be non-empty")
    total_recall = 0.0
    total_mrr = 0.0
    total_hops = 0
    total_evals = 0
    start = time.perf_counter()
    for query in workload:
        fetch = k + (1 if query.reference_id is not None else 0)
        response = framework.retrieve(query.raw, k=fetch, budget=budget)
        ids = [i for i in response.ids if i != query.reference_id][:k]
        total_recall += recall_at_k(ids, query.gt_ids, k)
        total_mrr += mean_reciprocal_rank(ids, query.gt_ids)
        total_hops += response.stats.hops
        total_evals += response.stats.distance_evaluations
    elapsed = time.perf_counter() - start
    count = len(workload)
    return FrameworkScore(
        framework=framework.name,
        recall=total_recall / count,
        mrr=total_mrr / count,
        qps=count / elapsed if elapsed > 0 else float("inf"),
        hops=total_hops / count,
        distance_evaluations=total_evals / count,
    )


class ExperimentTable:
    """Fixed-width table accumulating experiment rows.

    >>> table = ExperimentTable("demo", ["metric", "value"])
    >>> table.add_row(["recall", 0.93])
    >>> print(table.render())  # doctest: +ELLIPSIS
    demo...
    """

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        if not headers:
            raise ValueError("table needs at least one column")
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, values: Sequence[object]) -> None:
        """Append a row; floats are formatted to three decimals."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        formatted = [
            f"{value:.3f}" if isinstance(value, float) else str(value)
            for value in values
        ]
        self.rows.append(formatted)

    def column(self, name: str) -> List[str]:
        """All values of the column called ``name``."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """The table as aligned text, title first."""
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header_line)
        lines.append("-" * len(header_line))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)
