"""Ranking-quality metrics."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def recall_at_k(retrieved: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """|top-k retrieved ∩ relevant| / min(k, |relevant|).

    Normalising by ``min(k, |relevant|)`` keeps the metric in [0, 1] even
    when fewer than ``k`` items are relevant.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    relevant_set = set(relevant)
    if not relevant_set:
        raise ValueError("relevant set must be non-empty")
    hits = len(set(retrieved[:k]) & relevant_set)
    return hits / min(k, len(relevant_set))


def precision_at_k(retrieved: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """|top-k retrieved ∩ relevant| / k."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    relevant_set = set(relevant)
    return len(set(retrieved[:k]) & relevant_set) / k


def mean_reciprocal_rank(retrieved: Sequence[int], relevant: Iterable[int]) -> float:
    """1 / rank of the first relevant item (0 when none appears)."""
    relevant_set = set(relevant)
    for position, object_id in enumerate(retrieved, start=1):
        if object_id in relevant_set:
            return 1.0 / position
    return 0.0


def ndcg_at_k(retrieved: Sequence[int], relevant: Sequence[int], k: int) -> float:
    """Binary-gain nDCG@k with the relevant list's order as the ideal.

    Items earlier in ``relevant`` are treated as more relevant (graded gain
    ``|relevant| - position``), so metric order respects the oracle ranking.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    gains = {object_id: len(relevant) - i for i, object_id in enumerate(relevant)}
    dcg = 0.0
    for position, object_id in enumerate(retrieved[:k], start=1):
        gain = gains.get(object_id, 0)
        dcg += gain / np.log2(position + 1)
    ideal = 0.0
    for position, object_id in enumerate(relevant[:k], start=1):
        ideal += gains[object_id] / np.log2(position + 1)
    return dcg / ideal if ideal > 0 else 0.0
