"""Query workload generators with exact concept-level ground truth.

Each generator mirrors an interaction scenario from the paper:

* :func:`text_queries` — Figure 4(a) round one: text-only requests.
* :func:`composed_queries` — Figure 4(b): a reference image plus text
  carrying an extra constraint.
* :func:`refinement_scripts` — Figures 1/5: a text round, a simulated user
  selection, and a refinement round whose ground truth combines the
  selected object with the original intent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.data.knowledge_base import KnowledgeBase
from repro.data.modality import Modality
from repro.data.objects import RawQuery
from repro.errors import DataError
from repro.utils import derive_rng


@dataclass
class EvalQuery:
    """One evaluable query.

    Attributes:
        raw: The query as the system receives it.
        target_concepts: The oracle intent.
        gt_ids: Exact top-k object ids for that intent.
        reference_id: Object whose image the query borrowed (None for
            text-only queries); always excluded from ``gt_ids``.
    """

    raw: RawQuery
    target_concepts: Tuple[str, ...]
    gt_ids: List[int]
    reference_id: Optional[int] = None


@dataclass
class RefinementScript:
    """A two-round scripted dialogue with ground truth per round.

    Attributes:
        initial: Round-one text-only query.
        refinement_text: What the user types after selecting a result.
        extra_concept: The concept the refinement adds.
        k: Ground-truth depth.
    """

    initial: EvalQuery
    refinement_text: str
    extra_concept: str
    k: int

    def refined_ground_truth(
        self, kb: KnowledgeBase, selected_id: int
    ) -> List[int]:
        """Oracle for round two: selected object's concepts + the extra one.

        Computed lazily because it depends on which result the simulated
        user actually selected.
        """
        selected = kb.get(selected_id)
        concepts = list(dict.fromkeys(list(selected.concepts) + [self.extra_concept]))
        return kb.ground_truth_for_concepts(concepts, self.k, exclude=[selected_id])


def _query_text(concepts: Sequence[str], rng) -> str:
    """Phrase a concept bag the way a user would type it."""
    templates = (
        "i would like some images of {}",
        "could you find {} for me",
        "show me {}",
        "looking for {}",
    )
    template = templates[int(rng.integers(len(templates)))]
    return template.format(" ".join(concepts))


def text_queries(
    kb: KnowledgeBase,
    count: int,
    k: int = 10,
    concepts_per_query: int = 2,
    seed: int = 0,
) -> List[EvalQuery]:
    """Text-only queries over random concept pairs that co-occur in data."""
    if count < 1:
        raise DataError(f"count must be >= 1, got {count}")
    rng = derive_rng(seed, "workload-text", kb.name)
    queries: List[EvalQuery] = []
    for _ in range(count):
        # Anchor on a real object so every query has dense relevant matter.
        anchor = kb.get(int(rng.integers(len(kb))))
        concepts = list(anchor.concepts[:concepts_per_query])
        queries.append(
            EvalQuery(
                raw=RawQuery.from_text(_query_text(concepts, rng)),
                target_concepts=tuple(concepts),
                gt_ids=kb.ground_truth_for_concepts(concepts, k),
            )
        )
    return queries


def composed_queries(
    kb: KnowledgeBase,
    count: int,
    k: int = 10,
    seed: int = 0,
) -> List[EvalQuery]:
    """Image-assisted queries: a reference object's image + extra text."""
    if count < 1:
        raise DataError(f"count must be >= 1, got {count}")
    if Modality.IMAGE not in kb.modalities:
        raise DataError("composed queries need an image modality")
    rng = derive_rng(seed, "workload-composed", kb.name)
    names = kb.space.names
    queries: List[EvalQuery] = []
    for _ in range(count):
        reference_id = int(rng.integers(len(kb)))
        reference = kb.get(reference_id)
        extra_pool = [name for name in names if name not in reference.concepts]
        extra = extra_pool[int(rng.integers(len(extra_pool)))]
        target = list(reference.concepts) + [extra]
        queries.append(
            EvalQuery(
                raw=RawQuery.from_text_and_image(
                    extra, reference.get(Modality.IMAGE)
                ),
                target_concepts=tuple(target),
                gt_ids=kb.ground_truth_for_concepts(target, k, exclude=[reference_id]),
                reference_id=reference_id,
            )
        )
    return queries


def refinement_scripts(
    kb: KnowledgeBase,
    count: int,
    k: int = 10,
    seed: int = 0,
) -> List[RefinementScript]:
    """Two-round dialogue scripts (text round, selection, refinement)."""
    if count < 1:
        raise DataError(f"count must be >= 1, got {count}")
    rng = derive_rng(seed, "workload-refine", kb.name)
    names = kb.space.names
    scripts: List[RefinementScript] = []
    for _ in range(count):
        anchor = kb.get(int(rng.integers(len(kb))))
        initial_concepts = list(anchor.concepts[:2])
        initial = EvalQuery(
            raw=RawQuery.from_text(_query_text(initial_concepts, rng)),
            target_concepts=tuple(initial_concepts),
            gt_ids=kb.ground_truth_for_concepts(initial_concepts, k),
        )
        extra_pool = [name for name in names if name not in anchor.concepts]
        extra = extra_pool[int(rng.integers(len(extra_pool)))]
        scripts.append(
            RefinementScript(
                initial=initial,
                refinement_text=(
                    f"i like this one, could you find more like it with {extra}"
                ),
                extra_concept=extra,
                k=k,
            )
        )
    return scripts
