"""Exact nearest-neighbour ground truth in vector space.

Used by the index experiments (E1, E3, E5), where "correct" means the true
top-k under the kernel — as opposed to the concept-level oracle of
:meth:`repro.data.KnowledgeBase.ground_truth_neighbors`, which the
end-to-end quality experiments use.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.distance.kernel import DistanceKernel


def exact_knn(
    corpus: np.ndarray,
    kernel: DistanceKernel,
    queries: np.ndarray,
    k: int,
) -> List[List[int]]:
    """True top-``k`` ids for each query row under ``kernel``."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    corpus = np.atleast_2d(np.asarray(corpus, dtype=np.float64))
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    k = min(k, corpus.shape[0])
    result: List[List[int]] = []
    for query in queries:
        distances = kernel.batch(query, corpus)
        top = np.argpartition(distances, k - 1)[:k]
        top = top[np.argsort(distances[top])]
        result.append([int(i) for i in top])
    return result
