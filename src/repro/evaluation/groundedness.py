"""Oracle groundedness scoring for agentic answers.

The answerer's own ``supported`` flag relies on what a real LLM could
read — the noisy rendered descriptions.  Evaluation gets to cheat: the
latent-concept ground truth says exactly which objects genuinely carry a
concept, so a claim can be scored as *oracle-grounded* — does it cite at
least one object from the concept's true neighbourhood? — independently
of rendering noise.  Benchmarks report this score for agentic answers
and for single-hop baselines alike, making the two comparable.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.data.knowledge_base import KnowledgeBase


def claim_is_grounded(
    kb: KnowledgeBase,
    concept: str,
    citations: Iterable[int],
    k: int = 10,
) -> bool:
    """True when any citation lies in ``concept``'s true top-``k``.

    Args:
        kb: The knowledge base with its hidden latents.
        concept: The latent-concept token the claim is about.
        citations: Object ids the claim cites.
        k: Size of the ground-truth neighbourhood to accept.
    """
    truth = set(kb.ground_truth_for_concepts([concept], k))
    return any(object_id in truth for object_id in citations)


def groundedness_score(
    kb: KnowledgeBase,
    claims: Sequence[object],
    k: int = 10,
) -> float:
    """Fraction of ``claims`` that are oracle-grounded (0.0 when empty).

    ``claims`` are :class:`~repro.core.agentic.Claim`-likes: anything
    with ``concept`` and ``citations`` attributes.
    """
    if not claims:
        return 0.0
    grounded = sum(
        1
        for claim in claims
        if claim_is_grounded(kb, claim.concept, claim.citations, k=k)
    )
    return grounded / len(claims)
