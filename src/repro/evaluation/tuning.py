"""Retrieval-parameter auto-tuning.

The configuration panel exposes the search budget (beam width) as a raw
knob; this helper picks the smallest budget that reaches a target recall on
a validation workload — the standard way vector databases translate a
quality SLO into an index parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.evaluation.harness import evaluate_framework
from repro.evaluation.workloads import EvalQuery
from repro.retrieval.base import RetrievalFramework


@dataclass(frozen=True)
class BudgetTuneResult:
    """Outcome of a budget search.

    Attributes:
        budget: The chosen beam width.
        recall: Recall measured at that budget.
        target_met: Whether the target was reachable within ``max_budget``.
        trace: (budget, recall) pairs evaluated along the way.
    """

    budget: int
    recall: float
    target_met: bool
    trace: "List[tuple]"


def tune_budget(
    framework: RetrievalFramework,
    workload: Sequence[EvalQuery],
    k: int,
    target_recall: float,
    min_budget: int = 8,
    max_budget: int = 512,
) -> BudgetTuneResult:
    """Smallest budget whose recall@k meets ``target_recall``.

    Doubles the budget until the target is met (or ``max_budget`` is hit),
    then binary-searches the interval — recall is monotone non-decreasing
    in the beam width, which makes this sound.
    """
    if not 0.0 < target_recall <= 1.0:
        raise ConfigurationError(
            f"target_recall must be in (0, 1], got {target_recall}"
        )
    if min_budget < 1 or max_budget < min_budget:
        raise ConfigurationError(
            f"need 1 <= min_budget <= max_budget, got {min_budget}..{max_budget}"
        )

    trace: List[tuple] = []

    def recall_at(budget: int) -> float:
        score = evaluate_framework(framework, workload, k=k, budget=budget)
        trace.append((budget, score.recall))
        return score.recall

    # Exponential probe upward.
    budget = min_budget
    recall = recall_at(budget)
    while recall < target_recall and budget < max_budget:
        budget = min(budget * 2, max_budget)
        recall = recall_at(budget)

    if recall < target_recall:
        return BudgetTuneResult(
            budget=budget, recall=recall, target_met=False, trace=trace
        )

    # Binary search the last doubling interval for the smallest winner.
    low = max(min_budget, budget // 2)
    high = budget
    best_budget, best_recall = budget, recall
    while low < high:
        mid = (low + high) // 2
        mid_recall = recall_at(mid)
        if mid_recall >= target_recall:
            best_budget, best_recall = mid, mid_recall
            high = mid
        else:
            low = mid + 1
    return BudgetTuneResult(
        budget=best_budget, recall=best_recall, target_met=True, trace=trace
    )
