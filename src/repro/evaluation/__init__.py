"""Evaluation harness: metrics, exact ground truth, query workloads, and
the experiment runner + table printer used by every benchmark."""

from repro.evaluation.ground_truth import exact_knn
from repro.evaluation.groundedness import claim_is_grounded, groundedness_score
from repro.evaluation.harness import ExperimentTable, evaluate_framework
from repro.evaluation.metrics import (
    mean_reciprocal_rank,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)
from repro.evaluation.tuning import BudgetTuneResult, tune_budget
from repro.evaluation.workloads import (
    EvalQuery,
    RefinementScript,
    composed_queries,
    refinement_scripts,
    text_queries,
)

__all__ = [
    "BudgetTuneResult",
    "EvalQuery",
    "ExperimentTable",
    "RefinementScript",
    "claim_is_grounded",
    "composed_queries",
    "evaluate_framework",
    "exact_knn",
    "groundedness_score",
    "mean_reciprocal_rank",
    "ndcg_at_k",
    "precision_at_k",
    "recall_at_k",
    "refinement_scripts",
    "text_queries",
    "tune_budget",
]
