"""The flight recorder: a bounded, rotating JSONL sink for query traces.

PR 1's tracer keeps the last N span trees *in process*; they die with the
server and cannot be diffed across runs.  The :class:`FlightRecorder`
persists every finished query — span tree plus enough request context
(text, image payload, weights, history, exclusions) that
``python -m repro replay <trace-file>`` can deterministically re-execute
it against a freshly built system and diff result ids and span structure
against the recording.

File format (one JSON object per line):

* line 1 — a ``{"kind": "header", "version": 1, "config": {...}}`` record
  carrying the full :class:`~repro.core.config.MQAConfig` so replay can
  rebuild the exact system (same dataset seed → byte-identical corpus).
* every other line — a ``{"kind": "query", "trace_id": n, ...}`` record
  with ``request``, ``result_ids``, ``answer``, and ``span_tree`` keys.

The sink is size-capped: when the active file exceeds ``max_bytes`` it is
rotated to ``<path>.1`` (older generations shift to ``.2``, ``.3``, ...)
and generations beyond ``max_files`` are deleted, so a long-running server
holds a bounded window of recent flights.  Every fresh file re-writes the
header, keeping each generation independently replayable.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

RECORDING_VERSION = 1


def _json_default(value: Any) -> Any:
    """Encode numpy payloads (image grids, scalars) as plain JSON."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    raise TypeError(f"cannot serialise {type(value).__name__} into a recording")


class FlightRecorder:
    """Append query records to a rotating JSONL file.

    Args:
        path: Active recording file (parent directories are created).
        config: JSON-ready system configuration written into each header.
        max_bytes: Rotation threshold for the active file.
        max_files: Rotated generations kept (``<path>.1`` .. ``<path>.N``);
            the active file is on top of these.
        metrics: Optional :class:`~repro.observability.MetricsRegistry`;
            recorder I/O failures increment its ``recorder.errors`` counter.

    Writes serialise on an internal lock, so one recorder can be shared by
    every request thread of a server.

    Recording is an observability side-channel: an I/O failure while
    persisting a flight (disk full, rotated file vanished, closed handle)
    is *counted* — ``errors`` attribute plus the ``recorder.errors``
    metric — but never fails the query that was being recorded.
    """

    def __init__(
        self,
        path: "str | Path",
        config: Optional[Dict[str, Any]] = None,
        max_bytes: int = 4_000_000,
        max_files: int = 3,
        metrics=None,
    ) -> None:
        if max_bytes < 1024:
            raise ValueError(f"max_bytes must be >= 1024, got {max_bytes}")
        if max_files < 1:
            raise ValueError(f"max_files must be >= 1, got {max_files}")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.max_files = max_files
        self.config = dict(config or {})
        self.metrics = metrics
        self.records_written = 0
        self.rotations = 0
        self.errors = 0
        self._trace_id = 0
        self._lock = threading.Lock()
        self._handle: Optional[Any] = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._size = self.path.stat().st_size if self.path.exists() else 0
        if self._size == 0:
            self._write_header()

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _write_header(self) -> None:
        header = {
            "kind": "header",
            "version": RECORDING_VERSION,
            "config": self.config,
        }
        self._append_line(json.dumps(header, default=_json_default))

    def _append_line(self, line: str) -> None:
        # The handle stays open across records (re-opening per append
        # dominates the cost of a record); flush keeps the file tailable.
        data = line + "\n"
        if self._handle is None:
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(data)
        self._handle.flush()
        self._size += len(data.encode("utf-8"))

    def _rotate(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        for generation in range(self.max_files, 0, -1):
            rotated = self.path.with_name(f"{self.path.name}.{generation}")
            if generation == self.max_files:
                rotated.unlink(missing_ok=True)
                continue
            if rotated.exists():
                rotated.rename(self.path.with_name(f"{self.path.name}.{generation + 1}"))
        self.path.rename(self.path.with_name(f"{self.path.name}.1"))
        self._size = 0
        self.rotations += 1
        self._write_header()

    def record(
        self,
        request: Dict[str, Any],
        result_ids: List[int],
        span_tree: Optional[Dict[str, Any]],
        answer: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Persist one finished query; returns its trace id.

        Args:
            request: Everything needed to re-issue the query (text, image
                payload, k, weights, history, exclusions, round index).
            result_ids: Retrieved object ids, best first.
            span_tree: The finished trace as a JSON-ready dict.
            answer: Optional answer summary (text, grounded flag).
        """
        with self._lock:
            trace_id = self._trace_id
            self._trace_id += 1
            entry = {
                "kind": "query",
                "trace_id": trace_id,
                "request": request,
                "result_ids": [int(i) for i in result_ids],
                "answer": answer or {},
                "span_tree": span_tree,
            }
            try:
                self._append_line(json.dumps(entry, default=_json_default))
                self.records_written += 1
                if self._size > self.max_bytes:
                    self._rotate()
            except OSError:
                # A lost recording must not fail the recorded query; the
                # counter makes the loss visible instead of silent.
                self._count_error()
        return trace_id

    def _count_error(self) -> None:
        self.errors += 1
        if self.metrics is not None:
            self.metrics.inc("recorder.errors")

    def close(self) -> None:
        """Release the underlying file handle (safe to call twice).

        A failing close (e.g. buffered data hitting a full disk) is
        counted like any other recorder I/O error, not raised.
        """
        with self._lock:
            if self._handle is not None:
                handle, self._handle = self._handle, None
                try:
                    handle.close()
                except OSError:
                    self._count_error()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            # During interpreter teardown even the counters may be gone;
            # close() already accounts for ordinary I/O failures.
            pass

    def snapshot(self) -> Dict[str, Any]:
        """Recorder state for ``/health`` and the status panel."""
        return {
            "path": str(self.path),
            "records_written": self.records_written,
            "rotations": self.rotations,
            "errors": self.errors,
            "active_bytes": self._size,
            "max_bytes": self.max_bytes,
            "max_files": self.max_files,
        }


def read_recording(
    path: "str | Path",
) -> Tuple[Optional[Dict[str, Any]], List[Dict[str, Any]]]:
    """Load one recording file → ``(header, query_entries)``.

    Blank lines are skipped; the header may be absent (None) when reading
    a truncated or hand-built file.
    """
    header: Optional[Dict[str, Any]] = None
    entries: List[Dict[str, Any]] = []
    text = Path(path).read_text(encoding="utf-8")
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{line_number}: not valid JSONL ({exc.msg})"
            ) from None
        kind = record.get("kind")
        if kind == "header":
            if header is None:
                header = record
        elif kind == "query":
            entries.append(record)
    return header, entries
