"""Online quality and SLO monitoring.

Production MRAG surveys single out two operational blind spots: retrieval
*quality drift* (the index quietly degrades while latency looks fine) and
*latency attribution against targets*.  Two monitors close them:

* :class:`QualityMonitor` — on a deterministic sample of live queries
  (every ``sample_rate``-th), scores the retrieved ids against the
  knowledge base's latent-concept ground truth and streams recall@k / MRR
  into the metrics registry.  Sampling is counter-based, not random, so
  two identical runs score identical queries.
* :class:`SLOMonitor` — keeps rolling windows of request latency and
  error outcomes and grades them against configurable targets:
  ``ok`` (within target), ``degraded`` (over target), ``breach`` (over
  ``breach_factor`` × target).  Surfaced by ``GET /health`` and the
  status panel.

Both monitors are cheap enough to leave on in production (a deque append
per request; one oracle scan per sampled query) and are **off by
default** (``MQAConfig.monitoring``).
"""

from __future__ import annotations

import re
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

STATE_OK = "ok"
STATE_DEGRADED = "degraded"
STATE_BREACH = "breach"

_TOKEN_SPLIT = re.compile(r"[^a-z0-9-]+")


@dataclass(frozen=True)
class SLOTargets:
    """The service-level objectives a deployment is graded against.

    Attributes:
        latency_ms: Rolling-window p95 latency target.
        error_rate: Rolling-window error-fraction target.
        window: Requests per rolling window.
        breach_factor: Multiplier separating ``degraded`` from ``breach``.
    """

    latency_ms: float = 250.0
    error_rate: float = 0.05
    window: int = 64
    breach_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.latency_ms <= 0:
            raise ValueError(f"latency_ms must be positive, got {self.latency_ms}")
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError(f"error_rate must be in [0, 1], got {self.error_rate}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.breach_factor <= 1.0:
            raise ValueError(
                f"breach_factor must be > 1, got {self.breach_factor}"
            )


class SLOMonitor:
    """Rolling-window latency/error grading against :class:`SLOTargets`."""

    def __init__(self, targets: SLOTargets = SLOTargets()) -> None:
        self.targets = targets
        self._latencies: Deque[float] = deque(maxlen=targets.window)
        self._errors: Deque[bool] = deque(maxlen=targets.window)
        self._lock = threading.Lock()
        self.total_requests = 0
        self.total_errors = 0

    def observe(self, latency_ms: float, error: bool = False) -> None:
        """Fold one finished request into the rolling windows."""
        with self._lock:
            self._latencies.append(float(latency_ms))
            self._errors.append(bool(error))
            self.total_requests += 1
            if error:
                self.total_errors += 1

    # ------------------------------------------------------------------
    # grading
    # ------------------------------------------------------------------
    def _sample(self) -> Tuple[List[float], List[bool], int, int]:
        """One consistent copy of both windows and the running totals.

        Every derived figure (p95, error rate, state) is computed from a
        copy taken under the lock in a single acquisition — grading must
        not mix a latency window that saw a request with an error window
        that hasn't, and the lock is non-reentrant so the readers below
        cannot simply call each other while holding it.
        """
        with self._lock:
            return (
                list(self._latencies),
                list(self._errors),
                self.total_requests,
                self.total_errors,
            )

    @staticmethod
    def _p95(latencies: List[float]) -> float:
        if not latencies:
            return 0.0
        return float(np.percentile(np.asarray(latencies), 95))

    @staticmethod
    def _error_rate(errors: List[bool]) -> float:
        if not errors:
            return 0.0
        return sum(errors) / len(errors)

    def _grade(self, p95: float, errors: float) -> str:
        factor = self.targets.breach_factor
        if (
            p95 > self.targets.latency_ms * factor
            or errors > min(self.targets.error_rate * factor, 1.0)
        ):
            return STATE_BREACH
        if p95 > self.targets.latency_ms or errors > self.targets.error_rate:
            return STATE_DEGRADED
        return STATE_OK

    @property
    def window_p95_ms(self) -> float:
        """p95 latency over the current window (0.0 when empty)."""
        latencies, _, _, _ = self._sample()
        return self._p95(latencies)

    @property
    def window_error_rate(self) -> float:
        """Error fraction over the current window (0.0 when empty)."""
        _, errors, _, _ = self._sample()
        return self._error_rate(errors)

    @property
    def state(self) -> str:
        """``ok`` / ``degraded`` / ``breach`` under the targets."""
        latencies, errors, _, _ = self._sample()
        return self._grade(self._p95(latencies), self._error_rate(errors))

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready grading report for ``/health``."""
        latencies, errors, total_requests, total_errors = self._sample()
        p95 = self._p95(latencies)
        error_rate = self._error_rate(errors)
        return {
            "state": self._grade(p95, error_rate),
            "window_p95_ms": round(p95, 3),
            "latency_target_ms": self.targets.latency_ms,
            "window_error_rate": round(error_rate, 4),
            "error_rate_target": self.targets.error_rate,
            "window": self.targets.window,
            "window_fill": len(latencies),
            "breach_factor": self.targets.breach_factor,
            "total_requests": total_requests,
            "total_errors": total_errors,
        }


class QualityMonitor:
    """Scores a deterministic sample of live queries against the oracle.

    Args:
        kb: The knowledge base whose latent-concept ground truth is the
            scoring oracle.
        metrics: Registry receiving ``quality.*`` counters and gauges.
        sample_rate: Score every ``sample_rate``-th query (1 = all).
        k: Oracle depth for recall@k.
    """

    def __init__(self, kb, metrics, sample_rate: int = 8, k: int = 5) -> None:
        if sample_rate < 1:
            raise ValueError(f"sample_rate must be >= 1, got {sample_rate}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.kb = kb
        self.metrics = metrics
        self.sample_rate = sample_rate
        self.k = k
        self._seen = 0
        self._lock = threading.Lock()
        self.last_score: Optional[Dict[str, Any]] = None
        # Oracle answers are deterministic for a fixed corpus; caching them
        # keeps sampled queries off the O(corpus) ground-truth scan.  The
        # cache drops whenever the knowledge base changes size (ingest).
        self._oracle_cache: Dict[Tuple[str, ...], List[int]] = {}
        self._oracle_kb_size = len(kb)

    def concepts_of(self, query_text: str) -> List[str]:
        """Concept tokens of ``query_text`` known to the latent space."""
        tokens = [t for t in _TOKEN_SPLIT.split(query_text.lower()) if t]
        return self.kb.space.known_tokens(tokens)

    def maybe_score(
        self, query_text: str, retrieved_ids: Sequence[int]
    ) -> Optional[Dict[str, Any]]:
        """Score this query if it falls on the deterministic sample grid.

        Returns the score dict when the query was sampled *and* carried at
        least one known concept, else None.  Queries with no recognised
        concepts count into ``quality.unscorable`` (no oracle exists for
        them).
        """
        with self._lock:
            sampled = self._seen % self.sample_rate == 0
            self._seen += 1
        if not sampled:
            return None
        from repro.evaluation.metrics import mean_reciprocal_rank, recall_at_k

        concepts = self.concepts_of(query_text)
        if not concepts:
            self.metrics.inc("quality.unscorable")
            return None
        key = tuple(concepts)
        with self._lock:
            if len(self.kb) != self._oracle_kb_size:
                self._oracle_cache.clear()
                self._oracle_kb_size = len(self.kb)
            oracle = self._oracle_cache.get(key)
        if oracle is None:
            oracle = self.kb.ground_truth_for_concepts(concepts, self.k)
            with self._lock:
                self._oracle_cache[key] = oracle
        score = {
            "recall_at_k": recall_at_k(list(retrieved_ids), oracle, self.k),
            "mrr": mean_reciprocal_rank(list(retrieved_ids), oracle),
            "k": self.k,
            "concepts": concepts,
        }
        self.metrics.inc("quality.sampled")
        self.metrics.observe("quality.recall_at_k", score["recall_at_k"])
        self.metrics.observe("quality.mrr", score["mrr"])
        self.last_score = score
        return score

    def snapshot(self) -> Dict[str, Any]:
        """Streaming gauges for ``/health`` and the status panel."""
        recall = self.metrics.histogram("quality.recall_at_k")
        mrr = self.metrics.histogram("quality.mrr")
        return {
            "sample_rate": self.sample_rate,
            "k": self.k,
            "queries_seen": self._seen,
            "sampled": int(self.metrics.counter_value("quality.sampled")),
            "unscorable": int(self.metrics.counter_value("quality.unscorable")),
            "mean_recall_at_k": round(recall.mean, 4),
            "mean_mrr": round(mrr.mean, 4),
            "last_score": dict(self.last_score) if self.last_score else None,
        }
