"""Render metrics and traces in formats external tooling understands.

Two exporters:

* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4) over a :class:`~repro.observability.metrics.MetricsRegistry`:
  counters become ``*_total`` counter families, histograms become summary
  families with p50/p95/p99 quantiles plus ``_sum``/``_count``.  Served by
  ``GET /metrics?format=prometheus`` so a scraper can point straight at
  the MQA server.
* :func:`collapse_spans` — Brendan Gregg's collapsed-stack format
  (``root;child;grandchild <self_ms>``) over span trees, consumable by
  ``flamegraph.pl`` and speedscope.  Self time (a span's duration minus
  its children's) is what flame graphs expect, so nested stages never
  double-count.

Both outputs are deterministic for deterministic inputs: families and
stacks are emitted in sorted order, values rounded to fixed precision.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Mapping, Tuple, Union

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import Span

_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_FIRST_CHAR = re.compile(r"^[^a-zA-Z_:]")

#: Quantiles a histogram family exposes, in exposition order.
SUMMARY_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("0.5", 50.0),
    ("0.95", 95.0),
    ("0.99", 99.0),
)


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Sanitise a registry key into a legal Prometheus metric name.

    Dots and other invalid characters become underscores, and the shared
    ``prefix`` namespaces every family (``api.query_ms`` →
    ``repro_api_query_ms``).
    """
    cleaned = _INVALID_METRIC_CHARS.sub("_", name)
    cleaned = _INVALID_FIRST_CHAR.sub("_", cleaned)
    return f"{prefix}_{cleaned}" if prefix else cleaned


def _format_value(value: float) -> str:
    """Fixed-precision rendering so output is byte-stable across runs."""
    if value == int(value):
        return str(int(value))
    return repr(round(float(value), 6))


#: Registry keys carrying a :func:`~repro.observability.metrics.labelled`
#: suffix: ``base{k=v,k2=v2}``.
_LABELLED_KEY = re.compile(r"^(?P<base>[^{]+)\{(?P<labels>[^{}]*)\}$")


def split_labels(name: str) -> Tuple[str, Dict[str, str]]:
    """Decode a registry key into ``(base_name, labels)``.

    Inverse of :func:`repro.observability.metrics.labelled`; plain keys
    come back with an empty label dict.
    """
    match = _LABELLED_KEY.match(name)
    if match is None:
        return name, {}
    labels: Dict[str, str] = {}
    body = match.group("labels")
    if body:
        for pair in body.split(","):
            key, _, value = pair.partition("=")
            labels[key] = value
    return match.group("base"), labels


def _label_suffix(labels: Dict[str, str], extra: "Tuple[str, str] | None" = None) -> str:
    """Render ``{k="v",...}`` for a sample line (empty for no labels)."""
    pairs = [(key, labels[key]) for key in sorted(labels)]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    escaped = (
        (key, value.replace("\\", "\\\\").replace('"', '\\"'))
        for key, value in pairs
    )
    return "{" + ",".join(f'{key}="{value}"' for key, value in escaped) + "}"


def _families(names: Iterable[str]) -> "Dict[str, List[Tuple[str, Dict[str, str]]]]":
    """Group registry keys into ``base -> [(key, labels), ...]`` families.

    Families and the label sets within each family are sorted, so the
    exposition stays deterministic; an unlabelled key renders exactly as
    it did before labels existed (its family has one suffix-free sample).
    """
    families: Dict[str, List[Tuple[str, Dict[str, str]]]] = {}
    for name in sorted(names):
        base, labels = split_labels(name)
        families.setdefault(base, []).append((name, labels))
    return families


def render_prometheus(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """The registry as Prometheus text exposition (one string, trailing \\n).

    Counters render as ``counter`` families suffixed ``_total``;
    histograms render as ``summary`` families with p50/p95/p99 quantile
    samples plus ``_sum`` and ``_count``.  Registry keys encoded with
    :func:`~repro.observability.metrics.labelled` are grouped into one
    family per base name with ``HELP``/``TYPE`` emitted once and proper
    ``{k="v"}`` label sets on every sample.
    """
    snapshot = registry.snapshot()
    lines: List[str] = []
    for base, members in sorted(_families(snapshot["counters"]).items()):
        family = prometheus_name(base, prefix) + "_total"
        lines.append(f"# HELP {family} Monotonic counter {base!r}.")
        lines.append(f"# TYPE {family} counter")
        for name, labels in members:
            lines.append(
                f"{family}{_label_suffix(labels)} "
                f"{_format_value(snapshot['counters'][name])}"
            )
    for base, members in sorted(_families(snapshot["histograms"]).items()):
        family = prometheus_name(base, prefix)
        lines.append(f"# HELP {family} Streaming summary {base!r}.")
        lines.append(f"# TYPE {family} summary")
        for name, labels in members:
            histogram = registry.histogram(name)
            for label, q in SUMMARY_QUANTILES:
                lines.append(
                    f"{family}{_label_suffix(labels, ('quantile', label))} "
                    f"{_format_value(round(histogram.percentile(q), 6))}"
                )
            lines.append(
                f"{family}_sum{_label_suffix(labels)} "
                f"{_format_value(round(histogram.total, 6))}"
            )
            lines.append(
                f"{family}_count{_label_suffix(labels)} "
                f"{_format_value(histogram.count)}"
            )
    return "\n".join(lines) + "\n"


SpanLike = Union[Span, Mapping[str, Any]]


def _span_fields(span: SpanLike) -> Tuple[str, float, List[SpanLike]]:
    """(name, duration_ms, children) for a Span or its dict export."""
    if isinstance(span, Span):
        return span.name, span.duration_ms, list(span.children)
    return (
        str(span["name"]),
        float(span.get("duration_ms", 0.0)),
        list(span.get("children", ())),
    )


def collapse_spans(roots: Iterable[SpanLike]) -> str:
    """Fold span trees into collapsed-stack lines.

    Each line is ``name;child;grandchild <self_ms>`` with semicolon-joined
    span names as the stack and the span's *self* time (duration minus
    children) as the value, summed across all occurrences of the same
    stack and emitted in sorted stack order.  Zero-self-time stacks are
    kept so the tree shape survives even for sub-millisecond spans.
    """
    totals: Dict[str, float] = {}

    def walk(span: SpanLike, prefix: str) -> None:
        name, duration_ms, children = _span_fields(span)
        stack = f"{prefix};{name}" if prefix else name
        children_ms = 0.0
        for child in children:
            _, child_ms, _ = _span_fields(child)
            children_ms += child_ms
        self_ms = max(duration_ms - children_ms, 0.0)
        totals[stack] = totals.get(stack, 0.0) + self_ms
        for child in children:
            walk(child, stack)

    for root in roots:
        walk(root, "")
    return "\n".join(
        f"{stack} {round(value, 3)}" for stack, value in sorted(totals.items())
    ) + ("\n" if totals else "")
