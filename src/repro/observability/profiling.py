"""Fold many span trees into one per-path profile table.

A single trace answers "where did *this* query's time go"; the
:class:`ProfileAggregator` answers the aggregate question across many
queries (or across the build phases of many indexes): for every span
*path* — the semicolon-joined chain of span names from the root, e.g.
``query;retrieval;index-search;beam-search`` — it accumulates call count,
cumulative time, and a reservoir-sampled distribution of *self* time
(duration minus children), reporting total/mean/p95.  Exposed live at
``GET /profile`` over the tracer's retained traces and offline via
``python -m repro profile <trace-file>`` over a flight recording.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Union

from repro.observability.metrics import Histogram
from repro.observability.tracing import Span

SpanLike = Union[Span, Mapping[str, Any]]


class _PathStats:
    """Accumulated timing facts for one span path."""

    __slots__ = ("count", "total_ms", "self_total_ms", "self_histogram")

    def __init__(self, path: str, reservoir_size: int) -> None:
        self.count = 0
        self.total_ms = 0.0
        self.self_total_ms = 0.0
        self.self_histogram = Histogram(path, reservoir_size=reservoir_size)


class ProfileAggregator:
    """Streams span trees in, produces a cumulative/self-time table.

    Args:
        reservoir_size: Per-path sample cap for the self-time percentile
            sketch (the aggregate stays bounded no matter how many traces
            flow in).
    """

    def __init__(self, reservoir_size: int = 512) -> None:
        self._reservoir_size = reservoir_size
        self._paths: Dict[str, _PathStats] = {}
        self.trace_count = 0

    @staticmethod
    def _fields(span: SpanLike):
        if isinstance(span, Span):
            return span.name, span.duration_ms, list(span.children)
        return (
            str(span["name"]),
            float(span.get("duration_ms", 0.0)),
            list(span.get("children", ())),
        )

    def add_trace(self, root: SpanLike) -> None:
        """Fold one span tree (a :class:`Span` or its dict export) in."""
        self.trace_count += 1
        self._walk(root, "")

    def add_traces(self, roots: Iterable[SpanLike]) -> "ProfileAggregator":
        """Fold many span trees in; returns self for chaining."""
        for root in roots:
            self.add_trace(root)
        return self

    def _walk(self, span: SpanLike, prefix: str) -> None:
        name, duration_ms, children = self._fields(span)
        path = f"{prefix};{name}" if prefix else name
        children_ms = sum(self._fields(child)[1] for child in children)
        self_ms = max(duration_ms - children_ms, 0.0)
        stats = self._paths.get(path)
        if stats is None:
            stats = self._paths[path] = _PathStats(path, self._reservoir_size)
        stats.count += 1
        stats.total_ms += duration_ms
        stats.self_total_ms += self_ms
        stats.self_histogram.observe(self_ms)
        for child in children:
            self._walk(child, path)

    def rows(self) -> List[Dict[str, Any]]:
        """One dict per path, heaviest self time first.

        Keys: ``path``, ``count``, ``total_ms`` (cumulative, includes
        children), ``self_ms`` (sum of self times), ``mean_self_ms``,
        ``p95_self_ms``.
        """
        rows = []
        for path, stats in self._paths.items():
            rows.append(
                {
                    "path": path,
                    "count": stats.count,
                    "total_ms": round(stats.total_ms, 3),
                    "self_ms": round(stats.self_total_ms, 3),
                    "mean_self_ms": round(stats.self_total_ms / stats.count, 3),
                    "p95_self_ms": round(stats.self_histogram.percentile(95), 3),
                }
            )
        rows.sort(key=lambda row: (-row["self_ms"], row["path"]))
        return rows

    def render(self) -> str:
        """Aligned text table (the CLI's ``profile`` output)."""
        rows = self.rows()
        if not rows:
            return "profile: no traces aggregated"
        headers = ["path", "count", "total_ms", "self_ms", "mean_self_ms", "p95_self_ms"]
        cells = [[str(row[h]) for h in headers] for row in rows]
        widths = [
            max(len(headers[i]), *(len(line[i]) for line in cells))
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(headers[i].ljust(widths[i]) for i in range(len(headers))),
            "  ".join("-" * widths[i] for i in range(len(headers))),
        ]
        for line in cells:
            lines.append(
                line[0].ljust(widths[0])
                + "  "
                + "  ".join(line[i].rjust(widths[i]) for i in range(1, len(headers)))
            )
        return "\n".join(lines)
