"""Rolling per-(framework, index, shard) cost/latency/recall statistics.

The :class:`StatsPlane` is the aggregation tier of the cost plane: every
observed :class:`~repro.observability.costs.QueryCostProfile` is folded
into rolling distributions keyed by ``(framework, index, shard)`` —
``shard="-"`` holds the whole-query view, numbered entries hold the
per-shard split appended by the router.  Alongside the distributions the
plane retains the K slowest queries as *exemplars* (full cost profile +
an assigned trace id) so a tail-latency spike in ``GET /stats`` can be
chased down to the concrete queries that caused it.

This is the data substrate the ROADMAP's cost-based planner reads: the
``snapshot()`` payload carries exactly the per-index/per-framework
latency and recall distributions a planner needs to pick a framework,
index, and search budget under a deadline.

The plane only exists when ``cost_accounting`` is enabled; the disabled
path never constructs one.  When a metrics registry is supplied, every
observation is mirrored as labelled Prometheus families
(``cost.latency_ms{framework=...,index=...}``,
``cost.stage_ms{stage=...}``, ``cost.shard_ms{shard=...}``) rendered by
:func:`repro.observability.exporters.render_prometheus`.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.observability.costs import QueryCostProfile
from repro.observability.metrics import Histogram, MetricsRegistry, labelled

__all__ = ["StatsPlane"]

#: Whole-query rows use this shard key; numbered keys hold per-shard rows.
WHOLE_QUERY = "-"


class _CostGroup:
    """Rolling distributions for one (framework, index, shard) key."""

    __slots__ = (
        "framework",
        "index",
        "shard",
        "queries",
        "items",
        "block_reads",
        "block_cache_hits",
        "failures",
        "cache",
        "latency",
        "distance_evaluations",
        "hops",
        "recall",
        "stages",
    )

    def __init__(self, framework: str, index: str, shard: str) -> None:
        self.framework = framework
        self.index = index
        self.shard = shard
        self.queries = 0
        self.items = 0
        self.block_reads = 0
        self.block_cache_hits = 0
        self.failures = 0
        self.cache: Dict[str, int] = {}
        stem = f"stats.{framework}.{index}.{shard}"
        self.latency = Histogram(f"{stem}.latency_ms")
        self.distance_evaluations = Histogram(f"{stem}.distance_evaluations")
        self.hops = Histogram(f"{stem}.hops")
        self.recall = Histogram(f"{stem}.recall_at_k")
        self.stages: Dict[str, Histogram] = {}

    def _stage(self, name: str) -> Histogram:
        histogram = self.stages.get(name)
        if histogram is None:
            histogram = Histogram(
                f"stats.{self.framework}.{self.index}.{self.shard}.stage.{name}"
            )
            self.stages[name] = histogram
        return histogram

    def observe_query(
        self, profile: QueryCostProfile, latency_ms: float
    ) -> None:
        """Fold one whole-query profile into the distributions."""
        self.queries += 1
        self.items += profile.items
        self.block_reads += profile.block_reads
        self.block_cache_hits += profile.cache_hits
        self.failures += profile.shards_failed
        self.cache[profile.cache] = self.cache.get(profile.cache, 0) + 1
        self.latency.observe(latency_ms)
        self.distance_evaluations.observe(float(profile.distance_evaluations))
        self.hops.observe(float(profile.hops))
        for name, ms in profile.stage_ms.items():
            self._stage(name).observe(ms)

    def observe_shard(self, entry: Dict[str, Any]) -> None:
        """Fold one per-shard contribution entry from the router."""
        self.queries += 1
        self.items += int(entry.get("items", 0))
        if not entry.get("ok", True):
            self.failures += 1
        self.latency.observe(float(entry.get("ms", 0.0)))
        self.distance_evaluations.observe(
            float(entry.get("distance_evaluations", 0))
        )
        self.hops.observe(float(entry.get("hops", 0)))

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready row for ``GET /stats`` and the CLI table."""
        body: Dict[str, Any] = {
            "framework": self.framework,
            "index": self.index,
            "shard": self.shard,
            "queries": self.queries,
            "items": self.items,
            "block_reads": self.block_reads,
            "block_cache_hits": self.block_cache_hits,
            "failures": self.failures,
            "cache": {k: v for k, v in sorted(self.cache.items()) if v},
            "latency_ms": self.latency.summary(),
            "distance_evaluations": self.distance_evaluations.summary(),
            "hops": self.hops.summary(),
            "recall_at_k": (
                self.recall.summary() if self.recall.count else None
            ),
            "stages_ms": {
                name: histogram.summary()
                for name, histogram in sorted(self.stages.items())
            },
        }
        return body


def _group_order(key: Tuple[str, str, str]) -> Tuple[str, str, int, int]:
    """Sort whole-query rows before their per-shard splits."""
    framework, index, shard = key
    if shard == WHOLE_QUERY:
        return (framework, index, 0, -1)
    return (framework, index, 1, int(shard) if shard.isdigit() else 0)


class StatsPlane:
    """Aggregates cost profiles into rolling stats with tail exemplars.

    Args:
        metrics: Optional registry that receives labelled mirror
            families for Prometheus exposition.
        exemplars: How many of the slowest queries to retain with their
            full cost profiles (the K in "K slowest traces").
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        exemplars: int = 8,
    ) -> None:
        if exemplars < 0:
            raise ValueError("exemplars must be >= 0")
        self.metrics = metrics
        self.exemplars_retained = exemplars
        self._lock = threading.Lock()
        self._groups: Dict[Tuple[str, str, str], _CostGroup] = {}
        self._exemplars: List[Dict[str, Any]] = []
        self._sequence = 0

    def _group(self, framework: str, index: str, shard: str) -> _CostGroup:
        key = (framework, index, shard)
        group = self._groups.get(key)
        if group is None:
            group = _CostGroup(framework, index, shard)
            self._groups[key] = group
        return group

    def observe(self, profile: QueryCostProfile, latency_ms: float) -> int:
        """Fold one query's profile in; returns its assigned trace id."""
        with self._lock:
            trace_id = self._sequence
            self._sequence += 1
            profile.trace_id = trace_id
            self._group(
                profile.framework, profile.index, WHOLE_QUERY
            ).observe_query(profile, latency_ms)
            for entry in profile.shards:
                self._group(
                    profile.framework, profile.index, str(entry.get("shard"))
                ).observe_shard(entry)
            self._note_exemplar(profile, latency_ms, trace_id)
        self._mirror_query(profile, latency_ms)
        return trace_id

    def observe_batch(
        self,
        profiles: Sequence[Optional[QueryCostProfile]],
        batch_profile: Optional[QueryCostProfile],
        batch_ms: float,
    ) -> None:
        """Fold a batch in: per-query profiles plus the batch-scope one.

        Per-query latency inside a batch is not individually measurable
        (the batch amortises one scatter), so each query is attributed an
        equal share of the batch wall time.  The batch-scope profile
        contributes its per-shard split and stage times without bumping
        query counts — those queries were already counted individually.
        """
        live = [profile for profile in profiles if profile is not None]
        share_ms = batch_ms / len(live) if live else 0.0
        for profile in live:
            self.observe(profile, share_ms)
        if batch_profile is None:
            return
        with self._lock:
            for entry in batch_profile.shards:
                self._group(
                    batch_profile.framework,
                    batch_profile.index,
                    str(entry.get("shard")),
                ).observe_shard(entry)
            group = self._group(
                batch_profile.framework, batch_profile.index, WHOLE_QUERY
            )
            for name, ms in batch_profile.stage_ms.items():
                group._stage(name).observe(ms)

    def observe_recall(
        self, framework: str, index: str, recall: float
    ) -> None:
        """Record a sampled recall@k score for the whole-query group."""
        with self._lock:
            self._group(framework, index, WHOLE_QUERY).recall.observe(recall)

    def _note_exemplar(
        self, profile: QueryCostProfile, latency_ms: float, trace_id: int
    ) -> None:
        if self.exemplars_retained == 0:
            return
        self._exemplars.append(
            {
                "trace_id": trace_id,
                "latency_ms": round(latency_ms, 3),
                "framework": profile.framework,
                "index": profile.index,
                "cost": profile.to_dict(),
            }
        )
        self._exemplars.sort(
            key=lambda entry: (-entry["latency_ms"], entry["trace_id"])
        )
        del self._exemplars[self.exemplars_retained :]

    def _mirror_query(
        self, profile: QueryCostProfile, latency_ms: float
    ) -> None:
        """Mirror one observation as labelled Prometheus families."""
        if self.metrics is None:
            return
        labels = {"framework": profile.framework, "index": profile.index}
        self.metrics.inc(labelled("cost.queries", **labels))
        self.metrics.observe(labelled("cost.latency_ms", **labels), latency_ms)
        self.metrics.observe(
            labelled("cost.distance_evaluations", **labels),
            float(profile.distance_evaluations),
        )
        for name, ms in profile.stage_ms.items():
            self.metrics.observe(
                labelled("cost.stage_ms", stage=name, **labels), ms
            )
        for entry in profile.shards:
            shard_labels = dict(labels, shard=entry.get("shard"))
            self.metrics.observe(
                labelled("cost.shard_ms", **shard_labels),
                float(entry.get("ms", 0.0)),
            )
            if not entry.get("ok", True):
                self.metrics.inc(
                    labelled("cost.shard_failures", **shard_labels)
                )

    def snapshot(self) -> Dict[str, Any]:
        """Full JSON-ready view for ``GET /stats`` / the status panel."""
        with self._lock:
            groups = [
                self._groups[key].snapshot()
                for key in sorted(self._groups, key=_group_order)
            ]
            exemplars = [dict(entry) for entry in self._exemplars]
            observed = self._sequence
        return {
            "queries": observed,
            "exemplars_retained": self.exemplars_retained,
            "exemplars": exemplars,
            "groups": groups,
        }
