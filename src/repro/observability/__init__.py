"""End-to-end query observability: tracing, metrics, and the durable half.

In-process (PR 1): a :class:`Tracer` captures one hierarchical span tree
per query (query → encode → weight-inference → index-search →
fusion/rerank → generation), and a :class:`MetricsRegistry` aggregates
counters and p50/p95/p99 latency histograms across queries.  Instrumented
call sites use :func:`trace_span`, which is a no-op unless a tracer is
active.

Durable (PR 2): a :class:`FlightRecorder` persists finished traces plus
request context to a rotating JSONL sink that
:mod:`repro.observability.replay` can deterministically re-execute;
:mod:`~repro.observability.exporters` renders the registry as Prometheus
text exposition and span trees as collapsed stacks; a
:class:`ProfileAggregator` folds many traces into a per-path self-time
table; and :class:`SLOMonitor` / :class:`QualityMonitor` grade live
latency, error-rate, and retrieval quality against configured targets.

(:mod:`repro.observability.replay` is imported lazily — it depends on
:mod:`repro.core`, which imports this package.)
"""

from repro.observability.exporters import (
    collapse_spans,
    prometheus_name,
    render_prometheus,
)
from repro.observability.metrics import Counter, Histogram, MetricsRegistry
from repro.observability.monitoring import (
    STATE_BREACH,
    STATE_DEGRADED,
    STATE_OK,
    QualityMonitor,
    SLOMonitor,
    SLOTargets,
)
from repro.observability.profiling import ProfileAggregator
from repro.observability.recorder import FlightRecorder, read_recording
from repro.observability.tracing import (
    NOOP_SPAN,
    NOOP_TRACER,
    NoopTracer,
    Span,
    Tracer,
    trace_span,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "NoopTracer",
    "ProfileAggregator",
    "QualityMonitor",
    "SLOMonitor",
    "SLOTargets",
    "STATE_BREACH",
    "STATE_DEGRADED",
    "STATE_OK",
    "Span",
    "Tracer",
    "collapse_spans",
    "prometheus_name",
    "read_recording",
    "render_prometheus",
    "trace_span",
]
