"""End-to-end query observability: tracing spans and aggregate metrics.

Mirrors the demo's status-monitoring panel at query time: a
:class:`Tracer` captures one hierarchical span tree per query (query →
encode → weight-inference → index-search → fusion/rerank → generation),
and a :class:`MetricsRegistry` aggregates counters and p50/p95/p99 latency
histograms across queries.  Instrumented call sites use
:func:`trace_span`, which is a no-op unless a tracer is active.
"""

from repro.observability.metrics import Counter, Histogram, MetricsRegistry
from repro.observability.tracing import (
    NOOP_SPAN,
    NOOP_TRACER,
    NoopTracer,
    Span,
    Tracer,
    trace_span,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "NoopTracer",
    "Span",
    "Tracer",
    "trace_span",
]
