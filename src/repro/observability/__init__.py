"""End-to-end query observability: tracing, metrics, and the durable half.

In-process (PR 1): a :class:`Tracer` captures one hierarchical span tree
per query (query → encode → weight-inference → index-search →
fusion/rerank → generation), and a :class:`MetricsRegistry` aggregates
counters and p50/p95/p99 latency histograms across queries.  Instrumented
call sites use :func:`trace_span`, which is a no-op unless a tracer is
active.

Durable (PR 2): a :class:`FlightRecorder` persists finished traces plus
request context to a rotating JSONL sink that
:mod:`repro.observability.replay` can deterministically re-execute;
:mod:`~repro.observability.exporters` renders the registry as Prometheus
text exposition and span trees as collapsed stacks; a
:class:`ProfileAggregator` folds many traces into a per-path self-time
table; and :class:`SLOMonitor` / :class:`QualityMonitor` grade live
latency, error-rate, and retrieval quality against configured targets.

Cost plane (PR 7): a :class:`QueryCostProfile` accounts per-query kernel
work (distance evaluations, hops, block reads) and per-stage wall time
through the ambient :func:`cost_stage` / :func:`cost_context` machinery;
a :class:`StatsPlane` aggregates profiles into rolling per-(framework,
index, shard) distributions with tail-latency exemplars for
``GET /stats``; and :func:`trace_branch` carries trace context across
the shard router's scatter threads so one sharded query yields a single
trace with per-shard child spans.

(:mod:`repro.observability.replay` is imported lazily — it depends on
:mod:`repro.core`, which imports this package.)
"""

from repro.observability.costs import (
    QueryCostProfile,
    active_cost,
    cost_context,
    cost_stage,
)
from repro.observability.exporters import (
    collapse_spans,
    prometheus_name,
    render_prometheus,
    split_labels,
)
from repro.observability.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    labelled,
)
from repro.observability.monitoring import (
    STATE_BREACH,
    STATE_DEGRADED,
    STATE_OK,
    QualityMonitor,
    SLOMonitor,
    SLOTargets,
)
from repro.observability.profiling import ProfileAggregator
from repro.observability.recorder import FlightRecorder, read_recording
from repro.observability.stats import StatsPlane
from repro.observability.tracing import (
    NOOP_SPAN,
    NOOP_TRACER,
    NoopTracer,
    Span,
    TraceBranch,
    Tracer,
    trace_branch,
    trace_span,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "NoopTracer",
    "ProfileAggregator",
    "QualityMonitor",
    "QueryCostProfile",
    "SLOMonitor",
    "SLOTargets",
    "STATE_BREACH",
    "STATE_DEGRADED",
    "STATE_OK",
    "Span",
    "StatsPlane",
    "TraceBranch",
    "Tracer",
    "active_cost",
    "collapse_spans",
    "cost_context",
    "cost_stage",
    "labelled",
    "prometheus_name",
    "read_recording",
    "render_prometheus",
    "split_labels",
    "trace_branch",
    "trace_span",
]
