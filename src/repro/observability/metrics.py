"""Counters and streaming latency histograms.

The :class:`MetricsRegistry` aggregates across queries what a single trace
shows for one query: monotonically increasing counters plus bounded-memory
:class:`Histogram` sketches reporting p50/p95/p99.  Histograms use
reservoir sampling (Vitter's Algorithm R) with a deterministically seeded
RNG — memory stays fixed no matter how many observations stream in, and
identical observation sequences always produce identical summaries, so
tests and benchmark artefacts are reproducible.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.utils import derive_rng


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Histogram:
    """Streaming distribution sketch with percentile queries.

    Keeps at most ``reservoir_size`` observations via reservoir sampling;
    below that watermark every observation is retained, so percentiles are
    exact for small samples (the tests pin them against numpy).

    Args:
        name: Registry key (also seeds the replacement RNG, making two
            histograms with the same name and inputs identical).
        reservoir_size: Maximum retained observations.
    """

    def __init__(self, name: str, reservoir_size: int = 512) -> None:
        if reservoir_size < 1:
            raise ValueError(f"reservoir_size must be >= 1, got {reservoir_size}")
        self.name = name
        self.reservoir_size = reservoir_size
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._reservoir: List[float] = []
        self._rng = derive_rng(0, "histogram", name)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(value)
            return
        # Algorithm R: keep each of the n observations with probability
        # reservoir_size / n by replacing a uniformly random slot.
        slot = int(self._rng.integers(0, self.count))
        if slot < self.reservoir_size:
            self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) over the retained sample."""
        if not self._reservoir:
            return 0.0
        return float(np.percentile(np.asarray(self._reservoir), q))

    def summary(self) -> Dict[str, float]:
        """count / mean / min / max / p50 / p95 / p99, all rounded."""
        return {
            "count": self.count,
            "mean": round(self.mean, 3),
            "min": round(self.min or 0.0, 3),
            "max": round(self.max or 0.0, 3),
            "p50": round(self.percentile(50), 3),
            "p95": round(self.percentile(95), 3),
            "p99": round(self.percentile(99), 3),
        }


class MetricsRegistry:
    """Named counters and histograms, created on first use.

    One registry lives on each coordinator; the tracer feeds it per-stage
    latencies and the API layer feeds it per-verb request timings, so
    ``GET /metrics`` renders one coherent snapshot.
    """

    def __init__(self, reservoir_size: int = 512) -> None:
        self._reservoir_size = reservoir_size
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created empty on first access)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created empty on first access)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(
                name, reservoir_size=self._reservoir_size
            )
        return histogram

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment the counter called ``name``."""
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the histogram called ``name``."""
        self.histogram(name).observe(value)

    def counter_value(self, name: str) -> float:
        """Current value of ``name`` (0.0 if never incremented)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0.0

    def histogram_summaries(self, prefix: str = "") -> Dict[str, Dict[str, float]]:
        """Summaries of histograms whose name starts with ``prefix``.

        The prefix is stripped from the returned keys, so
        ``histogram_summaries("stage_ms.")`` maps stage names directly to
        their latency summaries.
        """
        return {
            name[len(prefix):]: histogram.summary()
            for name, histogram in sorted(self._histograms.items())
            if name.startswith(prefix)
        }

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view: all counters plus all histogram summaries."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self._histograms.items())
            },
        }
