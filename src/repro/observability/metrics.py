"""Counters and streaming latency histograms.

The :class:`MetricsRegistry` aggregates across queries what a single trace
shows for one query: monotonically increasing counters plus bounded-memory
:class:`Histogram` sketches reporting p50/p95/p99.  Histograms use
reservoir sampling (Vitter's Algorithm R) with a deterministically seeded
RNG — memory stays fixed no matter how many observations stream in, and
identical observation sequences always produce identical summaries, so
tests and benchmark artefacts are reproducible.

Thread safety
-------------
The server no longer guarantees a single request thread, so every *write*
path (``Counter.inc``, ``Histogram.observe``, instrument creation) takes
one :class:`threading.Lock` shared across the whole registry — a single
lock keeps the design simple and the write critical sections are tiny
(a float add, or one reservoir slot swap).  *Read* paths (``value``,
``summary``, ``snapshot``) deliberately take no lock: every read is either
one atomic attribute load or a copy of a small list under the GIL, so the
worst case is a summary computed from a snapshot that is one observation
stale — acceptable for monitoring output, and it keeps the serving hot
path free of reader/writer contention.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

import numpy as np

from repro.utils import derive_rng


def labelled(name: str, **labels: Any) -> str:
    """Encode a labelled registry key: ``name{k=v,...}``, labels sorted.

    The registry itself is label-agnostic — a labelled instrument is just
    a key with a ``{k=v,...}`` suffix — but the Prometheus exporter
    recognises the encoding and renders every key sharing a base name as
    one metric family with proper label sets.  Values are stringified;
    ``,``/``=``/``}`` inside them would corrupt the encoding and are
    rejected.
    """
    if not labels:
        return name
    parts = []
    for key in sorted(labels):
        value = str(labels[key])
        if any(ch in value for ch in ',=}{'):
            raise ValueError(f"label value {value!r} for {key!r} "
                             "may not contain '{', '}', ',' or '='")
        parts.append(f"{key}={value}")
    return f"{name}{{{','.join(parts)}}}"


class Counter:
    """A monotonically increasing counter.

    Args:
        name: Registry key.
        lock: Lock guarding increments; the owning registry passes its own
            so one lock covers every instrument it created.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: "threading.Lock | None" = None) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock if lock is not None else threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self.value += amount


class Histogram:
    """Streaming distribution sketch with percentile queries.

    Keeps at most ``reservoir_size`` observations via reservoir sampling;
    below that watermark every observation is retained, so percentiles are
    exact for small samples (the tests pin them against numpy).

    Args:
        name: Registry key (also seeds the replacement RNG, making two
            histograms with the same name and inputs identical).
        reservoir_size: Maximum retained observations.
        lock: Lock guarding ``observe``; shared with the owning registry.
    """

    def __init__(
        self,
        name: str,
        reservoir_size: int = 512,
        lock: "threading.Lock | None" = None,
    ) -> None:
        if reservoir_size < 1:
            raise ValueError(f"reservoir_size must be >= 1, got {reservoir_size}")
        self.name = name
        self.reservoir_size = reservoir_size
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._reservoir: List[float] = []
        self._rng = derive_rng(0, "histogram", name)
        self._lock = lock if lock is not None else threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            if len(self._reservoir) < self.reservoir_size:
                self._reservoir.append(value)
                return
            # Algorithm R: keep each of the n observations with probability
            # reservoir_size / n by replacing a uniformly random slot.
            slot = int(self._rng.integers(0, self.count))
            if slot < self.reservoir_size:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) over the retained sample."""
        # list() snapshots the reservoir atomically under the GIL; a
        # concurrent observe() costs at most one-observation staleness.
        sample = list(self._reservoir)
        if not sample:
            return 0.0
        return float(np.percentile(np.asarray(sample), q))

    def summary(self) -> Dict[str, float]:
        """count / mean / min / max / p50 / p95 / p99, all rounded."""
        return {
            "count": self.count,
            "mean": round(self.mean, 3),
            "min": round(self.min or 0.0, 3),
            "max": round(self.max or 0.0, 3),
            "p50": round(self.percentile(50), 3),
            "p95": round(self.percentile(95), 3),
            "p99": round(self.percentile(99), 3),
        }


class MetricsRegistry:
    """Named counters and histograms, created on first use.

    One registry lives on each coordinator; the tracer feeds it per-stage
    latencies and the API layer feeds it per-verb request timings, so
    ``GET /metrics`` renders one coherent snapshot.  All writes serialise
    on one registry-wide lock (see the module docstring for the
    reader/writer contract).
    """

    def __init__(self, reservoir_size: int = 512) -> None:
        self._reservoir_size = reservoir_size
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created empty on first access)."""
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.get(name)
                if counter is None:
                    counter = self._counters[name] = Counter(name, lock=self._lock)
        return counter

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created empty on first access)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram(
                        name, reservoir_size=self._reservoir_size, lock=self._lock
                    )
        return histogram

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment the counter called ``name``."""
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the histogram called ``name``."""
        self.histogram(name).observe(value)

    def counter_value(self, name: str) -> float:
        """Current value of ``name`` (0.0 if never incremented)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0.0

    def histogram_summaries(self, prefix: str = "") -> Dict[str, Dict[str, float]]:
        """Summaries of histograms whose name starts with ``prefix``.

        The prefix is stripped from the returned keys, so
        ``histogram_summaries("stage_ms.")`` maps stage names directly to
        their latency summaries.
        """
        return {
            name[len(prefix):]: histogram.summary()
            for name, histogram in sorted(self._histograms.items())
            if name.startswith(prefix)
        }

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view: all counters plus all histogram summaries."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self._histograms.items())
            },
        }
