"""Deterministic re-execution of flight-recorder entries.

A recording carries the full system configuration plus every request's
context, and the whole stack is seeded (datasets, encoders, learned
weights, graph construction), so rebuilding the system from the recorded
config and re-issuing a recorded query must reproduce the *same retrieved
ids* and the *same span-tree shape*.  :func:`replay_recording` does
exactly that and reports the diff — a regression harness for the serving
path: record a flight in production, replay it against a new build, and
any behavioural drift surfaces as a dirty report.

Span trees are compared by *structure* (the depth-first sequence of span
paths), not by timings or attributes: durations always differ across
runs, and attributes like ``cache=hit`` legitimately differ between a
warm recording and a cold replay.

Imports of :mod:`repro.core` happen inside functions — the coordinator
itself imports :mod:`repro.observability`, and keeping this module leaf
avoids the cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.errors import MQAError
from repro.observability.recorder import read_recording


class ReplayError(MQAError):
    """A recording that cannot be replayed."""


def span_paths(tree: Optional[Mapping[str, Any]]) -> List[str]:
    """Depth-first semicolon-joined paths of a span-tree dict.

    Two trees have equal path lists iff they have identical shape and
    names, which is the replay contract.
    """
    if tree is None:
        return []
    paths: List[str] = []

    def walk(node: Mapping[str, Any], prefix: str) -> None:
        path = f"{prefix};{node['name']}" if prefix else str(node["name"])
        paths.append(path)
        for child in node.get("children", ()):
            walk(child, path)

    walk(tree, "")
    return paths


@dataclass
class ReplayReport:
    """The diff between one recorded query and its re-execution.

    Attributes:
        trace_id: The recording's trace id.
        recorded_ids / replayed_ids: Retrieved object ids, best first.
        recorded_paths / replayed_paths: Depth-first span paths.
        skipped: Reason the entry could not be re-executed (e.g. a
            non-serialisable result filter was in force), else None.
    """

    trace_id: int
    recorded_ids: List[int] = field(default_factory=list)
    replayed_ids: List[int] = field(default_factory=list)
    recorded_paths: List[str] = field(default_factory=list)
    replayed_paths: List[str] = field(default_factory=list)
    skipped: Optional[str] = None

    @property
    def ids_match(self) -> bool:
        """True when replay retrieved the recorded ids in order."""
        return self.recorded_ids == self.replayed_ids

    @property
    def spans_match(self) -> bool:
        """True when the replayed span tree has the recorded shape."""
        return self.recorded_paths == self.replayed_paths

    @property
    def clean(self) -> bool:
        """True when nothing drifted (skipped entries are not clean)."""
        return self.skipped is None and self.ids_match and self.spans_match

    def render(self) -> str:
        """Multi-line human-readable diff."""
        if self.skipped is not None:
            return f"trace {self.trace_id}: SKIPPED ({self.skipped})"
        lines = [f"trace {self.trace_id}: {'clean' if self.clean else 'DRIFT'}"]
        if self.ids_match:
            lines.append(f"  result ids: identical ({self.recorded_ids})")
        else:
            lines.append(f"  result ids: recorded {self.recorded_ids}")
            lines.append(f"              replayed {self.replayed_ids}")
        if self.spans_match:
            lines.append(f"  span tree:  identical ({len(self.recorded_paths)} spans)")
        else:
            missing = [p for p in self.recorded_paths if p not in self.replayed_paths]
            extra = [p for p in self.replayed_paths if p not in self.recorded_paths]
            lines.append("  span tree:  shape drift")
            if missing:
                lines.append(f"              missing: {missing}")
            if extra:
                lines.append(f"              extra:   {extra}")
        return "\n".join(lines)


#: Config fields that shape the scatter topology.  A replay served by a
#: system with a different topology produces span-tree "drift" that is
#: really a deployment mismatch, so it is rejected up front with a
#: field-by-field diff instead of reported as a regression.
TOPOLOGY_FIELDS = ("shards", "replicas", "partitioner")


def validate_topology(header: "Mapping[str, Any] | None", coordinator) -> None:
    """Reject replaying onto a coordinator with a mismatched topology.

    Only meaningful when the caller supplies its own coordinator (a live
    server, a test fixture); a coordinator rebuilt from the header
    matches by construction.  Headerless recordings cannot be checked
    and pass through.
    """
    config_data = dict((header or {}).get("config") or {})
    if not config_data:
        return
    mismatches = []
    for name in TOPOLOGY_FIELDS:
        recorded = config_data.get(name)
        live = getattr(coordinator.config, name, None)
        if recorded != live:
            mismatches.append(
                f"{name}: recorded {recorded!r} != live {live!r}"
            )
    if mismatches:
        raise ReplayError(
            "sharding topology mismatch between the recording and the "
            "live system — rebuild with the recorded topology or replay "
            "without an explicit coordinator:\n  " + "\n  ".join(mismatches)
        )


def build_replay_coordinator(header: Mapping[str, Any]):
    """Rebuild the recorded system: same config, tracing on, recorder off.

    The recorder is disabled (a replay must not append to the flight it is
    replaying) and monitoring is disabled (scoring would skew nothing but
    costs time); everything that affects retrieval is kept verbatim.
    """
    from repro.core.config import MQAConfig
    from repro.core.coordinator import Coordinator

    config_data = dict(header.get("config") or {})
    if not config_data:
        raise ReplayError("recording header carries no configuration")
    config_data.update(tracing=True, recorder_path=None, monitoring=False)
    config = MQAConfig.from_dict(config_data)
    return Coordinator(config).setup()


def _rebuild_query(request: Mapping[str, Any]):
    from repro.data.modality import Modality
    from repro.data.objects import RawQuery

    content: Dict[Any, Any] = {Modality.TEXT: str(request.get("text", ""))}
    image = request.get("image")
    if image is not None:
        content[Modality.IMAGE] = np.asarray(image, dtype=np.float64)
    return RawQuery(content=content, metadata=dict(request.get("metadata") or {}))


def replay_entry(coordinator, entry: Mapping[str, Any]) -> ReplayReport:
    """Re-execute one recorded query and diff it against the recording."""
    from repro.llm.prompts import DialogueTurn

    request = dict(entry.get("request") or {})
    report = ReplayReport(
        trace_id=int(entry.get("trace_id", -1)),
        recorded_ids=[int(i) for i in entry.get("result_ids", [])],
        recorded_paths=span_paths(entry.get("span_tree")),
    )
    if request.get("filtered"):
        report.skipped = "recorded with a non-serialisable result filter"
        return report
    history = [
        DialogueTurn(
            user_text=str(turn.get("user", "")),
            system_text=str(turn.get("system", "")),
        )
        for turn in request.get("history", ())
    ]
    answer = coordinator.handle_query(
        _rebuild_query(request),
        history=history,
        preferred_ids=[int(i) for i in request.get("preferred_ids", ())],
        round_index=int(request.get("round_index", 0)),
        k=request.get("k"),
        weights=request.get("weights"),
        exclude_ids=[int(i) for i in request.get("exclude_ids", ())],
    )
    report.replayed_ids = list(answer.ids)
    last = coordinator.tracer.last_trace
    report.replayed_paths = span_paths(last.to_dict() if last is not None else None)
    return report


def replay_recording(
    path: "str | Path",
    trace_id: Optional[int] = None,
    coordinator=None,
) -> List[ReplayReport]:
    """Replay a recording file (or one entry of it) and return the diffs.

    Args:
        path: The JSONL recording.
        trace_id: Replay only this entry when given.
        coordinator: Re-use an already built system (tests, the live
            server); rebuilt from the recording's header otherwise.  An
            explicit coordinator must match the recording's sharding
            topology (:func:`validate_topology` diffs and rejects
            mismatches before any entry runs).
    """
    header, entries = read_recording(path)
    if trace_id is not None:
        entries = [e for e in entries if int(e.get("trace_id", -1)) == trace_id]
        if not entries:
            raise ReplayError(f"recording has no entry with trace id {trace_id}")
    if not entries:
        raise ReplayError(f"recording {path} holds no query entries")
    if coordinator is None:
        if header is None:
            raise ReplayError(
                f"recording {path} has no header; pass an explicit coordinator"
            )
        coordinator = build_replay_coordinator(header)
    else:
        validate_topology(header, coordinator)
    return [replay_entry(coordinator, entry) for entry in entries]
