"""Per-query cost accounting: who spent what, where, and on which shard.

The cost plane answers the question the tracer alone cannot: *why* was
this query slow?  A :class:`QueryCostProfile` is created per query by
``QueryExecution`` (and per batch by the coordinator), made ambient via
a :mod:`contextvars` variable while the framework runs, and filled in by
three independent producers:

* the executor copies the kernel counters (distance evaluations, graph
  hops, Starling block reads and block-cache hits) off the response's
  ``SearchStats`` and labels the query-cache disposition;
* the retrieval frameworks time their pipeline stages — ``encode``,
  ``search``, ``fuse`` — through :func:`cost_stage`;
* the shard router appends one entry per shard with the serving replica,
  per-shard timing, and per-shard counters.

The machinery mirrors the tracer's zero-overhead discipline exactly:
when no profile is ambient (the default — ``cost_accounting`` is off),
:func:`active_cost` and :func:`cost_stage` cost a single context-variable
read and allocate nothing.

Profiles ride on ``RetrievalResponse.cost`` and ``Answer.cost``, are
aggregated by :class:`repro.observability.stats.StatsPlane`, and surface
through ``GET /stats``, the answer/search payloads, and ``python -m
repro stats``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "QueryCostProfile",
    "active_cost",
    "cost_context",
    "cost_stage",
]


@dataclass
class QueryCostProfile:
    """Cost ledger for one query (or one batch of queries).

    Attributes:
        framework: Retrieval framework that served the query.
        index: Configured index type (``flat``/``hnsw``/``starling``...).
        shards_total: Shard count behind the framework (0 = unsharded).
        batch: Number of queries covered; 0 for a single-query profile.
        cache: Query-cache disposition — ``"off"`` (no cache), ``"bypass"``
            (filters force a live search), ``"miss"``, ``"hit"``, or
            ``"semantic"`` (a near-duplicate's response served by the
            semantic cache).  On a hit — exact or semantic — the served
            response did no kernel work, so the counters below stay
            zero; the original search's cost was accounted when it first
            ran.
        distance_evaluations: Distance-kernel evaluations performed.
        hops: Graph hops (HNSW/beam) walked.
        block_reads: Starling disk blocks fetched.
        cache_hits: Starling block-*cache* hits (distinct from the
            query-level ``cache`` label above).
        items: Results returned.
        shards_failed: Shards that degraded out of the scatter.
        stage_ms: Wall time per pipeline stage (``encode``, ``search``,
            ``fuse``, ``retrieve``, ``merge``, ``generate``).
        shards: Per-shard contribution entries appended by the router:
            ``{"shard", "replica", "ok", "ms", "items",
            "distance_evaluations", "hops"}``.
        trace_id: Sequence id assigned by the stats plane on observation;
            exemplar traces in ``GET /stats`` reference it.
    """

    framework: str
    index: str = ""
    shards_total: int = 0
    batch: int = 0
    cache: str = "off"
    distance_evaluations: int = 0
    hops: int = 0
    block_reads: int = 0
    cache_hits: int = 0
    items: int = 0
    shards_failed: int = 0
    stage_ms: Dict[str, float] = field(default_factory=dict)
    shards: List[Dict[str, Any]] = field(default_factory=list)
    trace_id: Optional[int] = None

    def add_search_stats(self, stats: Any) -> None:
        """Fold a ``SearchStats``-shaped object into the kernel counters."""
        if stats is None:
            return
        self.distance_evaluations += int(
            getattr(stats, "distance_evaluations", 0)
        )
        self.hops += int(getattr(stats, "hops", 0))
        self.block_reads += int(getattr(stats, "block_reads", 0))
        self.cache_hits += int(getattr(stats, "cache_hits", 0))

    def add_stage(self, name: str, ms: float) -> None:
        """Accumulate ``ms`` of wall time under stage ``name``."""
        self.stage_ms[name] = self.stage_ms.get(name, 0.0) + float(ms)

    def add_shard(self, **entry: Any) -> None:
        """Append one shard's contribution (called by the router)."""
        self.shards.append(entry)

    def signature(self) -> Dict[str, Any]:
        """Deterministic fields only — identical across execution paths.

        Wall-clock stages and per-shard detail legitimately differ
        between the serial and batched paths (a batch amortises one
        scatter across all queries), so the parity contract covers the
        work counters, the cache disposition, and the result count.
        """
        return {
            "framework": self.framework,
            "index": self.index,
            "shards_total": self.shards_total,
            "cache": self.cache,
            "items": self.items,
            "distance_evaluations": self.distance_evaluations,
            "hops": self.hops,
            "block_reads": self.block_reads,
            "cache_hits": self.cache_hits,
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready export for payloads, exemplars, and the CLI."""
        body: Dict[str, Any] = {
            "framework": self.framework,
            "index": self.index,
            "shards_total": self.shards_total,
            "cache": self.cache,
            "distance_evaluations": self.distance_evaluations,
            "hops": self.hops,
            "block_reads": self.block_reads,
            "cache_hits": self.cache_hits,
            "items": self.items,
            "stage_ms": {
                name: round(ms, 3) for name, ms in sorted(self.stage_ms.items())
            },
        }
        if self.batch:
            body["batch"] = self.batch
        if self.shards_failed:
            body["shards_failed"] = self.shards_failed
        if self.shards:
            body["shards"] = [dict(entry) for entry in self.shards]
        if self.trace_id is not None:
            body["trace_id"] = self.trace_id
        return body


#: Ambient profile for the query being executed on this thread.  Like the
#: tracer's ``_ACTIVE``, pool threads deliberately do not inherit it —
#: the shard router accounts scatter work explicitly from the
#: coordinating thread so pooled and inline scatter account identically.
_ACTIVE_COST: ContextVar[Optional[QueryCostProfile]] = ContextVar(
    "repro_active_cost", default=None
)


def active_cost() -> Optional[QueryCostProfile]:
    """The ambient profile, or None when cost accounting is off."""
    return _ACTIVE_COST.get()


@contextmanager
def cost_context(
    profile: Optional[QueryCostProfile],
) -> Iterator[Optional[QueryCostProfile]]:
    """Make ``profile`` ambient for the block (None suppresses accounting).

    The router suppresses the ambient profile around inline shard calls
    so the inner frameworks' stage timers do not double-report work the
    router already attributes per shard — keeping inline and pooled
    scatter bit-identical in what they account.
    """
    token = _ACTIVE_COST.set(profile)
    try:
        yield profile
    finally:
        _ACTIVE_COST.reset(token)


class _StageTimer:
    """Times a block and accumulates it into the ambient profile."""

    __slots__ = ("_profile", "_name", "_start")

    def __init__(self, profile: QueryCostProfile, name: str) -> None:
        self._profile = profile
        self._name = name

    def __enter__(self) -> "_StageTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        elapsed_ms = (time.perf_counter() - self._start) * 1000.0
        self._profile.add_stage(self._name, elapsed_ms)
        return False


class _NoopStage:
    """Shared do-nothing stage for the disabled path (no allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopStage":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NOOP_STAGE = _NoopStage()


def cost_stage(name: str) -> Any:
    """Context manager timing one pipeline stage into the ambient profile.

    When no profile is ambient this returns a shared no-op — the entire
    disabled cost is one context-variable read, same contract as
    ``trace_span``.
    """
    profile = _ACTIVE_COST.get()
    if profile is None:
        return _NOOP_STAGE
    return _StageTimer(profile, name)
