"""Hierarchical query tracing.

The paper's demo ships a status-monitoring panel; production serving needs
the query-time analogue: per-stage attribution of where each millisecond
went (retrieval vs. fusion vs. generation).  A :class:`Tracer` produces a
tree of :class:`Span` objects per query — query → encode →
weight-inference → per-stream index search → fusion/rerank → generation —
each carrying wall-clock timings plus structured attributes (distance
evaluations, hops, beam budget, cache hit/miss, k).

Instrumented code never receives a tracer argument.  Call sites open spans
through the module-level :func:`trace_span`, which consults an ambient
context variable: when no trace is active (the default), it returns a
shared no-op span and costs one context-variable read — zero overhead in
the serving hot path.  A :class:`Tracer` activates itself for the duration
of one :meth:`Tracer.trace` block and keeps the last N finished traces for
the ``/trace`` endpoint, the status panel, and the CLI ``--trace`` flag.
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional


@dataclass
class Span:
    """One timed stage of a query, possibly with child stages.

    Attributes:
        name: Stage name ("query", "encode", "index-search", ...).
        attributes: Structured facts about the stage (modality, hops,
            distance_evaluations, cache, k, ...).
        children: Sub-stages, in execution order.
        duration: Wall-clock seconds (0 until the span closes).
    """

    name: str
    attributes: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    duration: float = 0.0
    _start: float = 0.0

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes to the span; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    @property
    def duration_ms(self) -> float:
        """Wall-clock milliseconds."""
        return self.duration * 1000.0

    @property
    def self_ms(self) -> float:
        """Milliseconds spent in this span excluding its children.

        Clamped at zero: clock granularity can make the children sum to
        slightly more than the parent.
        """
        children_ms = sum(child.duration_ms for child in self.children)
        return max(self.duration_ms - children_ms, 0.0)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span called ``name`` in the subtree (depth first)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List["Span"]:
        """Every span called ``name`` in the subtree (depth first)."""
        return [span for span in self.walk() if span.name == name]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable view of the subtree."""
        return {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 3),
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, indent: int = 0) -> str:
        """Multi-line text tree (used by the status panel and the CLI)."""
        attrs = ", ".join(f"{k}={v}" for k, v in self.attributes.items())
        line = (
            "  " * indent
            + f"{self.name} [{self.duration_ms:.2f} ms]"
            + (f" ({attrs})" if attrs else "")
        )
        lines = [line]
        lines.extend(child.render(indent + 1) for child in self.children)
        return "\n".join(lines)


class _NoopSpan:
    """Shared do-nothing span returned when no trace is active."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class _TraceState:
    """The ambient (tracer, current-span) pair while a trace is open."""

    __slots__ = ("tracer", "current")

    def __init__(self, tracer: "Tracer", current: Span) -> None:
        self.tracer = tracer
        self.current = current


_ACTIVE: "contextvars.ContextVar[Optional[_TraceState]]" = contextvars.ContextVar(
    "repro-active-trace", default=None
)


class _SpanContext:
    """Context manager opening a child span under the active trace."""

    __slots__ = ("_state", "_span", "_parent")

    def __init__(self, state: _TraceState, name: str, attributes: Dict[str, Any]) -> None:
        self._state = state
        self._span = Span(name=name, attributes=attributes)
        self._parent = state.current

    def __enter__(self) -> Span:
        self._parent.children.append(self._span)
        self._state.current = self._span
        self._span._start = self._state.tracer._clock()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.duration = max(self._state.tracer._clock() - span._start, 0.0)
        if exc_type is not None:
            span.attributes.setdefault("error", exc_type.__name__)
        self._state.current = self._parent
        return False


def trace_span(name: str, **attributes: Any):
    """Open a child span under the active trace (no-op when none is).

    The single instrumentation entry point: call sites do::

        with trace_span("index-search", modality="text") as span:
            ...
            span.set(hops=stats.hops)

    and pay only a context-variable read when tracing is disabled.
    """
    state = _ACTIVE.get()
    if state is None:
        return NOOP_SPAN
    return _SpanContext(state, name, dict(attributes))


class TraceBranch:
    """A detached span for work that runs on another thread.

    Context variables do not propagate into pool threads, and sharing one
    :class:`_TraceState` across threads would race on ``current`` — so
    scatter-style callers create one branch per task *on the coordinating
    thread* (capturing the active tracer), enter it *on the worker
    thread* (``__enter__`` installs a fresh ambient state in that
    thread's own context, so nested :func:`trace_span` calls attach under
    the branch; ``__exit__`` restores, keeping reused pool threads
    clean), and finally :meth:`attach` the finished branch to a parent
    span back on the coordinating thread, in deterministic order.  The
    same sequence works unchanged when the "worker" is the calling
    thread itself (inline scatter).
    """

    __slots__ = ("span", "_tracer", "_token")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]) -> None:
        self.span = Span(name=name, attributes=attributes)
        self._tracer = tracer
        self._token: "contextvars.Token | None" = None

    def __enter__(self) -> Span:
        self._token = _ACTIVE.set(_TraceState(self._tracer, self.span))
        self.span._start = self._tracer._clock()
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        span.duration = max(self._tracer._clock() - span._start, 0.0)
        if exc_type is not None:
            span.attributes.setdefault("error", exc_type.__name__)
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        return False

    def attach(self, parent: Span) -> None:
        """Append the finished branch under ``parent`` (coordinator side)."""
        parent.children.append(self.span)


def trace_branch(name: str, **attributes: Any) -> Optional[TraceBranch]:
    """A :class:`TraceBranch` under the active trace, or None when none is.

    The disabled path is one context-variable read, like ``trace_span``.
    """
    state = _ACTIVE.get()
    if state is None:
        return None
    return TraceBranch(state.tracer, name, dict(attributes))


class _TraceContext:
    """Context manager for one root trace; restores the ambient state."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._span = Span(name=name, attributes=attributes)
        self._token: "contextvars.Token | None" = None

    def __enter__(self) -> Span:
        self._token = _ACTIVE.set(_TraceState(self._tracer, self._span))
        self._span._start = self._tracer._clock()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.duration = max(self._tracer._clock() - span._start, 0.0)
        if exc_type is not None:
            span.attributes.setdefault("error", exc_type.__name__)
        if self._token is not None:
            _ACTIVE.reset(self._token)
        self._tracer._finish(span)
        return False


class Tracer:
    """Collects query traces and feeds per-stage latency histograms.

    Args:
        capacity: Finished traces kept (oldest evicted first).
        metrics: Optional :class:`~repro.observability.metrics.MetricsRegistry`;
            when given, every finished span records its duration into the
            ``stage_ms.<name>`` histogram so ``/metrics`` can aggregate
            per-stage latency across queries.
        clock: Time source (injectable for deterministic tests).
    """

    #: Reported by ``/metrics`` and the status panel.
    enabled: bool = True

    def __init__(
        self,
        capacity: int = 64,
        metrics=None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"trace capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.metrics = metrics
        self._clock = clock
        self._traces: Deque[Span] = deque(maxlen=capacity)
        # Concurrent queries finish traces while /trace exports them;
        # iterating a deque during an append raises RuntimeError.
        self._lock = threading.Lock()

    def trace(self, name: str, **attributes: Any) -> _TraceContext:
        """Open a root span and make this tracer ambient for its duration."""
        return _TraceContext(self, name, dict(attributes))

    def _finish(self, root: Span) -> None:
        with self._lock:
            self._traces.append(root)
        if self.metrics is not None:
            for span in root.walk():
                self.metrics.observe(f"stage_ms.{span.name}", span.duration_ms)

    @property
    def traces(self) -> List[Span]:
        """Finished traces, oldest first."""
        with self._lock:
            return list(self._traces)

    @property
    def last_trace(self) -> Optional[Span]:
        """The most recently finished trace, if any."""
        with self._lock:
            return self._traces[-1] if self._traces else None

    def export(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """The last ``limit`` traces (all when None) as JSON-ready dicts."""
        traces = self.traces
        if limit is not None:
            traces = traces[-max(int(limit), 0):]
        return [span.to_dict() for span in traces]

    def clear(self) -> None:
        """Drop all collected traces."""
        with self._lock:
            self._traces.clear()


class NoopTracer:
    """Tracer with the same surface that records nothing.

    The default on every coordinator: ``trace`` hands back the shared
    no-op span without touching the ambient context variable, so
    instrumented code runs at full speed.
    """

    enabled = False
    capacity = 0
    metrics = None

    def trace(self, name: str, **attributes: Any) -> _NoopSpan:
        """Hand back the shared no-op span; nothing is recorded."""
        return NOOP_SPAN

    @property
    def traces(self) -> List[Span]:
        return []

    @property
    def last_trace(self) -> Optional[Span]:
        return None

    def export(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Always empty — nothing is ever captured."""
        return []

    def clear(self) -> None:
        """Nothing to drop."""
        return None


NOOP_TRACER = NoopTracer()
