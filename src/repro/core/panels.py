"""The three frontend panels, as scriptable state machines.

The real MQA frontend is React/Remix/Mantine; here each panel is a plain
object with the same responsibilities, plus a text renderer so examples and
the FIG3 experiment can display what a user would see.  All panel actions
go through the coordinator — never directly to a backend component —
matching the architecture's single-conduit rule.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional

from repro.core.config import MQAConfig, WeightMode
from repro.core.coordinator import Coordinator
from repro.core.session import DialogueSession
from repro.core.status import MilestoneState, StatusBoard
from repro.data.datasets import DOMAINS
from repro.data.knowledge_base import KnowledgeBase
from repro.errors import ConfigurationError


class ConfigurationPanel:
    """Panel 1: choose knowledge base, encoders, weights, index, LLM.

    Holds a draft :class:`MQAConfig`; :meth:`apply` validates it, builds a
    coordinator, and returns the pop-up feedback string.
    """

    def __init__(self, config: Optional[MQAConfig] = None) -> None:
        self.config = config or MQAConfig()
        self.feedback: List[str] = []

    def options(self) -> Dict[str, List[str]]:
        """The choice lists the panel's dropdowns display."""
        from repro.encoders import available_encoder_sets
        from repro.index import available_indexes
        from repro.llm import available_llms
        from repro.retrieval import available_frameworks

        return {
            "knowledge_base": sorted(DOMAINS),
            "encoder_set": list(available_encoder_sets()),
            "weight_mode": [mode.value for mode in WeightMode],
            "index": list(available_indexes()),
            "framework": list(available_frameworks()),
            "llm": ["none", *available_llms()],
        }

    def set_option(self, option: str, value: Any) -> None:
        """Update one draft field with validation."""
        updates: Dict[str, Any] = {}
        if option == "knowledge_base":
            updates["dataset"] = replace(self.config.dataset, domain=str(value))
        elif option == "llm":
            updates["llm"] = None if value in (None, "none") else str(value)
        elif option in (
            "encoder_set",
            "weight_mode",
            "index",
            "framework",
            "result_count",
            "search_budget",
            "temperature",
            "external_knowledge",
            "fixed_weights",
            "index_params",
            "framework_params",
            "tracing",
            "trace_capacity",
            "recorder_path",
            "recorder_max_bytes",
            "recorder_max_files",
            "monitoring",
            "monitor_sample_rate",
            "slo_latency_ms",
            "slo_error_rate",
            "slo_window",
            "event_capacity",
            "workers",
            "engine_queue",
            "max_batch",
            "batch_window_ms",
            "resilience",
            "retry_attempts",
            "retry_backoff_ms",
            "retry_multiplier",
            "retry_max_backoff_ms",
            "deadline_ms",
            "breaker_threshold",
            "breaker_reset_ms",
            "breaker_half_open_probes",
            "fault_seed",
            "faults",
            "cost_accounting",
            "stats_exemplars",
        ):
            updates[option] = value
        else:
            raise ConfigurationError(f"unknown configuration option {option!r}")
        try:
            self.config = replace(self.config, **updates)
        except ConfigurationError:
            self.feedback.append(f"rejected: {option}={value!r}")
            raise
        self.feedback.append(f"set {option} = {value!r}")

    def apply(self, knowledge_base: Optional[KnowledgeBase] = None) -> Coordinator:
        """Validate, build and set up a coordinator from the draft config."""
        self.config.validate()
        coordinator = Coordinator(self.config, knowledge_base=knowledge_base)
        coordinator.setup()
        self.feedback.append("configuration applied; system ready")
        return coordinator


class StatusPanel:
    """Panel 2: live view of the backend milestones.

    Args:
        board: The coordinator's status board.
        tracer: Optional query tracer; when it holds finished traces the
            panel appends the most recent query's span tree, giving the
            per-stage breakdown the milestones can't show.
        slo: Optional :class:`~repro.observability.SLOMonitor`; adds a
            health line grading latency/errors against targets.
        quality: Optional :class:`~repro.observability.QualityMonitor`;
            adds the streaming recall@k / MRR of sampled live queries.
        stats: Optional :class:`~repro.observability.StatsPlane`; adds a
            cost line (queries observed, whole-query p95 latency and
            mean distance evaluations) when cost accounting is on.
        cache: Optional :class:`~repro.core.cache.QueryCache`; adds a
            cache line from one locked counter snapshot (plus the
            semantic hit/rejection totals on a semantic cache).
    """

    TICKS = {
        MilestoneState.PENDING: " ",
        MilestoneState.RUNNING: "…",
        MilestoneState.DONE: "✓",
        MilestoneState.FAILED: "✗",
    }

    def __init__(
        self, board: StatusBoard, tracer=None, slo=None, quality=None,
        stats=None, cache=None,
    ) -> None:
        self.board = board
        self.tracer = tracer
        self.slo = slo
        self.quality = quality
        self.stats = stats
        self.cache = cache

    def render(self) -> str:
        """Multi-line text of ticks + details, the panel's whole content."""
        lines = ["status monitoring"]
        for milestone in self.board.milestones():
            tick = self.TICKS[milestone.state]
            detail = ", ".join(f"{k}={v}" for k, v in milestone.details.items())
            elapsed = f" [{milestone.elapsed * 1000:.0f} ms]" if milestone.elapsed else ""
            lines.append(f" [{tick}] {milestone.name}{elapsed}" + (f": {detail}" if detail else ""))
        if self.slo is not None:
            snap = self.slo.snapshot()
            lines.append(
                f" health: {snap['state']} "
                f"(p95 {snap['window_p95_ms']:.1f}/{snap['latency_target_ms']:.0f} ms, "
                f"errors {snap['window_error_rate']:.1%}/{snap['error_rate_target']:.0%}, "
                f"window {snap['window_fill']}/{snap['window']})"
            )
        if self.quality is not None:
            snap = self.quality.snapshot()
            lines.append(
                f" quality: recall@{snap['k']} {snap['mean_recall_at_k']:.3f}, "
                f"mrr {snap['mean_mrr']:.3f} "
                f"({snap['sampled']} scored of {snap['queries_seen']} seen)"
            )
        if self.stats is not None:
            snap = self.stats.snapshot()
            whole = [
                group for group in snap["groups"] if group["shard"] == "-"
            ]
            if whole:
                p95 = max(g["latency_ms"]["p95"] for g in whole)
                evals = max(
                    g["distance_evaluations"]["mean"] for g in whole
                )
                lines.append(
                    f" cost: {snap['queries']} observed, "
                    f"p95 {p95:.1f} ms, "
                    f"mean {evals:.0f} distance evals "
                    f"({len(snap['exemplars'])} exemplars)"
                )
            else:
                lines.append(f" cost: {snap['queries']} observed")
        if self.cache is not None:
            snap = self.cache.snapshot()
            line = (
                f" cache: {snap['size']} entries, "
                f"{snap['hits']} hits / {snap['misses']} misses "
                f"(rate {snap['hit_rate']:.1%}, gen {snap['generation']})"
            )
            if snap.get("semantic"):
                line += (
                    f", semantic {snap['semantic_hits']} hits / "
                    f"{snap['semantic_rejects']} rejected"
                )
            lines.append(line)
        last_trace = self.tracer.last_trace if self.tracer is not None else None
        if last_trace is not None:
            lines.append("last query trace")
            lines.extend(
                " " + line for line in last_trace.render().splitlines()
            )
        return "\n".join(lines)


class QAPanel:
    """Panel 3: the dialogue box — submit, inspect, click, refine."""

    def __init__(self, coordinator: Coordinator) -> None:
        self.session = DialogueSession(coordinator)

    def submit(self, text: str, image: Any = None):
        """Send a user message (optionally with an uploaded image)."""
        return self.session.ask(text, image=image)

    def click_result(self, rank: int) -> int:
        """Click a result card, marking it preferred."""
        return self.session.select(rank)

    def refine(self, text: str, weights: Optional[dict] = None):
        """Send a follow-up that builds on the clicked result."""
        return self.session.refine(text, weights=weights)

    def render_transcript(self) -> str:
        """The dialogue box's content as text."""
        lines = ["QA panel"]
        for round_ in self.session.rounds_snapshot():
            image_tag = " [image]" if round_.had_image else ""
            lines.append(f" user: {round_.user_text}{image_tag}")
            lines.append(f" mqa:  {round_.answer.text}")
            for item in round_.answer.items:
                star = "*" if item.preferred else " "
                lines.append(
                    f"   {star} #{item.object_id} {item.description} "
                    f"(score {item.score:.3f})"
                )
            if round_.selected_object_id is not None:
                lines.append(f"   -> user selected #{round_.selected_object_id}")
        return "\n".join(lines)
