"""The MQASystem facade — the one-import entry point.

Wraps configuration, coordinator, and a dialogue session behind the three
verbs a user needs (ask / select / refine) plus introspection helpers.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.answer import Answer
from repro.core.config import MQAConfig
from repro.core.coordinator import Coordinator
from repro.core.panels import StatusPanel
from repro.core.session import DialogueSession
from repro.data.knowledge_base import KnowledgeBase
from repro.data.modality import Modality


class MQASystem:
    """A fully assembled multi-modal query-answering system.

    Build one with :meth:`from_config` (generates a synthetic knowledge
    base) or :meth:`from_knowledge_base` (serves an existing one), then
    converse:

    >>> system = MQASystem.from_config(MQAConfig())       # doctest: +SKIP
    >>> answer = system.ask("a foggy mountain scene")     # doctest: +SKIP
    >>> system.select(0)                                  # doctest: +SKIP
    >>> answer = system.refine("more dramatic clouds")    # doctest: +SKIP
    """

    def __init__(self, coordinator: Coordinator) -> None:
        self.coordinator = coordinator
        self.session = DialogueSession(coordinator)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: Optional[MQAConfig] = None) -> "MQASystem":
        """Generate the configured knowledge base and assemble the system."""
        coordinator = Coordinator(config or MQAConfig())
        coordinator.setup()
        return cls(coordinator)

    @classmethod
    def from_knowledge_base(
        cls, kb: KnowledgeBase, config: Optional[MQAConfig] = None
    ) -> "MQASystem":
        """Assemble the system over a prebuilt knowledge base."""
        coordinator = Coordinator(config or MQAConfig(), knowledge_base=kb)
        coordinator.setup()
        return cls(coordinator)

    # ------------------------------------------------------------------
    # conversation verbs
    # ------------------------------------------------------------------
    def ask(
        self,
        text: str,
        image: Any = None,
        k: Optional[int] = None,
        weights: Optional[dict] = None,
        where=None,
    ) -> Answer:
        """Submit a query (text, optionally with a reference image).

        ``weights`` re-weights modalities for this query only; ``where``
        filters results by a predicate over knowledge-base objects.
        """
        return self.session.ask(text, image=image, k=k, weights=weights, where=where)

    def ask_agentic(
        self,
        text: str,
        image: Any = None,
        k: Optional[int] = None,
        weights: Optional[dict] = None,
    ) -> Answer:
        """Submit a query through the multi-hop agentic path.

        With ``config.agentic`` off this is bit-identical to :meth:`ask`
        (minus ``where`` filtering, which the agentic path does not take).
        """
        return self.session.ask_agentic(text, image=image, k=k, weights=weights)

    def select(self, rank: int) -> int:
        """Mark the last answer's item at ``rank`` as preferred."""
        return self.session.select(rank)

    def reject(self, rank: int) -> int:
        """Dismiss the last answer's item at ``rank``; it never returns."""
        return self.session.reject(rank)

    def refine(
        self,
        text: str,
        k: Optional[int] = None,
        weights: Optional[dict] = None,
    ) -> Answer:
        """Refine the search using the selected result plus new text."""
        return self.session.refine(text, k=k, weights=weights)

    def ingest(self, concepts, intensities=None, metadata=None) -> int:
        """Add a new object to the live system (KB + index); returns its id."""
        return self.coordinator.ingest_object(
            concepts, intensities=intensities, metadata=metadata
        )

    def remove(self, object_id: int) -> None:
        """Tombstone an object so it never appears in results again."""
        self.coordinator.remove_object(object_id)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def kb(self) -> Optional[KnowledgeBase]:
        """The attached knowledge base (None in LLM-only mode)."""
        return self.coordinator.kb

    @property
    def weights(self) -> Dict[Modality, float]:
        """Modality weights the system is searching with."""
        return self.coordinator.weights

    def status_report(self) -> str:
        """The status-monitoring panel's current text."""
        return StatusPanel(
            self.coordinator.status, tracer=self.coordinator.tracer
        ).render()

    def reset_dialogue(self) -> None:
        """Start a fresh conversation over the same indexes."""
        self.session = DialogueSession(self.coordinator)
