"""The MQA system itself — the paper's primary contribution.

Mirrors Figure 2: five backend components (data preprocessing, vector
representation, index construction, query execution, answer generation)
orchestrated by a coordinator that is the sole conduit between frontend
(configuration / status / QA panels) and backend.  :class:`MQASystem` is
the one-import facade a downstream user talks to.
"""

from repro.core.agentic import AgenticAnswerer, Claim, QueryDecomposer, SubQuery
from repro.core.answer import Answer
from repro.core.config import MQAConfig, WeightMode
from repro.core.coordinator import Coordinator
from repro.core.events import Event, EventLog
from repro.core.cache import QueryCache, SemanticQueryCache
from repro.core.panels import ConfigurationPanel, QAPanel, StatusPanel
from repro.core.planning import (
    AdmissionController,
    AdmissionShedError,
    QueryPlan,
    QueryPlanner,
)
from repro.core.resilience import (
    CircuitBreaker,
    Deadline,
    FaultInjector,
    FaultSpec,
    ResilienceManager,
    RetryPolicy,
)
from repro.core.session import DialogueSession, Round
from repro.core.status import Milestone, MilestoneState, StatusBoard
from repro.core.system import MQASystem

__all__ = [
    "AdmissionController",
    "AdmissionShedError",
    "AgenticAnswerer",
    "Answer",
    "CircuitBreaker",
    "Claim",
    "ConfigurationPanel",
    "Coordinator",
    "Deadline",
    "DialogueSession",
    "Event",
    "EventLog",
    "FaultInjector",
    "FaultSpec",
    "MQAConfig",
    "MQASystem",
    "Milestone",
    "MilestoneState",
    "QAPanel",
    "QueryCache",
    "QueryDecomposer",
    "QueryPlan",
    "QueryPlanner",
    "ResilienceManager",
    "RetryPolicy",
    "Round",
    "SubQuery",
    "SemanticQueryCache",
    "StatusBoard",
    "StatusPanel",
    "WeightMode",
]
