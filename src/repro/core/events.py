"""The coordinator's event log.

Every data transition between components flows through the coordinator
(the two-way arrows of Figure 2); the event log is its flight recorder —
the FIG2 experiment asserts the recorded flow matches the architecture.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class Event:
    """One recorded transition.

    Attributes:
        source: Component emitting the data ("frontend", "preprocessing"...)
        target: Component receiving it.
        kind: Short label of the payload ("raw-query", "search-results"...).
        timestamp: Wall-clock seconds (monotonic within a log).
        detail: Small human-readable payload summary.
    """

    source: str
    target: str
    kind: str
    timestamp: float
    detail: str = ""


class EventLog:
    """Append-only record of coordinator-mediated transitions."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def record(self, source: str, target: str, kind: str, detail: str = "") -> Event:
        """Append an event and return it."""
        event = Event(
            source=source,
            target=target,
            kind=kind,
            timestamp=time.perf_counter(),
            detail=detail,
        )
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def events(self) -> Tuple[Event, ...]:
        """All events in order."""
        return tuple(self._events)

    def kinds(self) -> List[str]:
        """The sequence of event kinds (handy for flow assertions)."""
        return [event.kind for event in self._events]

    def involving(self, component: str) -> List[Event]:
        """Events where ``component`` is source or target."""
        return [
            event
            for event in self._events
            if component in (event.source, event.target)
        ]

    def clear(self) -> None:
        """Drop all events."""
        self._events.clear()
