"""The coordinator's event log.

Every data transition between components flows through the coordinator
(the two-way arrows of Figure 2); the event log is its flight recorder —
the FIG2 experiment asserts the recorded flow matches the architecture.

The log is a *ring buffer*: it retains the newest ``capacity`` events and
evicts the oldest, so a long-running dialogue session (or a server under
heavy traffic) holds bounded memory.  ``total_recorded`` keeps counting
past the cap, and ``dropped`` reports how many events were evicted —
``GET /events`` surfaces both so a paginating client knows the window it
is looking at.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Tuple


@dataclass(frozen=True)
class Event:
    """One recorded transition.

    Attributes:
        source: Component emitting the data ("frontend", "preprocessing"...)
        target: Component receiving it.
        kind: Short label of the payload ("raw-query", "search-results"...).
        timestamp: Wall-clock seconds (monotonic within a log).
        detail: Small human-readable payload summary.
    """

    source: str
    target: str
    kind: str
    timestamp: float
    detail: str = ""


class EventLog:
    """Append-only record of coordinator-mediated transitions.

    Args:
        capacity: Newest events retained; older ones are evicted.
    """

    DEFAULT_CAPACITY = 2048

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"event capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: Deque[Event] = deque(maxlen=capacity)
        self.total_recorded = 0

    def record(self, source: str, target: str, kind: str, detail: str = "") -> Event:
        """Append an event and return it."""
        event = Event(
            source=source,
            target=target,
            kind=kind,
            timestamp=time.perf_counter(),
            detail=detail,
        )
        self._events.append(event)
        self.total_recorded += 1
        return event

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer so far."""
        return self.total_recorded - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def events(self) -> Tuple[Event, ...]:
        """All retained events in order."""
        return tuple(self._events)

    def page(self, offset: int = 0, limit: "int | None" = None) -> List[Event]:
        """A slice of the retained events (``GET /events`` pagination).

        ``offset`` counts from the oldest *retained* event; negative
        offsets and limits are clamped to zero.
        """
        events = list(self._events)
        offset = max(int(offset), 0)
        if limit is None:
            return events[offset:]
        return events[offset : offset + max(int(limit), 0)]

    def kinds(self) -> List[str]:
        """The sequence of retained event kinds (handy for flow assertions)."""
        return [event.kind for event in self._events]

    def involving(self, component: str) -> List[Event]:
        """Retained events where ``component`` is source or target."""
        return [
            event
            for event in self._events
            if component in (event.source, event.target)
        ]

    def clear(self) -> None:
        """Drop all retained events (counters keep their totals)."""
        self._events.clear()
