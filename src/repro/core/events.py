"""The coordinator's event log.

Every data transition between components flows through the coordinator
(the two-way arrows of Figure 2); the event log is its flight recorder —
the FIG2 experiment asserts the recorded flow matches the architecture.

The log is a *ring buffer*: it retains the newest ``capacity`` events and
evicts the oldest, so a long-running dialogue session (or a server under
heavy traffic) holds bounded memory.  ``total_recorded`` keeps counting
past the cap, and ``dropped`` reports how many events were evicted —
``GET /events`` surfaces both so a paginating client knows the window it
is looking at.

Every mutation and every read snapshot goes through one internal lock:
request threads append concurrently while ``GET /events`` paginates, and
the (retained, total_recorded, dropped) triple must be mutually
consistent — an append observed by ``page`` but not yet by ``dropped``
would double-count evictions under load.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Tuple


@dataclass(frozen=True)
class Event:
    """One recorded transition.

    Attributes:
        source: Component emitting the data ("frontend", "preprocessing"...)
        target: Component receiving it.
        kind: Short label of the payload ("raw-query", "search-results"...).
        timestamp: Wall-clock seconds (monotonic within a log).
        detail: Small human-readable payload summary.
    """

    source: str
    target: str
    kind: str
    timestamp: float
    detail: str = ""


class EventLog:
    """Append-only record of coordinator-mediated transitions.

    Args:
        capacity: Newest events retained; older ones are evicted.
    """

    DEFAULT_CAPACITY = 2048

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"event capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: Deque[Event] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.total_recorded = 0

    def record(self, source: str, target: str, kind: str, detail: str = "") -> Event:
        """Append an event and return it."""
        event = Event(
            source=source,
            target=target,
            kind=kind,
            timestamp=time.perf_counter(),
            detail=detail,
        )
        with self._lock:
            self._events.append(event)
            self.total_recorded += 1
        return event

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer so far."""
        with self._lock:
            return self.total_recorded - len(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self):
        return iter(self.events())

    def events(self) -> Tuple[Event, ...]:
        """All retained events in order."""
        with self._lock:
            return tuple(self._events)

    def page(self, offset: int = 0, limit: "int | None" = None) -> List[Event]:
        """A slice of the retained events (``GET /events`` pagination).

        ``offset`` counts from the oldest *retained* event; negative
        offsets and limits are clamped to zero.
        """
        with self._lock:
            events = list(self._events)
        offset = max(int(offset), 0)
        if limit is None:
            return events[offset:]
        return events[offset : offset + max(int(limit), 0)]

    def snapshot(self) -> Tuple[Tuple[Event, ...], int, int]:
        """One consistent ``(retained, total_recorded, dropped)`` triple.

        ``GET /events`` reports all three numbers alongside a page; reading
        them through separate calls under concurrent appends could show a
        ``dropped`` that disagrees with the page it accompanies.
        """
        with self._lock:
            retained = tuple(self._events)
            return retained, self.total_recorded, self.total_recorded - len(retained)

    def kinds(self) -> List[str]:
        """The sequence of retained event kinds (handy for flow assertions)."""
        return [event.kind for event in self.events()]

    def involving(self, component: str) -> List[Event]:
        """Retained events where ``component`` is source or target."""
        return [
            event
            for event in self.events()
            if component in (event.source, event.target)
        ]

    def clear(self) -> None:
        """Drop all retained events (counters keep their totals)."""
        with self._lock:
            self._events.clear()
