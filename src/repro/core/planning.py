"""Self-tuning query planning, admission control, and the semantic-cache
recall guard.

ROADMAP item 4: the observability stack already records per-(framework,
index, shard) latency and recall distributions — exactly the data a
cost-based optimizer needs.  This module turns that data into per-query
serving decisions:

* :class:`QueryPlanner` — picks the execution parameters for one query
  (search ``budget`` / beam width, shard fan-out, micro-batch
  participation) under the PR 5 :class:`~repro.core.resilience.Deadline`
  as its constraint.  The planner maintains a deterministic *budget
  ladder* derived from the configured ``search_budget`` and, for each
  tier, a rolling latency sample plus a recall EWMA fed back from live
  queries (seeded from the :class:`~repro.observability.stats.StatsPlane`
  when one exists).  ``plan()`` walks the ladder from the most to the
  least expensive tier whose *observed* recall still meets the
  configured floor and returns the first tier whose predicted p95 —
  times a safety factor — fits the deadline's remaining budget: the
  cheapest viable degradation level, full quality whenever the deadline
  allows it.
* :class:`AdmissionController` — sheds or degrades load at the
  :class:`~repro.core.concurrency.QueryEngine` boundary *before*
  saturation: a token bucket denominated in predicted milliseconds of
  retrieval work models serving capacity, and an EWMA over measured
  engine queue waits detects queue build-up long before the bounded
  queue overflows into a hard ``EngineSaturatedError``.
* the **semantic-cache recall guard** — the planner predicts whether
  serving a near-duplicate's cached response keeps recall above the
  floor (:meth:`QueryPlanner.semantic_guard`), which is the admission
  rule of :class:`~repro.core.cache.SemanticQueryCache`.

Everything here is off by default (``MQAConfig.planner`` /
``MQAConfig.admission`` / ``MQAConfig.semantic_cache``); when disabled
no object in this module is even constructed and the query path is
bit-identical to the pre-planning code.
"""

from __future__ import annotations

import logging
import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.errors import MQAError

__all__ = [
    "AdmissionController",
    "AdmissionShedError",
    "QueryPlan",
    "QueryPlanner",
]

logger = logging.getLogger(__name__)

#: Latency samples retained per budget tier (rolling window).
_TIER_WINDOW = 128

#: Exponent of the prior recall model ``(budget / base) ** rho`` used for
#: tiers with no observed recall yet — mildly pessimistic, so very cheap
#: tiers start out below any reasonable floor until proven otherwise.
_PRIOR_RHO = 0.15

#: Exponent of the latency scaling model used to extrapolate a tier's
#: cost from an observed neighbour: cost grows sublinearly with beam
#: width (shared fixed costs: encode, fuse, merge).
_COST_SCALE = 0.8

#: How dissimilarity translates into predicted recall loss for the
#: semantic cache: ``predicted = 1 - (1 - cosine) * penalty``.
_SIMILARITY_PENALTY = 2.0


class AdmissionShedError(MQAError):
    """Raised by the API boundary when admission control sheds a request.

    Deliberately *not* an :class:`~repro.core.concurrency.EngineSaturatedError`:
    shedding happens before the engine queue is touched, while the system
    still has headroom to answer the requests it already accepted.
    """


@dataclass
class QueryPlan:
    """The execution parameters chosen for one query.

    Attributes:
        budget: Search budget (beam width / ef) to run with.
        tier: Position in the planner's budget ladder (0 = full budget).
        predicted_ms: Predicted p95 retrieval latency of the chosen tier.
        predicted_recall: Predicted recall@k retention of the chosen tier
            (observed EWMA when available, prior model otherwise).
        degraded: True when even the cheapest floor-respecting tier could
            not fit the remaining deadline and the plan dropped below the
            recall floor — the round reports a ``degraded_reasons`` entry.
        reason: Why this tier was chosen — ``"no-deadline"``, ``"fit"``,
            ``"pressure"``, or ``"deadline"`` (degraded).
        fanout: Shard fan-out limit for degraded plans on a sharded
            deployment (None = scatter to every shard).
        skip_batch: True when the plan recommends bypassing the
            micro-batch collector (remaining deadline too small to spend
            on the batching window).
    """

    budget: int
    tier: int
    predicted_ms: float
    predicted_recall: float
    degraded: bool = False
    reason: str = "fit"
    fanout: Optional[int] = None
    skip_batch: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready view carried on answer payloads and trace spans."""
        body: Dict[str, Any] = {
            "budget": self.budget,
            "tier": self.tier,
            "predicted_ms": round(self.predicted_ms, 3),
            "predicted_recall": round(self.predicted_recall, 4),
            "reason": self.reason,
        }
        if self.degraded:
            body["degraded"] = True
        if self.fanout is not None:
            body["fanout"] = self.fanout
        return body


class _Tier:
    """Rolling latency/recall state for one ladder budget."""

    __slots__ = ("budget", "latencies", "recall_ewma", "plans", "observed")

    def __init__(self, budget: int) -> None:
        self.budget = budget
        self.latencies: List[float] = []
        self.recall_ewma: Optional[float] = None
        self.plans = 0
        self.observed = 0

    def note_latency(self, ms: float) -> None:
        self.latencies.append(float(ms))
        self.observed += 1
        if len(self.latencies) > _TIER_WINDOW:
            del self.latencies[: len(self.latencies) - _TIER_WINDOW]

    def p95(self) -> Optional[float]:
        if not self.latencies:
            return None
        return float(np.percentile(np.asarray(self.latencies), 95))


def budget_ladder(base_budget: int, k: int, min_budget: int = 8) -> List[int]:
    """The deterministic budget ladder for one configuration.

    Successive halvings of the configured ``search_budget`` down to
    ``max(k, min_budget)``, most expensive first.  The base budget is
    always tier 0, so a planner with an ample deadline reproduces the
    planner-off retrieval bit-identically.
    """
    if base_budget < 1:
        raise ValueError(f"base_budget must be >= 1, got {base_budget}")
    floor = max(int(k), int(min_budget), 1)
    ladder = [int(base_budget)]
    step = int(base_budget) // 2
    while step >= floor and step < ladder[-1]:
        ladder.append(step)
        step //= 2
    return ladder


class QueryPlanner:
    """Cost-based per-query planner over a deterministic budget ladder.

    Args:
        base_budget: The configured ``search_budget`` (tier 0).
        k: Default result count (lower bound for ladder budgets).
        recall_floor: Minimum predicted recall a tier must retain to be
            eligible for a non-degraded plan.
        shards: Shard count of the deployment (0/1 = unsharded); degraded
            plans on a sharded deployment additionally limit fan-out.
        stats: Optional :class:`~repro.observability.stats.StatsPlane`
            whose whole-query latency p95 seeds tier-0 predictions before
            the planner has its own samples.
        metrics: Optional metrics registry receiving ``planner.*``
            counters.
        safety: Multiplier applied to predicted p95 before comparing with
            the remaining deadline (headroom for generation and jitter).
        min_budget: Smallest ladder budget considered.

    Thread safety: one planner is shared by every engine worker; all
    mutable state is guarded by an internal lock.
    """

    def __init__(
        self,
        base_budget: int,
        k: int,
        recall_floor: float = 0.8,
        shards: int = 0,
        stats: Optional[Any] = None,
        metrics: Optional[Any] = None,
        safety: float = 1.25,
        min_budget: int = 8,
    ) -> None:
        if not 0.0 <= recall_floor <= 1.0:
            raise ValueError(
                f"recall_floor must be in [0, 1], got {recall_floor}"
            )
        self.base_budget = int(base_budget)
        self.k = int(k)
        self.recall_floor = float(recall_floor)
        self.shards = int(shards or 0)
        self.stats = stats
        self.metrics = metrics
        self.safety = float(safety)
        self._lock = threading.Lock()
        self._tiers = [
            _Tier(budget) for budget in budget_ladder(base_budget, k, min_budget)
        ]
        self._plans = 0
        self._degraded = 0
        self._pressure_plans = 0
        self._batch_skips = 0
        self._errors = 0
        self._error_logged = False
        self._stats_seed_ms: Optional[float] = None
        self._stats_seed_at = 0

    # ------------------------------------------------------------------
    # prediction model
    # ------------------------------------------------------------------
    @property
    def ladder(self) -> List[int]:
        """The tier budgets, most expensive first."""
        return [tier.budget for tier in self._tiers]

    def _seed_ms(self) -> Optional[float]:
        """Whole-query p95 from the stats plane (refreshed lazily).

        The snapshot allocates, so it is re-read at most every 32 plans;
        between refreshes the cached value is used.
        """
        if self.stats is None:
            return self._stats_seed_ms
        if self._plans - self._stats_seed_at < 32 and self._stats_seed_ms is not None:
            return self._stats_seed_ms
        self._stats_seed_at = self._plans
        try:
            snap = self.stats.snapshot()
        except Exception as exc:
            # Falling back to the cached seed keeps planning alive, but a
            # broken stats plane must be visible, not silent: count every
            # failure and log the first one with its cause.
            self._errors += 1
            if self.metrics is not None:
                self.metrics.inc("planner.errors")
            if not self._error_logged:
                self._error_logged = True
                logger.warning(
                    "planner stats seeding failed; using cached seed "
                    "(error=%s message=%r)",
                    type(exc).__name__,
                    str(exc),
                )
            return self._stats_seed_ms
        whole = [g for g in snap.get("groups", []) if g.get("shard") == "-"]
        if whole:
            self._stats_seed_ms = max(
                float(g["latency_ms"]["p95"]) for g in whole
            )
        return self._stats_seed_ms

    def _predict_ms(self, tier: _Tier) -> float:
        """Predicted p95 retrieval latency for ``tier``.

        Own rolling sample when available; otherwise scaled from the
        nearest observed tier (sublinear in the budget ratio); otherwise
        the stats-plane seed; otherwise 0 (optimistic — the first queries
        run tier 0 and seed the model from real feedback).
        """
        own = tier.p95()
        if own is not None:
            return own
        nearest: Optional[_Tier] = None
        for other in self._tiers:
            if other.p95() is not None:
                if nearest is None or abs(
                    math.log(other.budget / tier.budget)
                ) < abs(math.log(nearest.budget / tier.budget)):
                    nearest = other
        if nearest is not None:
            scale = (tier.budget / nearest.budget) ** _COST_SCALE
            return float(nearest.p95()) * scale  # type: ignore[arg-type]
        seed = self._seed_ms()
        if seed is not None:
            return seed * (tier.budget / self.base_budget) ** _COST_SCALE
        return 0.0

    def _predict_recall(self, tier: _Tier) -> float:
        """Observed recall EWMA, or the prior ``(budget/base) ** rho``."""
        if tier.recall_ewma is not None:
            return tier.recall_ewma
        return (tier.budget / self.base_budget) ** _PRIOR_RHO

    def predicted_base_ms(self) -> float:
        """Tier-0 predicted cost — the admission token charge per query."""
        with self._lock:
            return max(self._predict_ms(self._tiers[0]), 1.0)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, deadline: Optional[Any] = None, pressure: bool = False) -> QueryPlan:
        """Choose the execution parameters for one query.

        ``deadline`` is a :class:`~repro.core.resilience.Deadline` (or
        None when resilience is off / no budget applies).  ``pressure``
        marks admission-control degrade mode: the plan skips tier 0 and
        starts from the next floor-respecting tier, trading a little
        recall headroom for service time while staying above the floor —
        such plans are *not* marked degraded.
        """
        remaining: Optional[float] = None
        if deadline is not None:
            remaining = max(float(deadline.remaining_ms), 0.0)
        with self._lock:
            self._plans += 1
            eligible = [
                (index, tier)
                for index, tier in enumerate(self._tiers)
                if self._predict_recall(tier) >= self.recall_floor
            ]
            if not eligible:
                # A floor above every tier's prediction: tier 0 is the
                # best the system can do — run it and report honestly.
                eligible = [(0, self._tiers[0])]
            if pressure and len(eligible) > 1:
                self._pressure_plans += 1
                eligible = eligible[1:]
            chosen: Optional[QueryPlan] = None
            if remaining is None:
                index, tier = eligible[0]
                chosen = QueryPlan(
                    budget=tier.budget,
                    tier=index,
                    predicted_ms=self._predict_ms(tier),
                    predicted_recall=self._predict_recall(tier),
                    reason="pressure" if pressure else "no-deadline",
                )
            else:
                for index, tier in eligible:
                    predicted = self._predict_ms(tier)
                    if predicted * self.safety <= remaining:
                        chosen = QueryPlan(
                            budget=tier.budget,
                            tier=index,
                            predicted_ms=predicted,
                            predicted_recall=self._predict_recall(tier),
                            reason="pressure" if pressure else "fit",
                        )
                        break
            if chosen is None:
                # Nothing above the floor fits: degrade to the absolute
                # cheapest tier and, when sharded, halve the fan-out.
                index = len(self._tiers) - 1
                tier = self._tiers[index]
                self._degraded += 1
                chosen = QueryPlan(
                    budget=tier.budget,
                    tier=index,
                    predicted_ms=self._predict_ms(tier),
                    predicted_recall=self._predict_recall(tier),
                    degraded=True,
                    reason="deadline",
                    fanout=(
                        max(1, self.shards // 2) if self.shards > 1 else None
                    ),
                )
            tier_state = self._tiers[chosen.tier]
            tier_state.plans += 1
        if self.metrics is not None:
            self.metrics.inc("planner.plans")
            self.metrics.inc(f"planner.tier.{chosen.budget}")
            if chosen.degraded:
                self.metrics.inc("planner.plan_degraded")
            if pressure:
                self.metrics.inc("planner.plan_pressure")
            self.metrics.observe("planner.budget", float(chosen.budget))
        return chosen

    def skip_batching(
        self, remaining_ms: Optional[float], window_ms: float
    ) -> bool:
        """Should a ``/search`` request bypass the micro-batch collector?

        Joining the collector costs up to ``window_ms`` of pure waiting;
        when the remaining deadline cannot absorb several windows the
        plan runs the query inline instead.
        """
        if remaining_ms is None or window_ms <= 0:
            return False
        skip = remaining_ms < window_ms * 4.0
        if skip:
            with self._lock:
                self._batch_skips += 1
            if self.metrics is not None:
                self.metrics.inc("planner.batch_skipped")
        return skip

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------
    def observe(self, plan: QueryPlan, latency_ms: float, ok: bool = True) -> None:
        """Fold one executed plan's measured retrieval latency back in."""
        if not ok:
            return
        with self._lock:
            if 0 <= plan.tier < len(self._tiers):
                self._tiers[plan.tier].note_latency(latency_ms)
        if self.metrics is not None:
            self.metrics.observe("planner.observed_ms", float(latency_ms))

    def observe_recall(self, budget: int, recall: float, alpha: float = 0.25) -> None:
        """Fold one sampled recall@k score into the matching tier's EWMA."""
        with self._lock:
            for tier in self._tiers:
                if tier.budget == budget:
                    if tier.recall_ewma is None:
                        tier.recall_ewma = float(recall)
                    else:
                        tier.recall_ewma = (
                            (1.0 - alpha) * tier.recall_ewma + alpha * float(recall)
                        )
                    break

    def semantic_guard(self, similarity: float) -> bool:
        """Admission rule for the semantic cache.

        Serving a near-duplicate at cosine similarity ``s`` is predicted
        to retain ``1 - (1 - s) * penalty`` of the fresh search's recall;
        the cached response is served only when that prediction stays at
        or above the recall floor.
        """
        predicted = 1.0 - (1.0 - float(similarity)) * _SIMILARITY_PENALTY
        return predicted >= self.recall_floor

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Ladder state and counters for ``GET /health`` / ``GET /stats``."""
        with self._lock:
            tiers = []
            for index, tier in enumerate(self._tiers):
                p95 = tier.p95()
                tiers.append(
                    {
                        "tier": index,
                        "budget": tier.budget,
                        "plans": tier.plans,
                        "observed": tier.observed,
                        "p95_ms": round(p95, 3) if p95 is not None else None,
                        "predicted_ms": round(self._predict_ms(tier), 3),
                        "recall": (
                            round(tier.recall_ewma, 4)
                            if tier.recall_ewma is not None
                            else None
                        ),
                        "predicted_recall": round(self._predict_recall(tier), 4),
                    }
                )
            return {
                "enabled": True,
                "recall_floor": self.recall_floor,
                "safety": self.safety,
                "plans": self._plans,
                "degraded": self._degraded,
                "pressure_plans": self._pressure_plans,
                "batch_skips": self._batch_skips,
                "errors": self._errors,
                "tiers": tiers,
            }


class AdmissionController:
    """Sheds or degrades load before the engine queue saturates.

    Two independent signals feed each :meth:`decide` call:

    * a **token bucket** denominated in predicted milliseconds of
      retrieval work — refilled at ``workers × 1000 × utilization`` ms of
      capacity per wall second, drained by each accepted request's
      predicted cost.  When the bucket cannot cover a request, demand
      exceeds sustainable capacity and the request is degraded (planner
      pressure) rather than queued blindly;
    * a **queue-delay estimate**.  With a :attr:`queue_probe` installed
      (the engine's live queue depth) the expected wait is Little's law
      — ``depth / workers x predicted`` — recomputed from the *current*
      queue at every decision.  Without a probe the controller falls
      back to an EWMA over the engine's measured per-request queue waits
      (fed through :attr:`QueryEngine.wait_observer`); the EWMA only
      updates when requests actually execute, so during a shed storm it
      can stay stale-high after the queue has drained — the live probe
      is immune to that and is preferred whenever available.  Crossing
      ``degrade_wait_ms`` degrades new arrivals; a request whose
      expected wait *plus* predicted service time (times the planner's
      safety factor) reaches ``shed_wait_ms`` is shed outright — it is
      predicted to miss its budget even if accepted, so running it
      would waste capacity the requests already queued still need.
      Both fire before the bounded queue overflows into
      ``EngineSaturatedError``.

    Args:
        workers: Engine worker count (capacity model).
        degrade_wait_ms: Queue-wait EWMA above which arrivals degrade.
        shed_wait_ms: Predicted completion time (queue-wait EWMA +
            predicted service x safety) above which arrivals shed.
        utilization: Fraction of theoretical capacity the bucket refills
            at (headroom for writes and generation).
        burst_ms: Bucket capacity; defaults to half a second of refill.
        alpha: EWMA smoothing factor for queue waits.
        safety: Multiplier on predicted service time in the shed
            decision — kept equal to the planner's safety factor so a
            request admission accepts still has room for a full-quality
            (non-degraded) plan when it reaches the planner.
        queue_probe: Optional callable returning the engine's live queue
            depth (:attr:`QueryEngine.queue_depth`); also settable after
            construction, mirroring ``QueryEngine.wait_observer``.
        clock: Time source (injectable for deterministic tests).
        metrics: Optional metrics registry receiving ``admission.*``
            counters.
    """

    def __init__(
        self,
        workers: int = 1,
        degrade_wait_ms: float = 50.0,
        shed_wait_ms: float = 200.0,
        utilization: float = 0.85,
        burst_ms: Optional[float] = None,
        alpha: float = 0.2,
        safety: float = 1.25,
        queue_probe: Optional[Callable[[], int]] = None,
        clock: Callable[[], float] = time.perf_counter,
        metrics: Optional[Any] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shed_wait_ms < degrade_wait_ms:
            raise ValueError(
                "shed_wait_ms must be >= degrade_wait_ms, got "
                f"{shed_wait_ms} < {degrade_wait_ms}"
            )
        self.workers = int(workers)
        self.degrade_wait_ms = float(degrade_wait_ms)
        self.shed_wait_ms = float(shed_wait_ms)
        self.rate_ms_per_s = float(workers) * 1000.0 * float(utilization)
        self.burst_ms = (
            float(burst_ms) if burst_ms is not None else self.rate_ms_per_s * 0.5
        )
        self.alpha = float(alpha)
        self.safety = float(safety)
        self.queue_probe = queue_probe
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = self.burst_ms
        self._last = clock()
        self._wait_ewma = 0.0
        self._wait_seen = False
        self.accepted = 0
        self.degraded = 0
        self.shed = 0
        self.probe_errors = 0
        self._probe_error_logged = False
        self.metrics = metrics

    @classmethod
    def from_config(cls, config: Any, metrics: Optional[Any] = None) -> "AdmissionController":
        """Build a controller from an :class:`~repro.core.config.MQAConfig`.

        The wait thresholds derive from the per-request budget when one is
        configured (degrade at half the deadline spent queueing, shed at a
        full deadline) and from the SLO latency target otherwise.
        """
        budget = config.deadline_ms or config.slo_latency_ms
        return cls(
            workers=config.workers,
            degrade_wait_ms=budget * 0.5,
            shed_wait_ms=budget,
            metrics=metrics,
        )

    def observe_wait(self, wait_ms: float) -> None:
        """Fold one measured engine queue wait into the EWMA (the hook
        installed as :attr:`QueryEngine.wait_observer`)."""
        with self._lock:
            if not self._wait_seen:
                self._wait_ewma = float(wait_ms)
                self._wait_seen = True
            else:
                self._wait_ewma = (
                    (1.0 - self.alpha) * self._wait_ewma
                    + self.alpha * float(wait_ms)
                )

    def _expected_wait_ms(self, predicted: float) -> float:
        """Forward-looking queue-wait estimate for one arriving request.

        With a live queue probe: Little's law, ``depth / workers x
        predicted`` — recomputed from the current queue, so a drained
        queue immediately re-enables acceptance after a shed storm.
        Without one (or when the probe fails): the backward-looking
        queue-wait EWMA.
        """
        probe = self.queue_probe
        if probe is not None:
            try:
                depth = max(int(probe()), 0)
            except Exception as exc:
                # Callers (decide) already hold self._lock; plain counter
                # increments are safe here, but no re-acquisition.
                self._record_probe_error(exc)
            else:
                return depth / self.workers * predicted
        return self._wait_ewma

    def _record_probe_error(self, exc: BaseException) -> None:
        """Count a failed queue probe and log the first occurrence.

        Must be callable both with and without ``self._lock`` held (the
        probe fires from :meth:`decide`, which holds it, and from
        :meth:`snapshot`, which does not), so it never takes the lock.
        """
        self.probe_errors += 1
        if self.metrics is not None:
            self.metrics.inc("admission.probe_errors")
        if not self._probe_error_logged:
            self._probe_error_logged = True
            logger.warning(
                "admission queue probe failed; falling back to the "
                "queue-wait EWMA (error=%s message=%r)",
                type(exc).__name__,
                str(exc),
            )

    def decide(self, predicted_ms: float) -> str:
        """Admit one request: ``"accept"``, ``"degrade"``, or ``"shed"``.

        The shed test is *predicted completion time*: the expected queue
        wait (see :meth:`_expected_wait_ms`) plus the request's
        predicted service time (times the safety factor) against the
        full budget.  A request that cannot make its budget even if
        accepted is turned away immediately — and, symmetrically, a
        request that *is* accepted still has ``predicted x safety`` of
        budget left when it reaches the planner, so admission never
        forces a degraded plan by itself.  Degraded requests still run
        (the planner drops to a cheaper floor-respecting tier) and are
        charged half their predicted cost; shed requests never touch
        the engine.
        """
        predicted = max(float(predicted_ms), 0.0)
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst_ms,
                self._tokens + (now - self._last) * self.rate_ms_per_s,
            )
            self._last = now
            wait = self._expected_wait_ms(predicted)
            completion = wait + predicted * self.safety
            if completion >= self.shed_wait_ms or self._tokens <= -self.burst_ms:
                self.shed += 1
                decision = "shed"
            elif wait >= self.degrade_wait_ms or self._tokens < predicted:
                self._tokens -= predicted * 0.5
                self.degraded += 1
                decision = "degrade"
            else:
                self._tokens -= predicted
                self.accepted += 1
                decision = "accept"
        if self.metrics is not None:
            self.metrics.inc(f"admission.{decision}")
        return decision

    @property
    def under_pressure(self) -> bool:
        """True while the controller is in degrade territory — the
        planner starts below tier 0 for the duration."""
        with self._lock:
            return (
                self._wait_ewma >= self.degrade_wait_ms or self._tokens < 0.0
            )

    def snapshot(self) -> Dict[str, Any]:
        """Counters and live signals for ``GET /health`` / ``GET /stats``."""
        probe = self.queue_probe
        depth: Optional[int] = None
        if probe is not None:
            try:
                depth = max(int(probe()), 0)
            except Exception as exc:
                self._record_probe_error(exc)
                depth = None
        with self._lock:
            return {
                "enabled": True,
                "workers": self.workers,
                "degrade_wait_ms": self.degrade_wait_ms,
                "shed_wait_ms": self.shed_wait_ms,
                "safety": self.safety,
                "tokens_ms": round(self._tokens, 3),
                "burst_ms": self.burst_ms,
                "queue_wait_ewma_ms": round(self._wait_ewma, 3),
                "queue_depth": depth,
                "accepted": self.accepted,
                "degraded": self.degraded,
                "shed": self.shed,
                "probe_errors": self.probe_errors,
            }
