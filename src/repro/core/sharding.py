"""Horizontal sharding: partitioners, shard replicas, and the scatter router.

The paper's MQA system sits on Milvus precisely so the knowledge base can
scale past one node.  This module lifts the single-node engine behind a
routing layer:

* a **partitioner** assigns every object to one of N shards — by a stable
  hash of the object id (the default), or by the object's leading concept
  so semantically close objects co-locate;
* each shard is a **replica group** of R independently built, identical
  framework+index stacks; reads pick a replica round-robin, skipping
  replicas whose last calls failed (health-aware selection), writes apply
  to every replica;
* the :class:`ShardRouter` presents the ordinary
  :class:`~repro.retrieval.base.RetrievalFramework` surface to the
  coordinator: ``retrieve``/``retrieve_batch`` scatter to every shard and
  merge the per-shard top-k exactly on ``(score, object_id)``, so the
  merged ids equal the unsharded ids wherever per-shard search is exact.

MR needs one extra step: its fused scores are functions of shard-*local*
ranks (RRF) or per-fetched-list normalisation spans (CombSUM), so
per-shard fused lists are not mergeable — naive merging is exactly the
rank-fusion information loss the paper's Figure 5 critiques.  The router
therefore ignores MR's fused scores and rebuilds each modality stream's
*global* top-``fetch`` ranking from the per-shard ``(id, distance)``
pairs (distances within one stream are globally comparable), then
re-runs the same fusion the unsharded framework would — restoring exact
result-id parity for MR too.

Ids: shard-local indexes keep their own dense id space (frameworks insist
on it), so every replica stores a *localised clone* of each object
(``dataclasses.replace(obj, object_id=local_id)`` — content is untouched)
plus the local→global translation applied to every search result.

At ``shards=1`` the router is a pure pass-through — the inner framework's
response object is returned unmodified, which is what makes the sharded
path bit-identical to the unsharded engine in that configuration.

Rebalancing: ingest-driven.  When the largest/smallest shard spread
exceeds the configured threshold, the router moves the newest objects to
the smallest shard — each move commits the object to every destination
replica *first*, flips the owner map, and only then tombstones the source
copy, so a search observing the mid-move state sees the object once (the
merge deduplicates) and never loses it.  A router-level deleted set makes
``remove_object`` safe against in-flight moves: a removed id is filtered
out of every shard's results regardless of which copies carry local
tombstones.

Failure: each shard search runs under a per-shard circuit breaker site
(``shard.<i>.search``) when resilience is on.  A failing or open-breaker
shard contributes nothing; the merged response carries
``degraded_reasons`` naming the missing shards, and ``GET /health``
surfaces the per-shard ledger.  Only when *every* shard fails does the
error propagate.

Simulated shard service time (``latency_ms`` / ``latency_ms_per_1k``)
models remote shard servers the same way the load generator's simulated
LLM latency models the remote generation call: a GIL-releasing sleep
proportional to the shard's corpus size.  When it is enabled the scatter
fans out on a thread pool so per-shard service times overlap — the read
scaling a real deployment gets from N shard machines.  It is off by
default and adds nothing to the in-process hot path.
"""

from __future__ import annotations

import hashlib
import inspect
import threading
import time
from contextlib import nullcontext
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.concurrency import run_scattered
from repro.data.modality import Modality
from repro.data.objects import MultiModalObject, RawQuery
from repro.errors import CircuitOpenError, MQAError, RetrievalError
from repro.index.base import SearchStats
from repro.observability import (
    NOOP_SPAN,
    active_cost,
    cost_context,
    labelled,
    trace_branch,
    trace_span,
)
from repro.retrieval import build_framework
from repro.retrieval.fusion import fuse_rankings
from repro.retrieval.base import (
    IndexBuilder,
    ObjectFilter,
    RetrievalFramework,
    RetrievalResponse,
    RetrievedItem,
)

# ----------------------------------------------------------------------
# partitioners
# ----------------------------------------------------------------------


def _stable_hash(data: bytes) -> int:
    """Process-independent hash (``hash()`` varies with PYTHONHASHSEED)."""
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


class HashPartitioner:
    """Assign objects to shards by a stable hash of the object id."""

    name = "hash"

    def __init__(self, shards: int) -> None:
        self.shards = shards

    def assign(self, obj: MultiModalObject) -> int:
        """Shard index in ``[0, shards)`` for ``obj``."""
        return _stable_hash(str(obj.object_id).encode()) % self.shards


class ConceptPartitioner:
    """Assign objects by their leading concept, co-locating similar ones.

    Objects composed from the same dominant concept land on the same
    shard, which keeps concept-local traffic on one replica group.
    Objects without concepts fall back to the id hash.
    """

    name = "concept"

    def __init__(self, shards: int) -> None:
        self.shards = shards

    def assign(self, obj: MultiModalObject) -> int:
        """Shard index in ``[0, shards)`` keyed on the leading concept."""
        if obj.concepts:
            return _stable_hash(obj.concepts[0].encode("utf-8")) % self.shards
        return _stable_hash(str(obj.object_id).encode()) % self.shards


PARTITIONERS: Dict[str, Callable[[int], Any]] = {
    HashPartitioner.name: HashPartitioner,
    ConceptPartitioner.name: ConceptPartitioner,
}


def available_partitioners() -> List[str]:
    """Registered partitioner names, sorted."""
    return sorted(PARTITIONERS)


def build_partitioner(name: str, shards: int):
    """Instantiate a registered partitioner for ``shards`` shards."""
    try:
        factory = PARTITIONERS[name]
    except KeyError:
        raise RetrievalError(
            f"unknown partitioner {name!r}; "
            f"available: {', '.join(available_partitioners())}"
        ) from None
    return factory(shards)


# ----------------------------------------------------------------------
# shard-local corpus view
# ----------------------------------------------------------------------


class ShardView:
    """A knowledge-base-shaped view over one shard's localised objects.

    Frameworks only iterate the corpus at setup time and remember the
    handle, so the view needs iteration, length, and id lookup — nothing
    else from :class:`~repro.data.knowledge_base.KnowledgeBase`.
    """

    def __init__(self, name: str, objects: List[MultiModalObject]) -> None:
        self.name = name
        self._objects = objects

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self):
        return iter(self._objects)

    def get(self, local_id: int) -> MultiModalObject:
        """The localised object with ``local_id``."""
        if not 0 <= local_id < len(self._objects):
            raise RetrievalError(f"shard has no local object {local_id}")
        return self._objects[local_id]

    def append(self, obj: MultiModalObject) -> None:
        """Grow the view by one already-localised object."""
        self._objects.append(obj)


class ShardReplica:
    """One self-contained copy of a shard: framework + indexes + id maps.

    Replicas of the same shard are built independently over the same
    localised corpus; every build is deterministic, so replicas return
    identical results and replica selection can never change a query's
    answer — only which copy does the work.
    """

    def __init__(self, shard_index: int, replica_index: int) -> None:
        self.shard_index = shard_index
        self.replica_index = replica_index
        self.framework: Optional[RetrievalFramework] = None
        self.global_ids: List[int] = []
        self._local_of: Dict[int, int] = {}
        self._view = ShardView(f"shard-{shard_index}.{replica_index}", [])
        self.healthy = True
        self.searches = 0
        self.errors = 0

    # -- construction ---------------------------------------------------
    def build(
        self,
        objects: Sequence[MultiModalObject],
        framework_factory: Callable[[], RetrievalFramework],
        encoder_set,
        index_builder: IndexBuilder,
        weights,
    ) -> None:
        """Localise ``objects`` and build this replica's framework.

        An empty shard stays frameworkless (indexes cannot build over an
        empty matrix) and answers every search with no results; the first
        :meth:`add` builds it lazily.
        """
        self._factory = framework_factory
        self._encoder_set = encoder_set
        self._index_builder = index_builder
        self._weights = weights
        for obj in objects:
            local_id = len(self.global_ids)
            self._view.append(replace(obj, object_id=local_id))
            self._local_of[obj.object_id] = local_id
            self.global_ids.append(obj.object_id)
        if len(self._view):
            framework = framework_factory()
            framework.setup(
                self._view, encoder_set, index_builder, weights=weights
            )
            self.framework = framework

    def add(self, obj: MultiModalObject) -> None:
        """Append the localised clone of ``obj`` (lazy-building if empty)."""
        local_id = len(self.global_ids)
        clone = replace(obj, object_id=local_id)
        if self.framework is None:
            self._view.append(clone)
            self._local_of[obj.object_id] = local_id
            self.global_ids.append(obj.object_id)
            framework = self._factory()
            framework.setup(
                self._view, self._encoder_set, self._index_builder,
                weights=self._weights,
            )
            self.framework = framework
            return
        self.framework.add_object(clone)
        self._view.append(clone)
        self._local_of[obj.object_id] = local_id
        self.global_ids.append(obj.object_id)

    # -- id translation -------------------------------------------------
    def local_id(self, global_id: int) -> Optional[int]:
        """This replica's local id for ``global_id`` (None if absent)."""
        return self._local_of.get(global_id)

    def holds(self, global_id: int) -> bool:
        """Whether this replica stores a copy of ``global_id``."""
        return global_id in self._local_of

    def tombstone(self, global_id: int) -> None:
        """Locally tombstone ``global_id`` (no-op when absent/unbuilt)."""
        local = self._local_of.get(global_id)
        if local is not None and self.framework is not None:
            self.framework.remove_object(local)

    def restore(self, global_id: int) -> None:
        """Lift ``global_id``'s local tombstone (no-op when absent)."""
        local = self._local_of.get(global_id)
        if local is not None and self.framework is not None:
            self.framework.restore_object(local)

    def live_count(self) -> int:
        """Objects held minus local tombstones."""
        if self.framework is None:
            return 0
        return len(self.global_ids) - len(self.framework.deleted_ids)

    # -- search ---------------------------------------------------------
    def _localise_filter(
        self, filter_fn: "ObjectFilter | None"
    ) -> "ObjectFilter | None":
        """Translate a global-id predicate into local-id space."""
        if filter_fn is None:
            return None
        global_ids = self.global_ids
        return lambda local_id: filter_fn(global_ids[local_id])

    def _globalise(self, response: RetrievalResponse) -> RetrievalResponse:
        """Rewrite a response's local ids back into global ids in place."""
        global_ids = self.global_ids
        for item in response.items:
            item.object_id = global_ids[item.object_id]
        if response.per_modality_ids:
            response.per_modality_ids = {
                modality: [global_ids[i] for i in ids]
                for modality, ids in response.per_modality_ids.items()
            }
        return response

    def search(
        self,
        query: RawQuery,
        k: int,
        budget: int,
        weights=None,
        filter_fn: "ObjectFilter | None" = None,
    ) -> RetrievalResponse:
        """Top-``k`` over this replica, results in global ids."""
        self.searches += 1
        if self.framework is None:
            return RetrievalResponse(framework="empty-shard", items=[])
        kwargs: Dict[str, Any] = {}
        if weights is not None:
            kwargs["weights"] = weights
        local_filter = self._localise_filter(filter_fn)
        if local_filter is not None:
            kwargs["filter_fn"] = local_filter
        # Every index clamps k to its corpus size, so small shards simply
        # return everything they have.
        response = self.framework.retrieve(query, k=k, budget=budget, **kwargs)
        return self._globalise(response)

    def search_batch(
        self,
        queries: Sequence[RawQuery],
        k: int,
        budget: int,
        weights=None,
        filter_fn: "ObjectFilter | None" = None,
    ) -> List[RetrievalResponse]:
        """Batched :meth:`search` via the framework's batched kernels."""
        self.searches += len(queries)
        if self.framework is None:
            return [
                RetrievalResponse(framework="empty-shard", items=[])
                for _ in queries
            ]
        kwargs: Dict[str, Any] = {}
        if weights is not None:
            kwargs["weights"] = weights
        local_filter = self._localise_filter(filter_fn)
        if local_filter is not None:
            kwargs["filter_fn"] = local_filter
        responses = self.framework.retrieve_batch(
            queries, k=k, budget=budget, **kwargs
        )
        return [self._globalise(response) for response in responses]

    def snapshot(self) -> Dict[str, Any]:
        """Replica counters for the /health per-shard ledger."""
        return {
            "replica": self.replica_index,
            "objects": len(self.global_ids),
            "live": self.live_count(),
            "healthy": self.healthy,
            "searches": self.searches,
            "errors": self.errors,
        }


class ShardGroup:
    """One shard's replica set with round-robin, health-aware selection.

    ``events`` / ``metrics`` are the coordinator's log and registry;
    when present, replica probes and health transitions surface as
    structured ``replica-probe`` events and labelled counters.
    """

    #: After this many selections that skipped it, an unhealthy replica
    #: gets probed again (it may have recovered).
    PROBE_EVERY = 8

    def __init__(
        self,
        shard_index: int,
        replicas: Sequence[ShardReplica],
        events=None,
        metrics=None,
    ) -> None:
        self.shard_index = shard_index
        self.replicas = list(replicas)
        self.events = events
        self.metrics = metrics
        self._cursor = 0
        self._skips = 0
        self._lock = threading.Lock()
        #: Single-replica fast path: no rotation to arbitrate, so a
        #: healthy lone replica is returned without taking the lock.
        self._single = self.replicas[0] if len(self.replicas) == 1 else None

    def select(self) -> ShardReplica:
        """Next replica: round-robin over healthy ones, periodically
        probing unhealthy ones so they can rejoin after recovery."""
        single = self._single
        if single is not None and single.healthy:
            return single
        chosen: "ShardReplica | None" = None
        probed = False
        with self._lock:
            for _ in range(len(self.replicas)):
                replica = self.replicas[self._cursor % len(self.replicas)]
                self._cursor += 1
                if replica.healthy:
                    chosen = replica
                    break
                self._skips += 1
                if self._skips >= self.PROBE_EVERY:
                    self._skips = 0
                    chosen = replica
                    probed = True
                    break
            if chosen is None:
                # All replicas unhealthy: probe in rotation anyway —
                # serving a possibly-failing replica beats dropping the
                # shard silently.
                chosen = self.replicas[self._cursor % len(self.replicas)]
                self._cursor += 1
                probed = True
        if probed:
            self._note_probe(chosen)
        return chosen

    def _note_probe(self, replica: ShardReplica) -> None:
        """Surface one unhealthy-replica probe (events + labelled metric).

        Called outside the group lock — the event log and registry have
        their own locks and probes are rare by construction.
        """
        if self.metrics is not None:
            self.metrics.inc(
                labelled(
                    "shard.replica_probes",
                    shard=self.shard_index,
                    replica=replica.replica_index,
                )
            )
        if self.events is not None:
            self.events.record(
                "sharding",
                f"shard {self.shard_index}",
                "replica-probe",
                f"probing unhealthy replica "
                f"{self.shard_index}.{replica.replica_index}",
            )

    def mark(self, replica: ShardReplica, ok: bool) -> None:
        """Record the outcome of a call served by ``replica``."""
        with self._lock:
            changed = replica.healthy != ok
            replica.healthy = ok
            if not ok:
                replica.errors += 1
        if changed and self.events is not None:
            state = "recovered" if ok else "marked unhealthy"
            self.events.record(
                "sharding",
                f"shard {self.shard_index}",
                "replica-probe",
                f"replica {self.shard_index}.{replica.replica_index} {state}",
            )

    # Writes fan out to every replica so all copies stay identical.
    def add(self, obj: MultiModalObject) -> None:
        """Ingest ``obj`` into every replica of this shard."""
        for replica in self.replicas:
            replica.add(obj)

    def tombstone(self, global_id: int) -> None:
        """Tombstone ``global_id`` on every replica."""
        for replica in self.replicas:
            replica.tombstone(global_id)

    def restore(self, global_id: int) -> None:
        """Lift ``global_id``'s tombstone on every replica."""
        for replica in self.replicas:
            replica.restore(global_id)

    def holds(self, global_id: int) -> bool:
        """Whether this shard stores a copy of ``global_id``."""
        return self.replicas[0].holds(global_id)

    def live_count(self) -> int:
        """Objects held minus tombstones (replicas are identical)."""
        return self.replicas[0].live_count()

    def live_global_ids(self) -> List[int]:
        """Global ids held and not locally tombstoned, insertion order."""
        primary = self.replicas[0]
        if primary.framework is None:
            return []
        deleted = primary.framework.deleted_ids
        return [
            gid
            for local, gid in enumerate(primary.global_ids)
            if local not in deleted
        ]

    def snapshot(self) -> Dict[str, Any]:
        """Shard counters plus every replica's, for /health."""
        return {
            "shard": self.shard_index,
            "objects": len(self.replicas[0].global_ids),
            "live": self.live_count(),
            "replicas": [replica.snapshot() for replica in self.replicas],
        }


# ----------------------------------------------------------------------
# the router
# ----------------------------------------------------------------------


def merge_shard_topk(
    shard_results: Sequence[Sequence[Tuple[int, float]]],
    k: int,
    drop: "frozenset | set | None" = None,
) -> List[Tuple[int, float]]:
    """Exact top-``k`` merge of per-shard ``(object_id, score)`` lists.

    Smaller scores win; ties break on the object id so the merge is a
    deterministic function of its inputs.  Duplicate ids (an object live
    on two shards mid-move) keep their best-scoring occurrence.  ``drop``
    removes ids regardless of shard state — the router passes its deleted
    set so a removed object can never resurface from a stale copy.
    """
    best: Dict[int, float] = {}
    for results in shard_results:
        for object_id, score in results:
            if drop is not None and object_id in drop:
                continue
            current = best.get(object_id)
            if current is None or score < current:
                best[object_id] = score
    ranked = sorted(best.items(), key=lambda pair: (pair[1], pair[0]))
    return ranked[:k]


class ShardRouter(RetrievalFramework):
    """Scatter-gather retrieval over hash-partitioned shard replicas.

    Presents the plain :class:`RetrievalFramework` surface, so the
    coordinator, query execution, cache, and micro-batcher all work
    unchanged above it.  ``weights`` and ``filter_fn`` are declared
    capabilities and validated against the *inner* framework at call
    time, mirroring the unsharded capability errors.

    Args:
        framework_name: Registered inner framework ("mr" / "je" / "must").
        framework_params: Factory parameters for each replica's framework.
        shards: Number of shards (1 = pass-through).
        replicas: Replicas per shard.
        partitioner: Registered partitioner name.
        rebalance_threshold: Live-object spread (largest minus smallest
            shard) that triggers an ingest-time rebalance; 0 disables.
        latency_ms: Simulated fixed per-shard-call service time.
        latency_ms_per_1k: Simulated service time per 1000 live objects
            on the called shard (models a remote shard scanning its
            partition); enables the parallel scatter pool.
        resilience: Optional :class:`~repro.core.resilience.ResilienceManager`;
            when enabled, every shard search runs under its own breaker
            site ``shard.<i>.search``.
        events: Optional :class:`~repro.core.events.EventLog`; rebalance
            moves, owner flips, and replica probes are recorded as
            structured ``shard-rebalance`` / ``replica-probe`` events.
        metrics: Optional :class:`~repro.observability.metrics.MetricsRegistry`;
            the same churn is counted as labelled families
            (``shard.moves{source=...,destination=...}``,
            ``shard.replica_probes{shard=...,replica=...}``).
    """

    name = "shard-router"

    def __init__(
        self,
        framework_name: str,
        framework_params: "Dict[str, Any] | None" = None,
        shards: int = 1,
        replicas: int = 1,
        partitioner: str = "hash",
        rebalance_threshold: int = 8,
        latency_ms: float = 0.0,
        latency_ms_per_1k: float = 0.0,
        resilience=None,
        events=None,
        metrics=None,
    ) -> None:
        super().__init__()
        if shards < 1:
            raise RetrievalError(f"shards must be >= 1, got {shards}")
        if replicas < 1:
            raise RetrievalError(f"replicas must be >= 1, got {replicas}")
        self.framework_name = framework_name
        self.framework_params = dict(framework_params or {})
        self.shards = shards
        self.replica_count = replicas
        self.partitioner = build_partitioner(partitioner, shards)
        self.rebalance_threshold = rebalance_threshold
        self.latency_ms = latency_ms
        self.latency_ms_per_1k = latency_ms_per_1k
        self.resilience = resilience
        self.events = events
        self.metrics = metrics
        self.groups: List[ShardGroup] = []
        self._capabilities: "set | None" = None
        self._probe: "RetrievalFramework | None" = None
        self._owner: Dict[int, int] = {}
        self._meta_lock = threading.Lock()
        self._pool = None
        self.moves = 0
        self.rebalances = 0
        self.degraded_searches = 0

    # ------------------------------------------------------------------
    # setup / writes
    # ------------------------------------------------------------------
    def _framework_factory(self) -> RetrievalFramework:
        return build_framework(self.framework_name, self.framework_params)

    def setup(
        self,
        kb,
        encoder_set,
        index_builder: IndexBuilder,
        weights: "Dict[Modality, float] | None" = None,
    ) -> None:
        """Partition ``kb`` and build every shard's replica set."""
        start = time.perf_counter()
        assignments: List[List[MultiModalObject]] = [[] for _ in range(self.shards)]
        for obj in kb:
            shard = self.partitioner.assign(obj)
            self._owner[obj.object_id] = shard
            assignments[shard].append(obj)
        self.groups = []
        for shard_index, objects in enumerate(assignments):
            replicas = []
            for replica_index in range(self.replica_count):
                replica = ShardReplica(shard_index, replica_index)
                replica.build(
                    objects, self._framework_factory, encoder_set,
                    index_builder, weights,
                )
                replicas.append(replica)
            self.groups.append(
                ShardGroup(
                    shard_index,
                    replicas,
                    events=self.events,
                    metrics=self.metrics,
                )
            )
        self.kb = kb
        self.encoder_set = encoder_set
        self.setup_seconds = time.perf_counter() - start

    def add_object(self, obj: MultiModalObject) -> int:
        """Route one ingested object to its shard (then maybe rebalance)."""
        self._require_ready()
        shard = self.partitioner.assign(obj)
        self.groups[shard].add(obj)
        with self._meta_lock:
            self._owner[obj.object_id] = shard
        self._maybe_rebalance()
        return obj.object_id

    def remove_object(self, object_id: int) -> None:
        """Tombstone globally, then on the owning shard's replicas.

        The router-level deleted set is the correctness mechanism: every
        search filters against it, so the id stays gone even if a
        mid-flight move leaves an untombstoned copy on another shard.
        """
        self._require_ready()
        if not isinstance(object_id, int) or object_id < 0:
            raise RetrievalError(f"invalid object id: {object_id!r}")
        with self._meta_lock:
            owner = self._owner.get(object_id)
            if owner is None:
                raise RetrievalError(
                    f"object {object_id} is not held by any shard"
                )
            self._deleted.add(object_id)
        self.groups[owner].tombstone(object_id)

    def restore_object(self, object_id: int) -> None:
        self._require_ready()
        with self._meta_lock:
            self._deleted.discard(object_id)
            owner = self._owner.get(object_id)
        if owner is not None:
            self.groups[owner].restore(object_id)

    # ------------------------------------------------------------------
    # rebalancing (ingest-driven)
    # ------------------------------------------------------------------
    def _maybe_rebalance(self) -> None:
        """Move objects from the largest to the smallest shard when the
        live-count spread exceeds the threshold."""
        if self.rebalance_threshold <= 0 or self.shards < 2:
            return
        counts = [group.live_count() for group in self.groups]
        largest = max(range(self.shards), key=lambda i: counts[i])
        smallest = min(range(self.shards), key=lambda i: counts[i])
        spread = counts[largest] - counts[smallest]
        if spread <= self.rebalance_threshold:
            return
        self.rebalances += 1
        to_move = spread // 2
        if self.metrics is not None:
            self.metrics.inc(
                labelled(
                    "shard.rebalances", source=largest, destination=smallest
                )
            )
        if self.events is not None:
            self.events.record(
                "sharding",
                self.name,
                "shard-rebalance",
                f"spread {spread} > threshold {self.rebalance_threshold}: "
                f"moving up to {to_move} object(s) from shard {largest} "
                f"to shard {smallest}",
            )
        # Newest objects move first: they are the cheapest to re-encode
        # conceptually (just-ingested) and moving them converges the
        # spread without touching the stable head of the shard.
        candidates = self.groups[largest].live_global_ids()[::-1]
        moved = 0
        with trace_span(
            "shard-rebalance", source=largest, destination=smallest,
            spread=spread,
        ) as span:
            for global_id in candidates:
                if moved >= to_move:
                    break
                with self._meta_lock:
                    if global_id in self._deleted:
                        continue
                self._move_object(global_id, largest, smallest)
                moved += 1
            span.set(moved=moved)

    def _move_object(self, global_id: int, source: int, destination: int) -> None:
        """One migration: destination commit → owner flip → source tombstone."""
        assert self.kb is not None
        obj = self.kb.get(global_id)
        self._commit_to_destination(obj, destination)
        with self._meta_lock:
            self._owner[global_id] = destination
        self._tombstone_source(global_id, source)
        self.moves += 1
        if self.metrics is not None:
            self.metrics.inc(
                labelled("shard.moves", source=source, destination=destination)
            )
        if self.events is not None:
            self.events.record(
                "sharding",
                self.name,
                "shard-rebalance",
                f"moved object {global_id}: shard {source} -> {destination} "
                "(owner flipped)",
            )

    def _commit_to_destination(self, obj: MultiModalObject, destination: int) -> None:
        """Step 1 of a move: the object becomes live on the destination.

        Split out as a method so the deterministic concurrency harness can
        pause a move between commit and source-tombstone.
        """
        self.groups[destination].add(obj)

    def _tombstone_source(self, global_id: int, source: int) -> None:
        """Step 2 of a move: retire the source copy (after the commit)."""
        self.groups[source].tombstone(global_id)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _deleted_filter(
        self, filter_fn: "ObjectFilter | None"
    ) -> "ObjectFilter | None":
        """Fold the router-level deleted set into the global-id filter."""
        with self._meta_lock:
            if not self._deleted:
                return filter_fn
            deleted = set(self._deleted)
        if filter_fn is None:
            return lambda object_id: object_id not in deleted
        return lambda object_id: object_id not in deleted and filter_fn(object_id)

    def _framework_probe(self) -> RetrievalFramework:
        """A never-set-up instance of the inner framework, built once —
        used to read signatures and fusion settings without a corpus."""
        if self._probe is None:
            self._probe = self._framework_factory()
        return self._probe

    def _inner_capabilities(self) -> set:
        """Keyword arguments the inner framework's ``retrieve`` accepts
        (computed once from the probe instance's signature)."""
        if self._capabilities is None:
            self._capabilities = set(
                inspect.signature(self._framework_probe().retrieve).parameters
            )
        return self._capabilities

    def _check_capabilities(self, weights, filter_fn) -> None:
        """Reject kwargs the inner framework cannot honour, with the same
        error shape the unsharded engine produces."""
        parameters = self._inner_capabilities()
        if weights is not None and "weights" not in parameters:
            raise RetrievalError(
                f"framework {self.framework_name!r} does not support "
                "per-query modality weights"
            )
        if filter_fn is not None and "filter_fn" not in parameters:
            raise RetrievalError(
                f"framework {self.framework_name!r} does not support "
                "filtered retrieval"
            )

    def _simulate_service(self, group: ShardGroup) -> None:
        """Sleep for the shard's modelled remote service time (see module
        docstring); a no-op when both knobs are 0."""
        if self.latency_ms <= 0 and self.latency_ms_per_1k <= 0:
            return  # keep live_count() off the un-simulated hot path
        total_ms = self.latency_ms + (
            self.latency_ms_per_1k * group.live_count() / 1000.0
        )
        if total_ms > 0:
            time.sleep(total_ms / 1000.0)

    @property
    def _parallel(self) -> bool:
        """Scatter on threads only when simulated service time is on —
        overlapping sleeps models N shard servers working concurrently;
        for in-process CPU-bound shards a pool only adds overhead."""
        return self.shards > 1 and (
            self.latency_ms > 0 or self.latency_ms_per_1k > 0
        )

    def _scatter_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.shards, thread_name_prefix="shard-scatter"
            )
        return self._pool

    def _guarded_shard_call(
        self,
        shard_index: int,
        fn: Callable[[], Any],
        degraded: List[str],
        telemetry: "Dict[str, Any] | None" = None,
    ) -> Any:
        """Run one shard's search; failures degrade to a missing shard.

        Returns None when the shard contributed nothing.  ``degraded``
        collects human-readable reasons (also the /health story);
        ``telemetry``, when given, receives the serving replica index so
        the caller can label spans and cost entries.
        """
        group = self.groups[shard_index]
        replica = group.select()
        if telemetry is not None:
            telemetry["replica"] = replica.replica_index
        site = f"shard.{shard_index}.search"

        def call():
            self._simulate_service(group)
            return fn(replica)

        try:
            if self.resilience is not None and self.resilience.enabled:
                result = self.resilience.call(site, call)
            else:
                result = call()
        except CircuitOpenError as exc:
            group.mark(replica, False)
            degraded.append(f"shard {shard_index} unavailable (breaker open)")
            self._note_degraded(exc)
            return None
        except MQAError as exc:
            group.mark(replica, False)
            degraded.append(
                f"shard {shard_index} unavailable ({type(exc).__name__})"
            )
            self._note_degraded(exc)
            return None
        group.mark(replica, True)
        return result

    def _note_degraded(self, exc: Exception) -> None:
        with self._meta_lock:
            self.degraded_searches += 1
            self._last_error = exc

    # -- scatter observability -----------------------------------------
    @staticmethod
    def _measure(result: Any) -> Tuple[int, int, int]:
        """(items, distance_evaluations, hops) for one shard's result —
        a single response (``retrieve``) or the per-query response list
        one shard returns from ``retrieve_batch``."""
        if result is None:
            return 0, 0, 0
        if isinstance(result, list):
            return (
                sum(len(r.items) for r in result),
                sum(r.stats.distance_evaluations for r in result),
                sum(r.stats.hops for r in result),
            )
        return (
            len(result.items),
            result.stats.distance_evaluations,
            result.stats.hops,
        )

    def _scatter(
        self,
        call_of: Callable[[ShardReplica], Any],
        degraded: List[str],
        span_attrs: Dict[str, Any],
        indices: "Sequence[int] | None" = None,
    ) -> List[Any]:
        """Fan ``call_of`` out to the target shards, observing the scatter.

        ``indices`` restricts the fan-out to a subset of shards (the
        planner's degraded-mode fan-out limit); ``None`` scatters to every
        shard.  The returned list is aligned with the targets.

        With a trace active, the fan-out nests under one ``scatter`` span
        with a ``shard-search`` child per shard (replica, timing, and
        work counters attached) — branches are created here on the
        coordinating thread, entered on whichever thread serves the
        shard, and attached back in shard order so one sharded query
        yields a single deterministic trace.  With an ambient cost
        profile, each shard contributes one entry to ``profile.shards``;
        the ambient profile is suppressed around the inner call so inline
        and pooled scatter account identically (pool threads never
        inherit it).  With neither active this is the bare scatter loop.
        """
        targets = (
            list(range(self.shards)) if indices is None else list(indices)
        )
        profile = active_cost()
        with trace_span(
            "scatter", shards=len(targets), **span_attrs
        ) as scatter_span:
            traced = scatter_span is not NOOP_SPAN
            observe = traced or profile is not None
            branches = (
                [
                    trace_branch("shard-search", shard=i)
                    for i in targets
                ]
                if traced
                else [None] * len(targets)
            )
            marks: "List[Dict[str, Any] | None]" = [None] * len(targets)

            def shard_task(position: int) -> Any:
                shard_index = targets[position]
                if not observe:
                    return self._guarded_shard_call(
                        shard_index, call_of, degraded
                    )
                telemetry: Dict[str, Any] = {}
                marks[position] = telemetry
                branch = branches[position]
                suppress = (
                    cost_context(None)
                    if profile is not None
                    else nullcontext()
                )
                started = time.perf_counter()
                if branch is not None:
                    with branch, suppress:
                        result = self._guarded_shard_call(
                            shard_index, call_of, degraded, telemetry
                        )
                else:
                    with suppress:
                        result = self._guarded_shard_call(
                            shard_index, call_of, degraded, telemetry
                        )
                telemetry["ms"] = (time.perf_counter() - started) * 1000.0
                return result

            responses = run_scattered(
                [lambda p=p: shard_task(p) for p in range(len(targets))],
                pool=self._scatter_pool() if self._parallel else None,
            )
            if traced:
                for position, branch in enumerate(branches):
                    result = responses[position]
                    telemetry = marks[position] or {}
                    items, evals, hops = self._measure(result)
                    branch.span.set(
                        replica=telemetry.get("replica"),
                        ok=result is not None,
                        items=items,
                        distance_evaluations=evals,
                        hops=hops,
                    )
                    branch.attach(scatter_span)
                scatter_span.set(
                    answered=sum(1 for r in responses if r is not None)
                )
            if profile is not None:
                for position, result in enumerate(responses):
                    telemetry = marks[position] or {}
                    items, evals, hops = self._measure(result)
                    ok = result is not None
                    profile.add_shard(
                        shard=targets[position],
                        replica=telemetry.get("replica"),
                        ok=ok,
                        ms=round(telemetry.get("ms", 0.0), 3),
                        items=items,
                        distance_evaluations=evals,
                        hops=hops,
                    )
                    if not ok:
                        profile.shards_failed += 1
        return responses

    def _merge_observed(self, merge_fn: Callable[[], Any], **span_attrs) -> Any:
        """Run the gather-side merge/re-fuse under a ``shard-merge`` span,
        timing it into the ambient profile's ``merge`` stage."""
        profile = active_cost()
        with trace_span("shard-merge", **span_attrs):
            if profile is None:
                return merge_fn()
            started = time.perf_counter()
            merged = merge_fn()
            profile.add_stage(
                "merge", (time.perf_counter() - started) * 1000.0
            )
        return merged

    def retrieve(
        self,
        query: RawQuery,
        k: int,
        budget: int = 64,
        weights: "Dict[Modality, float] | None" = None,
        filter_fn: "ObjectFilter | None" = None,
        fanout: "int | None" = None,
    ) -> RetrievalResponse:
        """Scatter ``query`` to every shard and merge the top-k exactly.

        ``fanout`` (the planner's degraded-mode knob) limits the scatter
        to the first ``fanout`` shards; the result is marked degraded
        because the unqueried shards may hold better neighbours.
        """
        self._require_ready()
        if k <= 0:
            raise RetrievalError(f"k must be positive, got {k}")
        self._check_capabilities(weights, filter_fn)
        if self.shards == 1:
            return self._passthrough(query, k, budget, weights, filter_fn)
        shard_filter = self._deleted_filter(filter_fn)
        degraded: List[str] = []
        indices: "List[int] | None" = None
        if fanout is not None and 1 <= fanout < self.shards:
            indices = list(range(fanout))
            degraded.append(
                f"fanout limited to {fanout}/{self.shards} shards (planner)"
            )
        responses = self._scatter(
            lambda replica: replica.search(
                query, k, budget, weights=weights, filter_fn=shard_filter
            ),
            degraded,
            {"k": k},
            indices=indices,
        )
        answered = [r for r in responses if r is not None]
        if not answered:
            raise RetrievalError(
                f"all {self.shards} shards unavailable "
                f"(last: {type(self._last_error).__name__}: {self._last_error})"
            )
        return self._merge_observed(
            lambda: self._merge(answered, k, degraded, weights=weights),
            shards_answered=len(answered),
        )

    def retrieve_batch(
        self,
        queries: Sequence[RawQuery],
        k: int,
        budget: int = 64,
        weights: "Dict[Modality, float] | None" = None,
        filter_fn: "ObjectFilter | None" = None,
    ) -> List[RetrievalResponse]:
        """Batched scatter: one ``retrieve_batch`` per shard (the PR 4
        batched kernels are the per-shard unit of work), merged per
        query."""
        self._require_ready()
        if k <= 0:
            raise RetrievalError(f"k must be positive, got {k}")
        self._check_capabilities(weights, filter_fn)
        queries = list(queries)
        if not queries:
            return []
        if self.shards == 1:
            return self._passthrough_batch(queries, k, budget, weights, filter_fn)
        shard_filter = self._deleted_filter(filter_fn)
        degraded: List[str] = []
        per_shard = self._scatter(
            lambda replica: replica.search_batch(
                queries, k, budget, weights=weights, filter_fn=shard_filter
            ),
            degraded,
            {"k": k, "queries": len(queries)},
        )
        answered = [r for r in per_shard if r is not None]
        if not answered:
            raise RetrievalError(
                f"all {self.shards} shards unavailable "
                f"(last: {type(self._last_error).__name__}: {self._last_error})"
            )

        def merge_all() -> List[RetrievalResponse]:
            return [
                self._merge(
                    [batch[position] for batch in answered],
                    k,
                    degraded,
                    weights=weights,
                )
                for position in range(len(queries))
            ]

        return self._merge_observed(
            merge_all, shards_answered=len(answered), queries=len(queries)
        )

    _last_error: Exception = RetrievalError("no shard searched yet")

    def _passthrough(self, query, k, budget, weights, filter_fn):
        """shards=1: delegate unmodified — the bit-identity fast path.

        Replica selection and simulated service time still apply, but the
        inner framework's response object is returned as-is.
        """
        group = self.groups[0]
        replica = group.select()
        self._simulate_service(group)
        kwargs: Dict[str, Any] = {}
        if weights is not None:
            kwargs["weights"] = weights
        if filter_fn is not None:
            kwargs["filter_fn"] = filter_fn
        if replica.framework is None:
            return RetrievalResponse(framework="empty-shard", items=[])
        # Single shard ⇒ local ids equal global ids; no translation.
        return replica.framework.retrieve(query, k=k, budget=budget, **kwargs)

    def _passthrough_batch(self, queries, k, budget, weights, filter_fn):
        group = self.groups[0]
        replica = group.select()
        self._simulate_service(group)
        kwargs: Dict[str, Any] = {}
        if weights is not None:
            kwargs["weights"] = weights
        if filter_fn is not None:
            kwargs["filter_fn"] = filter_fn
        if replica.framework is None:
            return [
                RetrievalResponse(framework="empty-shard", items=[])
                for _ in queries
            ]
        return replica.framework.retrieve_batch(
            queries, k=k, budget=budget, **kwargs
        )

    def _merge(
        self,
        responses: Sequence[RetrievalResponse],
        k: int,
        degraded: List[str],
        weights: "Dict[Modality, float] | None" = None,
    ) -> RetrievalResponse:
        """Exact merge of per-shard responses.

        Distance-scored frameworks (JE, MUST) merge at the item level via
        :func:`merge_shard_topk`.  Rank-fusion frameworks (MR) signal
        themselves by carrying per-stream distances; their fused scores
        are shard-local, so the router re-fuses at the stream level
        instead (:meth:`_merge_rank_fusion`).
        """
        with self._meta_lock:
            drop = frozenset(self._deleted)
        if any(response.per_modality_distances for response in responses):
            merged = self._merge_rank_fusion(responses, k, drop, weights)
        else:
            ranked = merge_shard_topk(
                [
                    [(item.object_id, item.score) for item in response.items]
                    for response in responses
                ],
                k,
                drop=drop,
            )
            items = [
                RetrievedItem(object_id=object_id, score=score, rank=rank)
                for rank, (object_id, score) in enumerate(ranked)
            ]
            stats = SearchStats()
            for response in responses:
                stats.merge(response.stats)
            per_modality: Dict[Modality, List[int]] = {}
            for response in responses:
                for modality, ids in response.per_modality_ids.items():
                    per_modality.setdefault(modality, []).extend(ids)
            merged = RetrievalResponse(
                framework=self._merged_name(responses),
                items=items,
                stats=stats,
                per_modality_ids=per_modality,
            )
        if degraded:
            merged.degraded_reasons = list(dict.fromkeys(degraded))
        return merged

    @staticmethod
    def _merged_name(responses: Sequence[RetrievalResponse]) -> str:
        """The inner framework's name, skipping empty-shard placeholders."""
        for response in responses:
            if response.framework != "empty-shard":
                return response.framework
        return responses[0].framework

    def _merge_rank_fusion(
        self,
        responses: Sequence[RetrievalResponse],
        k: int,
        drop: frozenset,
        weights: "Dict[Modality, float] | None",
    ) -> RetrievalResponse:
        """Stream-level re-fusion for rank-fusion frameworks (MR).

        Per-shard fused scores encode shard-local ranks and cannot be
        merged.  Distances within one modality stream *are* globally
        comparable, so the router pools every shard's ``(id, distance)``
        stream fragments, rebuilds each stream's global top-``fetch``
        ranking (best-distance dedup for mid-move copies, dropped ids
        removed, ``(distance, id)`` tie-break), and re-runs the same
        fusion the unsharded framework applies — same strategy, same
        expansion, same stream weights.  When every shard returned its
        full stream top-``fetch``, the rebuilt streams equal the
        unsharded streams and the fused ids match exactly.
        """
        probe = self._framework_probe()
        fetch = getattr(probe, "expansion", 1) * k
        order: List[Modality] = []
        pooled: Dict[Modality, Dict[int, float]] = {}
        for response in responses:
            for modality, ids in response.per_modality_ids.items():
                stream_distances = response.per_modality_distances.get(
                    modality, []
                )
                if modality not in pooled:
                    pooled[modality] = {}
                    order.append(modality)
                best = pooled[modality]
                for object_id, distance in zip(ids, stream_distances):
                    if object_id in drop:
                        continue
                    if object_id not in best or distance < best[object_id]:
                        best[object_id] = distance
        rankings: List[List[int]] = []
        distances: List[List[float]] = []
        per_modality: Dict[Modality, List[int]] = {}
        per_modality_distances: Dict[Modality, List[float]] = {}
        for modality in order:
            ranked = sorted(
                pooled[modality].items(), key=lambda pair: (pair[1], pair[0])
            )[:fetch]
            rankings.append([object_id for object_id, _ in ranked])
            distances.append([distance for _, distance in ranked])
            per_modality[modality] = rankings[-1]
            per_modality_distances[modality] = distances[-1]
        stream_weights = None
        if weights is not None:
            parsed = {
                Modality.parse(m): float(w) for m, w in weights.items()
            }
            stream_weights = [parsed.get(m, 1.0) for m in order]
        fused = fuse_rankings(
            rankings,
            distances,
            k,
            strategy=getattr(probe, "fusion", "rrf"),
            stream_weights=stream_weights,
        )
        items = [
            RetrievedItem(object_id=object_id, score=score, rank=rank)
            for rank, (object_id, score) in enumerate(fused)
        ]
        stats = SearchStats()
        for response in responses:
            stats.merge(response.stats)
        return RetrievalResponse(
            framework=self._merged_name(responses),
            items=items,
            stats=stats,
            per_modality_ids=per_modality,
            per_modality_distances=per_modality_distances,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def owner_of(self, object_id: int) -> Optional[int]:
        """The shard currently owning ``object_id`` (None if unknown)."""
        with self._meta_lock:
            return self._owner.get(object_id)

    def snapshot(self) -> Dict[str, Any]:
        """The per-shard ledger surfaced in ``GET /health``."""
        breakers = {}
        if self.resilience is not None and self.resilience.enabled:
            snap = self.resilience.snapshot()
            breakers = {
                site: state
                for site, state in (snap.get("breakers") or {}).items()
                if site.startswith("shard.")
            }
        return {
            "enabled": True,
            "shards": self.shards,
            "replicas": self.replica_count,
            "partitioner": self.partitioner.name,
            "rebalance_threshold": self.rebalance_threshold,
            "objects": sum(group.live_count() for group in self.groups),
            "deleted": len(self._deleted),
            "moves": self.moves,
            "rebalances": self.rebalances,
            "degraded_searches": self.degraded_searches,
            "per_shard": [group.snapshot() for group in self.groups],
            "breakers": breakers,
        }

    def describe(self) -> str:
        sizes = ", ".join(str(group.live_count()) for group in self.groups)
        return (
            f"shard router: {self.shards} shard(s) × {self.replica_count} "
            f"replica(s) over {self.framework_name!r}, "
            f"partitioner {self.partitioner.name!r}, live per shard [{sizes}]"
        )

    def close(self) -> None:
        """Shut down the scatter pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
