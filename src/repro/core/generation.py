"""Component 5: answer generation.

Assembles the prompt from query + retrieved context + dialogue history,
invokes the configured LLM, verifies grounding, and falls back to a plain
result listing when no LLM is configured ("users can still carry out a
multi-modal QA procedure through direct engagement with the query
execution module").
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from repro.core.answer import Answer, AnswerItem
from repro.data.knowledge_base import KnowledgeBase
from repro.data.modality import Modality
from repro.data.objects import MultiModalObject
from repro.errors import UnknownObjectError
from repro.llm.base import GenerationRequest, LanguageModel
from repro.llm.grounding import check_grounding
from repro.llm.prompts import ContextItem, DialogueTurn, PromptBuilder
from repro.retrieval import RetrievalResponse


def describe_object(obj: MultiModalObject) -> str:
    """A prompt-ready description of ``obj``, whatever its modalities.

    Text-bearing objects use their rendered description verbatim.  Objects
    without a text modality used to collapse to ``"(no description)"``,
    which threw their image/audio payloads away before the prompt was
    built; instead, name each non-text modality with its payload shape so
    the generation layer (and per-claim source attribution) still sees
    what the object carries.
    """
    if obj.has(Modality.TEXT):
        return str(obj.get(Modality.TEXT))
    parts: List[str] = []
    for modality in obj.modalities:
        content = obj.get(modality)
        shape = getattr(content, "shape", None)
        if shape:
            dims = "x".join(str(dim) for dim in shape)
            parts.append(f"{modality.value} {dims}")
        else:
            parts.append(modality.value)
    if not parts:
        return "(no content)"
    return f"[{' + '.join(parts)} attachment]"


def context_items(
    response: RetrievalResponse,
    kb: KnowledgeBase,
    preferred_ids: Set[int] = frozenset(),
) -> List[ContextItem]:
    """Resolve a retrieval response into prompt context items.

    An id that no longer resolves (the object was removed between
    retrieval and generation — stale cache hit or concurrent
    ``remove_object``) is skipped rather than failing the round: by the
    time generation runs, the retrieval step is already committed, and a
    missing object simply has nothing to contribute to the prompt.
    """
    items: List[ContextItem] = []
    for retrieved in response.items:
        try:
            obj = kb.get(retrieved.object_id)
        except UnknownObjectError:
            continue
        items.append(
            ContextItem(
                object_id=retrieved.object_id,
                description=describe_object(obj),
                score=retrieved.score,
                preferred=retrieved.object_id in preferred_ids,
            )
        )
    return items


class AnswerGeneration:
    """Turns retrieval output into a conversational answer."""

    name = "answer generation"

    def __init__(
        self,
        llm: Optional[LanguageModel] = None,
        temperature: float = 0.0,
        prompt_builder: Optional[PromptBuilder] = None,
    ) -> None:
        self.llm = llm
        self.temperature = temperature
        self.prompts = prompt_builder or PromptBuilder()

    def _context_items(
        self,
        response: RetrievalResponse,
        kb: KnowledgeBase,
        preferred_ids: Set[int],
    ) -> List[ContextItem]:
        return context_items(response, kb, preferred_ids)

    def generate(
        self,
        user_text: str,
        response: Optional[RetrievalResponse],
        kb: Optional[KnowledgeBase],
        history: Sequence[DialogueTurn] = (),
        preferred_ids: Iterable[int] = (),
        had_image: bool = False,
        round_index: int = 0,
    ) -> Answer:
        """Produce the round's :class:`Answer`.

        ``response``/``kb`` of None means LLM-only mode (no retrieval).
        """
        preferred = set(preferred_ids)
        context: List[ContextItem] = []
        if response is not None and kb is not None:
            context = self._context_items(response, kb, preferred)

        answer_items = [
            AnswerItem(
                object_id=item.object_id,
                description=item.description,
                score=item.score,
                preferred=item.preferred,
            )
            for item in context
        ]
        framework = response.framework if response is not None else ""
        stats = response.stats if response is not None else None

        if self.llm is None:
            if answer_items:
                listing = "; ".join(
                    f"#{item.object_id} {item.description}" for item in answer_items
                )
                text = f"Top results: {listing}."
            else:
                text = (
                    "No language model or knowledge base is configured; "
                    "nothing to answer with."
                )
            answer = Answer(
                text=text,
                items=answer_items,
                grounded=True,
                framework=framework,
                round_index=round_index,
            )
        else:
            request: GenerationRequest = self.prompts.build(
                user_text, context=context, history=history, had_image=had_image
            )
            result = self.llm.generate(request, temperature=self.temperature)
            check_grounding(result, (item.object_id for item in context), strict=True)
            answer = Answer(
                text=result.text,
                items=answer_items,
                grounded=result.grounded,
                framework=framework,
                llm=result.model,
                round_index=round_index,
            )
        if stats is not None:
            answer.search_stats = stats
        return answer
