"""Component 5: answer generation.

Assembles the prompt from query + retrieved context + dialogue history,
invokes the configured LLM, verifies grounding, and falls back to a plain
result listing when no LLM is configured ("users can still carry out a
multi-modal QA procedure through direct engagement with the query
execution module").
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from repro.core.answer import Answer, AnswerItem
from repro.data.knowledge_base import KnowledgeBase
from repro.data.modality import Modality
from repro.llm.base import GenerationRequest, LanguageModel
from repro.llm.grounding import check_grounding
from repro.llm.prompts import ContextItem, DialogueTurn, PromptBuilder
from repro.retrieval import RetrievalResponse


class AnswerGeneration:
    """Turns retrieval output into a conversational answer."""

    name = "answer generation"

    def __init__(
        self,
        llm: Optional[LanguageModel] = None,
        temperature: float = 0.0,
        prompt_builder: Optional[PromptBuilder] = None,
    ) -> None:
        self.llm = llm
        self.temperature = temperature
        self.prompts = prompt_builder or PromptBuilder()

    def _context_items(
        self,
        response: RetrievalResponse,
        kb: KnowledgeBase,
        preferred_ids: Set[int],
    ) -> List[ContextItem]:
        items: List[ContextItem] = []
        for retrieved in response.items:
            obj = kb.get(retrieved.object_id)
            description = (
                obj.get(Modality.TEXT) if obj.has(Modality.TEXT) else "(no description)"
            )
            items.append(
                ContextItem(
                    object_id=retrieved.object_id,
                    description=description,
                    score=retrieved.score,
                    preferred=retrieved.object_id in preferred_ids,
                )
            )
        return items

    def generate(
        self,
        user_text: str,
        response: Optional[RetrievalResponse],
        kb: Optional[KnowledgeBase],
        history: Sequence[DialogueTurn] = (),
        preferred_ids: Iterable[int] = (),
        had_image: bool = False,
        round_index: int = 0,
    ) -> Answer:
        """Produce the round's :class:`Answer`.

        ``response``/``kb`` of None means LLM-only mode (no retrieval).
        """
        preferred = set(preferred_ids)
        context: List[ContextItem] = []
        if response is not None and kb is not None:
            context = self._context_items(response, kb, preferred)

        answer_items = [
            AnswerItem(
                object_id=item.object_id,
                description=item.description,
                score=item.score,
                preferred=item.preferred,
            )
            for item in context
        ]
        framework = response.framework if response is not None else ""
        stats = response.stats if response is not None else None

        if self.llm is None:
            if answer_items:
                listing = "; ".join(
                    f"#{item.object_id} {item.description}" for item in answer_items
                )
                text = f"Top results: {listing}."
            else:
                text = (
                    "No language model or knowledge base is configured; "
                    "nothing to answer with."
                )
            answer = Answer(
                text=text,
                items=answer_items,
                grounded=True,
                framework=framework,
                round_index=round_index,
            )
        else:
            request: GenerationRequest = self.prompts.build(
                user_text, context=context, history=history, had_image=had_image
            )
            result = self.llm.generate(request, temperature=self.temperature)
            check_grounding(result, (item.object_id for item in context), strict=True)
            answer = Answer(
                text=result.text,
                items=answer_items,
                grounded=result.grounded,
                framework=framework,
                llm=result.model,
                round_index=round_index,
            )
        if stats is not None:
            answer.search_stats = stats
        return answer
