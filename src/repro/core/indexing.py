"""Component 3: index construction.

Instantiates the configured retrieval framework and lets it build its index
structures (one unified graph for MUST, one per modality for MR, one joint
index for JE) over the encoded knowledge base.

With sharding configured (``config.shards`` / ``config.replicas``) the
framework is built *per shard replica* behind a
:class:`~repro.core.sharding.ShardRouter`, which presents the same
framework surface to the rest of the system.
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import MQAConfig
from repro.data.knowledge_base import KnowledgeBase
from repro.data.modality import Modality
from repro.encoders import EncoderSet
from repro.index import build_index
from repro.retrieval import RetrievalFramework, build_framework


class IndexConstruction:
    """Builds the framework + index stack described by the configuration."""

    name = "index construction"

    def run(
        self,
        config: MQAConfig,
        kb: KnowledgeBase,
        encoder_set: EncoderSet,
        weights: Dict[Modality, float],
        resilience=None,
        events=None,
        metrics=None,
    ) -> RetrievalFramework:
        """Set up the retrieval framework over ``kb`` and return it.

        ``resilience`` (the coordinator's manager) is only used by the
        shard router, which guards each shard search under a per-shard
        breaker site; ``events`` and ``metrics`` likewise flow to the
        router so rebalance moves and replica probes show up in the
        event log and as labelled counters.
        """

        index_params = dict(config.index_params)
        if config.tiered:
            # Each index_builder() call creates its own TieredStore (and
            # thus its own spill file), so every shard replica owns an
            # independent mmap segment.
            index_params.setdefault(
                "tiered",
                {
                    "bits": config.quantize_bits,
                    "rerank_factor": config.rerank_factor,
                    "mmap_cache_blocks": config.mmap_cache_blocks,
                },
            )

        def index_builder():
            return build_index(config.index, index_params)

        if config.sharding_enabled:
            from repro.core.sharding import ShardRouter

            router = ShardRouter(
                framework_name=config.framework,
                framework_params=config.framework_params,
                shards=config.shards if config.shards is not None else 1,
                replicas=config.replicas,
                partitioner=config.partitioner,
                rebalance_threshold=config.rebalance_threshold,
                latency_ms=config.shard_latency_ms,
                latency_ms_per_1k=config.shard_latency_ms_per_1k,
                resilience=resilience,
                events=events,
                metrics=metrics,
            )
            router.setup(kb, encoder_set, index_builder, weights=weights)
            return router

        framework = build_framework(config.framework, config.framework_params)
        framework.setup(kb, encoder_set, index_builder, weights=weights)
        return framework
