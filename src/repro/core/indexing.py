"""Component 3: index construction.

Instantiates the configured retrieval framework and lets it build its index
structures (one unified graph for MUST, one per modality for MR, one joint
index for JE) over the encoded knowledge base.
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import MQAConfig
from repro.data.knowledge_base import KnowledgeBase
from repro.data.modality import Modality
from repro.encoders import EncoderSet
from repro.index import build_index
from repro.retrieval import RetrievalFramework, build_framework


class IndexConstruction:
    """Builds the framework + index stack described by the configuration."""

    name = "index construction"

    def run(
        self,
        config: MQAConfig,
        kb: KnowledgeBase,
        encoder_set: EncoderSet,
        weights: Dict[Modality, float],
    ) -> RetrievalFramework:
        """Set up the retrieval framework over ``kb`` and return it."""
        framework = build_framework(config.framework, config.framework_params)

        def index_builder():
            return build_index(config.index, config.index_params)

        framework.setup(kb, encoder_set, index_builder, weights=weights)
        return framework
