"""Milestone tracking — the data model behind the status-monitoring panel.

"Milestones such as data preprocessing, vector representation, and index
construction are visibly tracked with tick marks and relevant details".
:class:`StatusBoard` holds those milestones; the panel renders them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple


class MilestoneState(str, enum.Enum):
    """Tick-mark state of one milestone."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Milestone:
    """One tracked backend stage.

    Attributes:
        name: Stage name ("data preprocessing", ...).
        state: Current tick-mark state.
        details: Key -> value facts shown next to the tick (encoder names,
            modal counts, vector dimensions, index type, ...).
        elapsed: Seconds the stage took (0 until done).
    """

    name: str
    state: MilestoneState = MilestoneState.PENDING
    details: Dict[str, str] = field(default_factory=dict)
    elapsed: float = 0.0


class StatusBoard:
    """Ordered collection of milestones with simple state transitions."""

    STAGES = (
        "data preprocessing",
        "vector representation",
        "index construction",
        "query execution",
        "answer generation",
    )

    def __init__(self) -> None:
        self._milestones: Dict[str, Milestone] = {
            name: Milestone(name=name) for name in self.STAGES
        }

    def milestone(self, name: str) -> Milestone:
        """The milestone called ``name`` (KeyError for unknown stages)."""
        return self._milestones[name]

    def milestones(self) -> Tuple[Milestone, ...]:
        """All milestones in backend order."""
        return tuple(self._milestones[name] for name in self.STAGES)

    def start(self, name: str) -> None:
        """Mark ``name`` as running."""
        self._milestones[name].state = MilestoneState.RUNNING

    def finish(self, name: str, elapsed: float, **details: str) -> None:
        """Mark ``name`` done with ``details`` shown beside the tick."""
        milestone = self._milestones[name]
        milestone.state = MilestoneState.DONE
        milestone.elapsed = elapsed
        milestone.details.update({k: str(v) for k, v in details.items()})

    def fail(self, name: str, error: str) -> None:
        """Mark ``name`` failed, recording the error text."""
        milestone = self._milestones[name]
        milestone.state = MilestoneState.FAILED
        milestone.details["error"] = error

    @property
    def ready(self) -> bool:
        """True once the three setup stages are done."""
        setup = self.STAGES[:3]
        return all(
            self._milestones[name].state is MilestoneState.DONE for name in setup
        )
