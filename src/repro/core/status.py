"""Milestone tracking — the data model behind the status-monitoring panel.

"Milestones such as data preprocessing, vector representation, and index
construction are visibly tracked with tick marks and relevant details".
:class:`StatusBoard` holds those milestones; the panel renders them.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Dict, Tuple


class MilestoneState(str, enum.Enum):
    """Tick-mark state of one milestone."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Milestone:
    """One tracked backend stage.

    Attributes:
        name: Stage name ("data preprocessing", ...).
        state: Current tick-mark state.
        details: Key -> value facts shown next to the tick (encoder names,
            modal counts, vector dimensions, index type, ...).
        elapsed: Seconds the stage took (0 until done).
    """

    name: str
    state: MilestoneState = MilestoneState.PENDING
    details: Dict[str, str] = field(default_factory=dict)
    elapsed: float = 0.0


class StatusBoard:
    """Ordered collection of milestones with simple state transitions.

    Thread-safe: the query-execution and answer-generation milestones are
    touched by every concurrent query round, and the status panel renders
    ``details`` dicts while they update — both sides go through one lock,
    and readers get snapshot copies so iteration never races a writer.
    """

    STAGES = (
        "data preprocessing",
        "vector representation",
        "index construction",
        "query execution",
        "answer generation",
    )

    def __init__(self) -> None:
        self._milestones: Dict[str, Milestone] = {
            name: Milestone(name=name) for name in self.STAGES
        }
        self._lock = threading.Lock()

    def milestone(self, name: str) -> Milestone:
        """A snapshot of the milestone called ``name`` (KeyError if unknown)."""
        with self._lock:
            return self._copy(self._milestones[name])

    @staticmethod
    def _copy(milestone: Milestone) -> Milestone:
        return Milestone(
            name=milestone.name,
            state=milestone.state,
            details=dict(milestone.details),
            elapsed=milestone.elapsed,
        )

    def milestones(self) -> Tuple[Milestone, ...]:
        """Snapshots of all milestones in backend order."""
        with self._lock:
            return tuple(self._copy(self._milestones[name]) for name in self.STAGES)

    def start(self, name: str) -> None:
        """Mark ``name`` as running."""
        with self._lock:
            self._milestones[name].state = MilestoneState.RUNNING

    def finish(self, name: str, elapsed: float, **details: str) -> None:
        """Mark ``name`` done with ``details`` shown beside the tick."""
        with self._lock:
            milestone = self._milestones[name]
            milestone.state = MilestoneState.DONE
            milestone.elapsed = elapsed
            milestone.details.update({k: str(v) for k, v in details.items()})

    def fail(self, name: str, error: str) -> None:
        """Mark ``name`` failed, recording the error text."""
        with self._lock:
            milestone = self._milestones[name]
            milestone.state = MilestoneState.FAILED
            milestone.details["error"] = error

    @property
    def ready(self) -> bool:
        """True once the three setup stages are done."""
        setup = self.STAGES[:3]
        with self._lock:
            return all(
                self._milestones[name].state is MilestoneState.DONE for name in setup
            )
