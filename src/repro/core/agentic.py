"""Agentic multi-hop answering with per-claim citations.

The paper's dialogue loop refines answers only by re-weighting
modalities; this module extends it to *refine by reasoning* (ROADMAP
item 3).  One question becomes several cooperating retrieval hops:

1. **Decompose** — :class:`QueryDecomposer` splits the question into one
   sub-query per latent-concept token it mentions (deterministic
   templates over the domain vocabulary, seeded).
2. **Retrieve** — the original query (hop 0) plus every sub-query run as
   one :meth:`~repro.core.coordinator.Coordinator.retrieve_batch` call —
   the PR 4 batch path, under the same read-lock acquisition, honoring
   admission control at the server boundary and the per-request
   :class:`~repro.core.resilience.Deadline` between phases here.
3. **Fuse** — hops merge with reciprocal-rank fusion
   (:func:`~repro.retrieval.fusion.fuse_responses`; hop 0 carries double
   stream weight), so objects surfacing in several concept hops float up.
4. **Synthesize** — the deterministic
   :class:`~repro.llm.agentic.ClaimSynthesizer` emits one :class:`Claim`
   per concept, each citing ``#id``s of retrieved objects; citation
   validity is enforced through
   :func:`~repro.llm.grounding.check_grounding`.
5. **Refine** — claims whose citations carry no textual evidence are
   re-retrieved with a concept-doubled query (bounded rounds, deadline
   aware) and re-synthesized; rescued claims are marked ``refined``.

Everything is off unless ``config.agentic`` is set — the coordinator
then never constructs an :class:`AgenticAnswerer` and the single-hop
path is bit-identical to the pre-agentic behaviour.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.core.answer import Answer
from repro.core.generation import context_items
from repro.data.concepts import ConceptSpace
from repro.data.modality import Modality
from repro.data.objects import RawQuery
from repro.data.rendering import TextRenderer
from repro.llm.agentic import ClaimSynthesizer, claim_summary_line, render_subquery
from repro.llm.base import GenerationResult
from repro.llm.grounding import check_grounding
from repro.llm.prompts import ContextItem, DialogueTurn
from repro.observability import trace_span
from repro.retrieval.fusion import fuse_responses
from repro.utils import Timer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.core.coordinator import Coordinator

#: Stream weight of hop 0 (the undecomposed query) in the cross-hop
#: fusion; sub-query hops weigh 1.0.  The original query already encodes
#: the *composition* of all concepts, so it stays the strongest signal —
#: concept hops vote it up or down rather than outvote it.
HOP_ZERO_WEIGHT = 2.0


@dataclass(frozen=True)
class SubQuery:
    """One decomposed retrieval hop.

    Attributes:
        concept: The latent-concept token this hop targets.
        text: The rendered query text sent to retrieval.
        hop: 1-based hop number (hop 0 is the original query).
        refined: True when this hop is a refinement re-retrieval.
    """

    concept: str
    text: str
    hop: int
    refined: bool = False


@dataclass
class Claim:
    """One synthesized, citation-carrying statement of the answer.

    Attributes:
        concept: The latent-concept token the claim is about.
        text: The claim sentence, containing ``#id`` citations.
        citations: Retrieved object ids backing the claim (never empty
            when retrieval returned anything for the hop).
        supported: True when at least one cited object's description
            textually confirms the concept.
        hop: The retrieval hop that produced the cited evidence.
        refined: True when support was only found by the refinement pass.
    """

    concept: str
    text: str
    citations: List[int] = field(default_factory=list)
    supported: bool = False
    hop: int = 0
    refined: bool = False

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view for the API payload."""
        return {
            "concept": self.concept,
            "text": self.text,
            "citations": [int(object_id) for object_id in self.citations],
            "supported": self.supported,
            "hop": self.hop,
            "refined": self.refined,
        }


class QueryDecomposer:
    """Split a question into per-concept sub-queries.

    Decomposition is driven by the domain's latent-concept vocabulary:
    every known concept token the question mentions becomes one hop, in
    mention order, capped at ``max_hops``.  Deterministic given the seed.
    """

    def __init__(
        self,
        space: ConceptSpace,
        max_hops: int = 4,
        seed: int = 0,
        temperature: float = 0.0,
    ) -> None:
        if max_hops < 1:
            raise ValueError(f"max_hops must be >= 1, got {max_hops}")
        self.space = space
        self.max_hops = max_hops
        self.seed = seed
        self.temperature = temperature

    def concepts(self, text: str) -> List[str]:
        """Known concept tokens mentioned in ``text``, deduplicated in
        mention order."""
        seen: List[str] = []
        for token in self.space.known_tokens(TextRenderer.tokenize(text)):
            if token not in seen:
                seen.append(token)
        return seen

    def decompose(self, text: str) -> List[SubQuery]:
        """The sub-queries for ``text`` (empty when no concept is known)."""
        return [
            SubQuery(
                concept=concept,
                text=render_subquery(
                    concept, self.seed, temperature=self.temperature
                ),
                hop=hop,
            )
            for hop, concept in enumerate(
                self.concepts(text)[: self.max_hops], start=1
            )
        ]

    def refine_query(self, concept: str) -> str:
        """The re-retrieval phrasing for an unsupported ``concept``."""
        return render_subquery(
            concept, self.seed, temperature=self.temperature, refine=True
        )


class AgenticAnswerer:
    """Orchestrates decompose → retrieve → fuse → synthesize → refine.

    Owns only counters; all retrieval/generation machinery is borrowed
    from the coordinator per call, so the answerer itself is stateless
    with respect to queries and safe under concurrent sessions.
    """

    def __init__(
        self,
        decomposer: QueryDecomposer,
        synthesizer: Optional[ClaimSynthesizer] = None,
        refine_rounds: int = 1,
        metrics=None,
    ) -> None:
        if refine_rounds < 0:
            raise ValueError(f"refine_rounds must be >= 0, got {refine_rounds}")
        self.decomposer = decomposer
        self.synthesizer = synthesizer or ClaimSynthesizer(seed=decomposer.seed)
        self.refine_rounds = refine_rounds
        self.metrics = metrics
        self._lock = threading.Lock()
        self._questions = 0
        self._hops = 0
        self._claims = 0
        self._supported = 0
        self._refined = 0
        self._refine_rounds_run = 0
        self._groundedness_sum = 0.0
        self._groundedness_count = 0

    # ------------------------------------------------------------------
    # introspection (GET /stats, GET /health)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Aggregate agentic counters for the stats/health planes."""
        with self._lock:
            mean = (
                self._groundedness_sum / self._groundedness_count
                if self._groundedness_count
                else None
            )
            return {
                "enabled": True,
                "max_hops": self.decomposer.max_hops,
                "refine_rounds": self.refine_rounds,
                "questions": self._questions,
                "hops": self._hops,
                "claims": self._claims,
                "supported_claims": self._supported,
                "refined_claims": self._refined,
                "refine_rounds_run": self._refine_rounds_run,
                "mean_groundedness": mean,
            }

    def _observe(self, claims: Sequence[Claim], hops: int, rounds: int) -> None:
        supported = sum(1 for claim in claims if claim.supported)
        refined = sum(1 for claim in claims if claim.refined)
        with self._lock:
            self._questions += 1
            self._hops += hops
            self._claims += len(claims)
            self._supported += supported
            self._refined += refined
            self._refine_rounds_run += rounds
            if claims:
                self._groundedness_sum += supported / len(claims)
                self._groundedness_count += 1
        if self.metrics is not None:
            self.metrics.inc("agentic.questions")
            self.metrics.inc("agentic.hops", hops)
            self.metrics.inc("agentic.claims", len(claims))
            self.metrics.inc("agentic.supported_claims", supported)
            self.metrics.inc("agentic.refined_claims", refined)

    # ------------------------------------------------------------------
    # the multi-hop round
    # ------------------------------------------------------------------
    def answer(
        self,
        coordinator: "Coordinator",
        query: RawQuery,
        history: Sequence[DialogueTurn] = (),
        preferred_ids: Sequence[int] = (),
        round_index: int = 0,
        k: Optional[int] = None,
        weights: "Dict[Modality, float] | None" = None,
        deadline_ms: Optional[float] = None,
    ) -> Answer:
        """Run one agentic round and return the claim-carrying answer.

        Falls back to the coordinator's single-hop
        :meth:`~repro.core.coordinator.Coordinator.handle_query` (with
        ``claims=[]``) when the question mentions no known concept or the
        system runs LLM-only.
        """
        user_text = (
            str(query.get(Modality.TEXT)) if query.has(Modality.TEXT) else ""
        )
        had_image = query.has(Modality.IMAGE)
        k = k if k is not None else coordinator.config.result_count
        subqueries = self.decomposer.decompose(user_text)
        if not subqueries or coordinator.execution is None or coordinator.kb is None:
            answer = coordinator.handle_query(
                query,
                history=history,
                preferred_ids=preferred_ids,
                round_index=round_index,
                k=k,
                weights=weights,
                deadline_ms=deadline_ms,
            )
            answer.claims = []
            self._observe([], hops=0, rounds=0)
            return answer

        kb = coordinator.kb
        deadline = coordinator.resilience.deadline(deadline_ms)
        degraded_reasons: List[str] = []
        rounds_run = 0
        with coordinator.tracer.trace(
            "agentic-query",
            round=round_index,
            hops=len(subqueries) + 1,
            k=k,
        ):
            with trace_span("decompose") as span, Timer() as decompose_timer:
                queries = [query] + [
                    RawQuery.from_text(subquery.text) for subquery in subqueries
                ]
                span.set(concepts=",".join(s.concept for s in subqueries))
            responses = coordinator.retrieve_batch(queries, k=k, weights=weights)
            with trace_span("synthesize") as span, Timer() as synth_timer:
                claims = [
                    self._synthesize(subquery, responses[subquery.hop], kb)
                    for subquery in subqueries
                ]
                span.set(
                    claims=len(claims),
                    supported=sum(1 for c in claims if c.supported),
                )
            refine_timer = Timer()
            with refine_timer:
                rounds_run = self._refine(
                    coordinator, kb, claims, k, deadline, degraded_reasons,
                    responses,
                )

            # The final context is the cross-hop fusion over everything
            # retrieved (including successful refinement hops), so every
            # citation in the claim list resolves inside the answer's own
            # retrieved context.
            stream_weights = [HOP_ZERO_WEIGHT] + [1.0] * (len(responses) - 1)
            fused = fuse_responses(responses, k, stream_weights=stream_weights)
            degraded_reasons.extend(
                reason
                for reason in fused.degraded_reasons
                if reason not in degraded_reasons
            )
            fused.degraded_reasons = []
            answer = coordinator._generate_answer(
                user_text, fused, history, preferred_ids, had_image,
                round_index, deadline, degraded_reasons,
            )

        claim_lines = [claim.text for claim in claims]
        tally = claim_summary_line(claims)
        if tally is not None:
            claim_lines.append(tally)
        answer.text = "\n".join([answer.text] + claim_lines)
        answer.claims = claims
        answer.groundedness = (
            sum(1 for claim in claims if claim.supported) / len(claims)
            if claims
            else None
        )
        if degraded_reasons:
            answer.degraded = True
            answer.degraded_reasons = degraded_reasons
        hop_cost = responses[0].cost if responses else None
        if hop_cost is not None:
            hop_cost.add_stage(
                "agentic-decompose", decompose_timer.elapsed * 1000.0
            )
            hop_cost.add_stage("agentic-synthesize", synth_timer.elapsed * 1000.0)
            if rounds_run:
                hop_cost.add_stage(
                    "agentic-refine", refine_timer.elapsed * 1000.0
                )
            answer.cost = hop_cost
        self._observe(claims, hops=len(responses) - 1, rounds=rounds_run)
        if self.metrics is not None and answer.groundedness is not None:
            self.metrics.observe("agentic.groundedness", answer.groundedness)
        coordinator.events.record(
            "generation", "frontend", "agentic-answer",
            f"{len(claims)} claims, "
            f"{sum(1 for c in claims if c.supported)} supported",
        )
        return answer

    def _synthesize(self, subquery: SubQuery, response, kb) -> Claim:
        """One claim for ``subquery`` from its hop's retrieval response."""
        items: List[ContextItem] = context_items(response, kb)
        text, citations, evidence = self.synthesizer.compose(
            subquery.concept, items
        )
        # The enforcement point: a claim may only cite ids its own hop
        # retrieved.  check_grounding also re-extracts the #ids from the
        # text, so phrasing and citation list cannot drift apart.
        grounded = check_grounding(
            GenerationResult(
                text=text,
                cited_object_ids=tuple(citations),
                grounded=evidence,
                model="claim-synthesizer",
            ),
            (item.object_id for item in items),
            strict=False,
        )
        return Claim(
            concept=subquery.concept,
            text=text,
            citations=citations,
            supported=evidence and grounded,
            hop=subquery.hop,
            refined=subquery.refined,
        )

    def _refine(
        self,
        coordinator: "Coordinator",
        kb,
        claims: List[Claim],
        k: int,
        deadline,
        degraded_reasons: List[str],
        responses: List,
    ) -> int:
        """Re-retrieve for unsupported claims; returns rounds executed.

        Successful refinement hops are appended to ``responses`` so the
        final fusion (and therefore the answer's retrieved context)
        includes the rescuing evidence.
        """
        rounds = 0
        for _ in range(self.refine_rounds):
            pending = [
                (position, claim)
                for position, claim in enumerate(claims)
                if not claim.supported
            ]
            if not pending:
                break
            if deadline is not None and deadline.expired:
                degraded_reasons.append(
                    "agentic refinement skipped (deadline exhausted)"
                )
                break
            rounds += 1
            with trace_span("refine", claims=len(pending)) as span:
                refine_subqueries = [
                    SubQuery(
                        concept=claim.concept,
                        text=self.decomposer.refine_query(claim.concept),
                        hop=claim.hop,
                        refined=True,
                    )
                    for _, claim in pending
                ]
                refine_responses = coordinator.retrieve_batch(
                    [RawQuery.from_text(s.text) for s in refine_subqueries],
                    k=k,
                )
                rescued = 0
                for (position, _), subquery, response in zip(
                    pending, refine_subqueries, refine_responses
                ):
                    claim = self._synthesize(subquery, response, kb)
                    if claim.supported:
                        rescued += 1
                        claims[position] = claim
                        responses.append(response)
                span.set(rescued=rescued)
        return rounds
