"""Component 4: query execution.

Runs the merging-free multi-modal search and implements the dotted arrow of
Figure 2: "any previous outcome can be chosen to augment the current user
query input" — a selected result's image becomes the reference image of the
next round's query.
"""

from __future__ import annotations

import copy
import inspect
import time
from contextlib import nullcontext
from dataclasses import replace
from typing import List, Optional

from repro.data.modality import Modality
from repro.data.objects import MultiModalObject, RawQuery
from repro.errors import SearchError
from repro.observability import QueryCostProfile, cost_context, trace_span
from repro.retrieval import RetrievalFramework, RetrievalResponse


class QueryExecution:
    """Executes queries against the framework built by index construction.

    Args:
        framework: The set-up retrieval framework.
        cache: Optional :class:`repro.core.cache.QueryCache`; repeated
            queries are served from it, and ingestion invalidates it.
        cost_accounting: When True every response carries a fresh
            :class:`~repro.observability.costs.QueryCostProfile` — made
            ambient while the framework runs so stage timers and the
            shard router can contribute.  Off by default; the disabled
            path adds one attribute check per call.
        index_name: Configured index type, recorded on every profile.
    """

    name = "query execution"

    def __init__(
        self,
        framework: RetrievalFramework,
        cache=None,
        cost_accounting: bool = False,
        index_name: str = "",
    ) -> None:
        self.framework = framework
        self.cache = cache
        self.cost_accounting = bool(cost_accounting)
        self.index_name = index_name
        self._capabilities: "set | None" = None

    def _new_profile(self, cache_label: str = "off") -> QueryCostProfile:
        """A fresh per-query cost ledger for this framework/index."""
        return QueryCostProfile(
            framework=self.framework.name,
            index=self.index_name,
            shards_total=getattr(self.framework, "shards", 0),
            cache=cache_label,
        )

    def _retrieve_capabilities(self) -> set:
        """Optional keyword arguments the framework's ``retrieve`` accepts.

        Capability is checked by signature inspection *before* calling, so
        a genuine ``TypeError`` raised inside retrieval propagates instead
        of being misread as a missing capability.  Computed once per
        framework and cached.
        """
        if self._capabilities is None:
            parameters = inspect.signature(self.framework.retrieve).parameters
            if any(
                p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
            ):
                self._capabilities = {"weights", "filter_fn"}
            else:
                self._capabilities = set(parameters)
        return self._capabilities

    @property
    def capabilities(self) -> frozenset:
        """Optional ``retrieve`` kwargs the framework accepts.

        Public read-only view used by the coordinator's degradation
        policies (e.g. only pass renormalised weights to frameworks that
        take a ``weights`` kwarg).
        """
        return frozenset(self._retrieve_capabilities())

    def execute(
        self,
        query: RawQuery,
        k: int,
        budget: int = 64,
        weights=None,
        exclude_ids=(),
        filter_fn=None,
        fanout=None,
    ) -> RetrievalResponse:
        """Top-``k`` retrieval for ``query``.

        When the query was augmented from a selected result, that reference
        object is excluded from the response — the user asked for *more*
        items like it, not the item itself.  ``exclude_ids`` additionally
        drops objects the user rejected in earlier rounds (negative
        feedback).  ``filter_fn`` restricts results by object id (metadata
        filtering).  ``weights`` applies per-query modality re-weighting
        (frameworks without that capability reject it).  ``fanout`` limits
        the shard scatter width on a router that supports it (degraded
        planner mode only; silently ignored elsewhere).
        """
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")

        capabilities = self._retrieve_capabilities()
        if weights is not None and "weights" not in capabilities:
            raise SearchError(
                f"framework {self.framework.name!r} does not support "
                "per-query modality weights"
            )
        if filter_fn is not None and "filter_fn" not in capabilities:
            raise SearchError(
                f"framework {self.framework.name!r} does not support "
                "filtered retrieval"
            )
        if fanout is not None and "fanout" not in capabilities:
            fanout = None

        profile = self._new_profile() if self.cost_accounting else None

        def retrieve(fetch: int) -> RetrievalResponse:
            kwargs = {}
            if weights is not None:
                kwargs["weights"] = weights
            if filter_fn is not None:
                kwargs["filter_fn"] = filter_fn
            if fanout is not None:
                kwargs["fanout"] = fanout
            return self.framework.retrieve(query, k=fetch, budget=budget, **kwargs)

        def run(fetch: int, span) -> RetrievalResponse:
            # Cache the raw (pre-exclusion) retrieval; exclusions are
            # applied to a copy so cached entries stay pristine.  Filtered
            # queries bypass the cache (predicates are not hashable).
            if self.cache is None or filter_fn is not None:
                span.set(cache="bypass")
                if profile is not None and self.cache is not None:
                    profile.cache = "bypass"
                return retrieve(fetch)
            key = self.cache.key_for(query, fetch, budget, weights=weights)
            if self.cache.semantic:
                # Exact-then-near-duplicate lookup; a semantic hit serves
                # a copy of the neighbour's response and did no kernel
                # work, exactly like an exact hit.
                cached, label, registration = self.cache.lookup(key, query)
                if cached is None:
                    span.set(cache="miss")
                    if profile is not None:
                        profile.cache = "miss"
                    fresh = retrieve(fetch)
                    if fresh.degraded_reasons:
                        return fresh
                    if registration is not None:
                        self.cache.put_semantic(key, registration, fresh)
                    else:
                        self.cache.put(key, fresh)
                    return self._copy_response(fresh)
                span.set(cache=label)
                if profile is not None:
                    profile.cache = label
                return self._copy_response(cached)
            cached = self.cache.get(key)
            if cached is None:
                span.set(cache="miss")
                if profile is not None:
                    profile.cache = "miss"
                cached = retrieve(fetch)
                if cached.degraded_reasons:
                    # Partial results (lost shards) must not be served to
                    # later queries as if they were complete.
                    return cached
                self.cache.put(key, cached)
            else:
                span.set(cache="hit")
                if profile is not None:
                    profile.cache = "hit"
            return self._copy_response(cached)

        excluded = set(exclude_ids)
        reference_id = query.metadata.get("augmented_from")
        if reference_id is not None:
            excluded.add(reference_id)
        scope = cost_context(profile) if profile is not None else nullcontext()
        with trace_span(
            "retrieval", framework=self.framework.name, k=k, budget=budget
        ) as span, scope:
            started = time.perf_counter() if profile is not None else 0.0
            if not excluded:
                response = run(k, span)
            else:
                response = run(k + len(excluded), span)
                response.items = [
                    item for item in response.items if item.object_id not in excluded
                ][:k]
                for rank, item in enumerate(response.items):
                    item.rank = rank
            span.set(
                results=len(response.items),
                hops=response.stats.hops,
                distance_evaluations=response.stats.distance_evaluations,
            )
            if profile is not None:
                profile.add_stage(
                    "retrieve", (time.perf_counter() - started) * 1000.0
                )
                # A cache hit (exact or semantic) did no kernel work this
                # call; the original search was accounted when it ran.
                if profile.cache not in ("hit", "semantic"):
                    profile.add_search_stats(response.stats)
                profile.items = len(response.items)
                response.cost = profile
        return response

    @staticmethod
    def _copy_response(cached: RetrievalResponse) -> RetrievalResponse:
        """Deep-ish copy of a cached response.

        ``replace`` preserves every field of ``RetrievedItem`` subclasses,
        and stats must not be shared — a caller merging into
        ``response.stats`` would otherwise corrupt the cached entry.
        """
        return RetrievalResponse(
            framework=cached.framework,
            items=[replace(item) for item in cached.items],
            stats=copy.deepcopy(cached.stats),
            per_modality_ids={
                modality: list(ids)
                for modality, ids in cached.per_modality_ids.items()
            },
            per_modality_distances={
                modality: list(values)
                for modality, values in cached.per_modality_distances.items()
            },
            degraded_reasons=list(cached.degraded_reasons),
        )

    def execute_batch(
        self,
        queries,
        k: int,
        budget: int = 64,
        weights=None,
    ) -> "list[RetrievalResponse]":
        """Batched top-``k`` for independent queries, with cache parity.

        Each query consults and populates the :class:`QueryCache` exactly
        as a serial :meth:`execute` would (same keys, same hit/miss
        accounting, same copy-on-return semantics); only the cache misses
        reach the framework, as one ``retrieve_batch`` call.  The batched
        kernels guarantee element-wise bit-identity with serial retrieval
        regardless of batch composition, so mixing hits and misses cannot
        change any result.  Partial (degraded) responses are returned but
        never cached.

        This path serves server micro-batching: no exclusions and no
        filters apply (those are dialogue-round concepts).  A semantic
        cache participates with its *exact* tier only — near-duplicate
        matching is a latency optimisation for the interactive serial
        path, and keeping batches exact preserves the batched-vs-serial
        bit-identity guarantee unconditionally.
        """
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        capabilities = self._retrieve_capabilities()
        if weights is not None and "weights" not in capabilities:
            raise SearchError(
                f"framework {self.framework.name!r} does not support "
                "per-query modality weights"
            )
        queries = list(queries)
        if not queries:
            return []
        kwargs = {}
        if weights is not None:
            kwargs["weights"] = weights
        with trace_span(
            "retrieval-batch",
            framework=self.framework.name,
            queries=len(queries),
            k=k,
            budget=budget,
        ) as span:
            if self.cache is None:
                span.set(cache="bypass")
                fresh = self.framework.retrieve_batch(
                    queries, k=k, budget=budget, **kwargs
                )
                if self.cost_accounting:
                    self._attach_costs(fresh, ["off"] * len(fresh))
                return fresh
            keys = [
                self.cache.key_for(query, k, budget, weights=weights)
                for query in queries
            ]
            results: "list[RetrievalResponse | None]" = [None] * len(queries)
            labels = ["hit"] * len(queries)
            misses = []  # first occurrence of each missing key
            repeats = []  # later occurrences of a key already being fetched
            pending = set()
            for position, key in enumerate(keys):
                if key in pending:
                    repeats.append(position)
                    continue
                cached = self.cache.get(key)
                if cached is None:
                    pending.add(key)
                    misses.append(position)
                else:
                    results[position] = self._copy_response(cached)
            if misses:
                fresh = self.framework.retrieve_batch(
                    [queries[position] for position in misses],
                    k=k,
                    budget=budget,
                    **kwargs,
                )
                for position, response in zip(misses, fresh):
                    labels[position] = "miss"
                    if response.degraded_reasons:
                        results[position] = response
                    else:
                        self.cache.put(keys[position], response)
                        results[position] = self._copy_response(response)
            # A key repeated inside one batch is fetched once; later
            # occurrences replay through the cache so the hit/miss
            # accounting matches a serial miss-then-hit exactly.  When the
            # first occurrence was degraded (and therefore not cached) the
            # lookup records the miss a serial re-search would, and the
            # repeat shares a copy of the partial response.
            for position in repeats:
                cached = self.cache.get(keys[position])
                if cached is not None:
                    results[position] = self._copy_response(cached)
                else:
                    labels[position] = "miss"
                    first = next(
                        p for p in misses if keys[p] == keys[position]
                    )
                    results[position] = self._copy_response(results[first])
            span.set(
                cache_hits=len(queries) - len(misses) - len(repeats),
                cache_misses=len(misses),
                cache_repeats=len(repeats),
            )
            if self.cost_accounting:
                self._attach_costs(results, labels)
        return results

    def _attach_costs(
        self, results: "List[RetrievalResponse]", labels: "List[str]"
    ) -> None:
        """Attach one fresh per-query profile per batched response.

        Mirrors the serial accounting exactly: a hit carries zero kernel
        counters (the served copy did no search work); misses and
        uncached paths copy their counters off the response stats — so a
        batched query's profile signature matches its serial twin.
        """
        for response, label in zip(results, labels):
            profile = self._new_profile(cache_label=label)
            if label != "hit":
                profile.add_search_stats(response.stats)
            profile.items = len(response.items)
            response.cost = profile

    @staticmethod
    def augment_query(
        refinement_text: str,
        selected: MultiModalObject,
        base_query: "RawQuery | None" = None,
    ) -> RawQuery:
        """Fold a selected previous result into the next round's query.

        The selected object's image modality becomes the reference image;
        the user's new text carries the modification.  When the selected
        object has no image, its text is appended to the refinement instead
        so the preference still flows forward.
        """
        if not refinement_text:
            raise SearchError("refinement text must be non-empty")
        metadata = {"augmented_from": selected.object_id}
        if selected.has(Modality.IMAGE):
            query = RawQuery.from_text_and_image(
                refinement_text, selected.get(Modality.IMAGE), **metadata
            )
        else:
            combined = f"{refinement_text} {selected.get(Modality.TEXT)}"
            query = RawQuery.from_text(combined, **metadata)
        if base_query is not None:
            query.metadata.update(
                {k: v for k, v in base_query.metadata.items() if k not in query.metadata}
            )
        return query
