"""Component 1: data preprocessing.

"Integrates a multi-modal knowledge base into MQA ... external knowledge
ingestion is optional, and disabling it means MQA relies solely on chosen
LLMs for responses."
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import MQAConfig
from repro.data.datasets import generate_knowledge_base
from repro.data.knowledge_base import KnowledgeBase
from repro.errors import DataError


class DataPreprocessing:
    """Ingests (or generates) the knowledge base the config asks for."""

    name = "data preprocessing"

    def run(
        self,
        config: MQAConfig,
        knowledge_base: Optional[KnowledgeBase] = None,
    ) -> Optional[KnowledgeBase]:
        """Return the knowledge base to serve, or None in LLM-only mode.

        Args:
            config: System configuration.
            knowledge_base: A prebuilt base to ingest as-is; when omitted,
                one is generated from ``config.dataset``.
        """
        if not config.external_knowledge:
            return None
        if knowledge_base is not None:
            if len(knowledge_base) == 0:
                raise DataError(
                    f"knowledge base {knowledge_base.name!r} is empty; "
                    "ingest objects before attaching it"
                )
            return knowledge_base
        return generate_knowledge_base(config.dataset)
