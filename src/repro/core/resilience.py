"""Fault injection, retries, deadlines, and graceful degradation.

MQA is a serving system: a dialogue round must produce *some* answer even
when a component is slow or failing.  This module makes failure a
first-class, testable input:

* :class:`FaultInjector` — deterministic, seeded injection of exceptions
  and latency spikes at named component boundaries (``encoder.text``,
  ``index.search``, ``llm.generate``, ``store.ingest``, ...).  Each
  configured site draws from its own :func:`~repro.utils.rng.derive_rng`
  stream, so the fault schedule at one boundary never shifts another's.
* :class:`Deadline` — a per-request latency budget with an injectable
  clock; work checks ``remaining_ms`` instead of sleeping past the point
  where the caller has given up.
* :class:`RetryPolicy` — bounded attempts with exponential backoff,
  always capped by the request deadline (a retry that cannot finish in
  budget is not attempted).
* :class:`CircuitBreaker` — classic closed → open → half-open per-site
  state machine so a repeatedly failing component is probed, not hammered.
* :class:`ResilienceManager` — the facade the coordinator / engine /
  server use: ``manager.call(site, fn, deadline=...)`` applies injection,
  breaker, retry and deadline in one place and feeds every outcome into
  the metrics registry and its own snapshot (surfaced by ``GET /health``).

Everything here is **off by default** (``MQAConfig.resilience = False``);
the disabled manager forwards calls with a single attribute check so the
serving hot path is unchanged.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    InjectedFaultError,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import trace_span
from repro.utils.rng import derive_rng

__all__ = [
    "FaultSpec",
    "FaultInjector",
    "Deadline",
    "RetryPolicy",
    "BreakerState",
    "CircuitBreaker",
    "ResilienceManager",
]


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSpec:
    """What the injector may do at one call site.

    Attributes:
        error_rate: Probability of raising :class:`InjectedFaultError`.
        latency_ms: Extra latency added when a latency spike fires.
        latency_rate: Probability of a latency spike.
        max_faults: Cap on raised errors (None = unlimited); lets a chaos
            scenario model a component that recovers after N failures.
    """

    error_rate: float = 0.0
    latency_ms: float = 0.0
    latency_rate: float = 0.0
    max_faults: Optional[int] = None

    def validate(self, site: str) -> None:
        """Raise :class:`ConfigurationError` on out-of-range fields."""
        if not 0.0 <= self.error_rate <= 1.0:
            raise ConfigurationError(
                f"fault site {site!r}: error_rate must be in [0, 1], "
                f"got {self.error_rate}"
            )
        if not 0.0 <= self.latency_rate <= 1.0:
            raise ConfigurationError(
                f"fault site {site!r}: latency_rate must be in [0, 1], "
                f"got {self.latency_rate}"
            )
        if self.latency_ms < 0:
            raise ConfigurationError(
                f"fault site {site!r}: latency_ms must be >= 0, "
                f"got {self.latency_ms}"
            )
        if self.max_faults is not None and self.max_faults < 0:
            raise ConfigurationError(
                f"fault site {site!r}: max_faults must be >= 0, "
                f"got {self.max_faults}"
            )


class FaultInjector:
    """Seeded, per-site fault schedule.

    A spec configured for ``"encoder"`` matches every ``encoder.*`` site;
    an exact site name takes precedence over its prefix.  Every
    :meth:`fire` consumes exactly two uniform draws from the matched
    spec's stream (latency, then error) regardless of the spec's rates,
    so enabling one kind of fault never reshuffles the other.
    """

    def __init__(
        self,
        seed: int = 0,
        specs: Optional[Dict[str, Dict[str, Any]]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.seed = int(seed)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._specs: Dict[str, FaultSpec] = {}
        self._rngs: Dict[str, Any] = {}
        self._error_budget: Dict[str, int] = {}
        self.errors: Dict[str, int] = {}
        self.delays: Dict[str, int] = {}
        for site, spec in (specs or {}).items():
            self.configure(site, **dict(spec))

    def configure(self, site: str, **spec_kwargs: Any) -> None:
        """Register (or replace) the fault spec for one site/prefix."""
        unknown = set(spec_kwargs) - {
            "error_rate",
            "latency_ms",
            "latency_rate",
            "max_faults",
        }
        if unknown:
            raise ConfigurationError(
                f"fault site {site!r}: unknown spec keys: "
                f"{', '.join(sorted(unknown))}"
            )
        spec = FaultSpec(**spec_kwargs)
        spec.validate(site)
        with self._lock:
            self._specs[site] = spec
            self._rngs[site] = derive_rng(self.seed, "fault", site)
            self._error_budget[site] = (
                -1 if spec.max_faults is None else spec.max_faults
            )

    def _match(self, site: str) -> Optional[str]:
        if site in self._specs:
            return site
        prefix = site.split(".", 1)[0]
        if prefix != site and prefix in self._specs:
            return prefix
        return None

    def fire(self, site: str) -> None:
        """Maybe delay, maybe raise, according to the site's schedule."""
        key = self._match(site)
        if key is None:
            return
        with self._lock:
            spec = self._specs[key]
            rng = self._rngs[key]
            spike = rng.random() < spec.latency_rate
            fail = rng.random() < spec.error_rate
            if fail and self._error_budget[key] == 0:
                fail = False
            if fail and self._error_budget[key] > 0:
                self._error_budget[key] -= 1
            if spike:
                self.delays[site] = self.delays.get(site, 0) + 1
            if fail:
                self.errors[site] = self.errors.get(site, 0) + 1
        if spike and spec.latency_ms > 0:
            self._sleep(spec.latency_ms / 1000.0)
        if fail:
            raise InjectedFaultError(site)

    def snapshot(self) -> Dict[str, Any]:
        """Counters for ``/health`` and chaos-test bookkeeping."""
        with self._lock:
            return {
                "seed": self.seed,
                "sites": sorted(self._specs),
                "errors": dict(self.errors),
                "delays": dict(self.delays),
            }


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
class Deadline:
    """A monotonic per-request latency budget."""

    __slots__ = ("budget_ms", "_start", "_clock")

    def __init__(
        self, budget_ms: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if budget_ms <= 0:
            raise ConfigurationError(
                f"deadline budget must be positive, got {budget_ms}"
            )
        self.budget_ms = float(budget_ms)
        self._clock = clock
        self._start = clock()

    @property
    def elapsed_ms(self) -> float:
        return (self._clock() - self._start) * 1000.0

    @property
    def remaining_ms(self) -> float:
        return self.budget_ms - self.elapsed_ms

    @property
    def expired(self) -> bool:
        return self.remaining_ms <= 0.0

    def check(self, label: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(
                f"{label}: deadline of {self.budget_ms:.0f} ms exceeded "
                f"({self.elapsed_ms:.1f} ms elapsed)"
            )


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff.

    ``attempts`` is the total number of tries (1 = no retries).  The
    backoff before retry *n* is ``backoff_ms * multiplier**(n-1)``,
    capped at ``max_backoff_ms`` — and never slept if it would overrun
    the request deadline.
    """

    attempts: int = 1
    backoff_ms: float = 10.0
    multiplier: float = 2.0
    max_backoff_ms: float = 1000.0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on out-of-range fields."""
        if self.attempts < 1:
            raise ConfigurationError(
                f"retry attempts must be >= 1, got {self.attempts}"
            )
        if self.backoff_ms < 0:
            raise ConfigurationError(
                f"retry backoff_ms must be >= 0, got {self.backoff_ms}"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"retry multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_backoff_ms < self.backoff_ms:
            raise ConfigurationError(
                "retry max_backoff_ms must be >= backoff_ms, "
                f"got {self.max_backoff_ms} < {self.backoff_ms}"
            )

    def backoff_for(self, retry_index: int) -> float:
        """Backoff in ms before the ``retry_index``-th retry (1-based)."""
        return min(
            self.backoff_ms * (self.multiplier ** (retry_index - 1)),
            self.max_backoff_ms,
        )


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class BreakerState(str, enum.Enum):
    """The three circuit-breaker states (string-valued for JSON export)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-site closed → open → half-open breaker.

    * **closed**: calls pass; ``threshold`` consecutive failures open it.
    * **open**: calls are rejected until ``reset_ms`` has elapsed, then
      the breaker moves to half-open.
    * **half-open**: up to ``half_open_probes`` trial calls pass; all
      succeeding closes the breaker, any failure re-opens it.

    The clock is injectable so tests drive the state machine without
    real waiting.  All methods are thread-safe.
    """

    def __init__(
        self,
        site: str,
        threshold: int = 5,
        reset_ms: float = 1000.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ConfigurationError(
                f"breaker threshold must be >= 1, got {threshold}"
            )
        if reset_ms <= 0:
            raise ConfigurationError(
                f"breaker reset_ms must be positive, got {reset_ms}"
            )
        if half_open_probes < 1:
            raise ConfigurationError(
                f"breaker half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.site = site
        self.threshold = threshold
        self.reset_ms = float(reset_ms)
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_left = 0
        self._probe_successes = 0
        self.transitions = 0
        self.times_opened = 0

    def _transition(self, state: BreakerState) -> None:
        # Callers hold self._lock.
        if state is not self._state:
            self._state = state
            self.transitions += 1
            if state is BreakerState.OPEN:
                self.times_opened += 1
                self._opened_at = self._clock()

    @property
    def state(self) -> BreakerState:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and (self._clock() - self._opened_at) * 1000.0 >= self.reset_ms
        ):
            self._transition(BreakerState.HALF_OPEN)
            self._probes_left = self.half_open_probes
            self._probe_successes = 0

    def allow(self) -> bool:
        """May a call proceed right now?  Consumes a probe in half-open."""
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.HALF_OPEN and self._probes_left > 0:
                self._probes_left -= 1
                return True
            return False

    def record_success(self) -> None:
        """Record a success: resets the streak, or closes from half-open."""
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._transition(BreakerState.CLOSED)
                    self._consecutive_failures = 0
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> bool:
        """Record a failure; returns True when the breaker is now open."""
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._transition(BreakerState.OPEN)
                return True
            self._consecutive_failures += 1
            if (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self.threshold
            ):
                self._transition(BreakerState.OPEN)
            return self._state is BreakerState.OPEN

    def snapshot(self) -> Dict[str, Any]:
        """State + counters for ``/health`` (advances open → half-open)."""
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state.value,
                "consecutive_failures": self._consecutive_failures,
                "transitions": self.transitions,
                "times_opened": self.times_opened,
            }


# ----------------------------------------------------------------------
# the facade
# ----------------------------------------------------------------------
@dataclass
class _SiteCounters:
    calls: int = 0
    failures: int = 0
    retries: int = 0
    deadline_exceeded: int = 0
    short_circuited: int = 0


class ResilienceManager:
    """Applies injection + breaker + retry + deadline at call boundaries.

    When ``enabled`` is False, :meth:`call` forwards directly to ``fn``
    and :meth:`deadline` returns None — the guarded code paths collapse
    to the exact pre-resilience behaviour.
    """

    def __init__(
        self,
        enabled: bool = False,
        retry: Optional[RetryPolicy] = None,
        default_deadline_ms: Optional[float] = None,
        breaker_threshold: int = 5,
        breaker_reset_ms: float = 1000.0,
        breaker_half_open_probes: int = 1,
        injector: Optional[FaultInjector] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.enabled = bool(enabled)
        self.retry = retry or RetryPolicy()
        self.retry.validate()
        self.default_deadline_ms = default_deadline_ms
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_ms = breaker_reset_ms
        self.breaker_half_open_probes = breaker_half_open_probes
        self.injector = injector
        self.metrics = metrics or MetricsRegistry()
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._counters: Dict[str, _SiteCounters] = {}
        self._fallbacks: Dict[str, int] = {}

    @classmethod
    def from_config(
        cls,
        config: Any,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "ResilienceManager":
        """Build the manager the coordinator owns from an ``MQAConfig``."""
        injector = None
        if config.resilience and config.faults:
            injector = FaultInjector(
                seed=config.fault_seed, specs=config.faults, sleep=sleep
            )
        return cls(
            enabled=config.resilience,
            retry=RetryPolicy(
                attempts=config.retry_attempts,
                backoff_ms=config.retry_backoff_ms,
                multiplier=config.retry_multiplier,
                max_backoff_ms=config.retry_max_backoff_ms,
            ),
            default_deadline_ms=config.deadline_ms,
            breaker_threshold=config.breaker_threshold,
            breaker_reset_ms=config.breaker_reset_ms,
            breaker_half_open_probes=config.breaker_half_open_probes,
            injector=injector,
            metrics=metrics,
            clock=clock,
            sleep=sleep,
        )

    # -- bookkeeping ---------------------------------------------------
    def _site(self, site: str) -> _SiteCounters:
        # Callers hold self._lock.
        counters = self._counters.get(site)
        if counters is None:
            counters = self._counters[site] = _SiteCounters()
        return counters

    def breaker(self, site: str) -> CircuitBreaker:
        """The (lazily created) breaker guarding ``site``."""
        with self._lock:
            breaker = self._breakers.get(site)
            if breaker is None:
                breaker = self._breakers[site] = CircuitBreaker(
                    site,
                    threshold=self.breaker_threshold,
                    reset_ms=self.breaker_reset_ms,
                    half_open_probes=self.breaker_half_open_probes,
                    clock=self._clock,
                )
            return breaker

    def record_fallback(self, kind: str) -> None:
        """Count one graceful-degradation event (e.g. ``llm_fallback``)."""
        with self._lock:
            self._fallbacks[kind] = self._fallbacks.get(kind, 0) + 1
        self.metrics.inc("resilience.fallbacks")
        self.metrics.inc(f"resilience.fallback.{kind}")

    def deadline(self, override_ms: Optional[float] = None) -> Optional[Deadline]:
        """A fresh request deadline, or None when disabled / unbudgeted."""
        if not self.enabled:
            return None
        budget = override_ms if override_ms is not None else self.default_deadline_ms
        if budget is None:
            return None
        return Deadline(budget, clock=self._clock)

    # -- the guarded call ----------------------------------------------
    def call(
        self,
        site: str,
        fn: Callable[[], Any],
        deadline: Optional[Deadline] = None,
        retryable: bool = True,
    ) -> Any:
        """Run ``fn`` under injection, breaker, retry, and deadline.

        Non-retryable sites (mutations) get exactly one attempt.  A
        nested :class:`DeadlineExceededError` is never retried — the
        budget that failed one attempt cannot fund another.
        """
        if not self.enabled:
            return fn()
        breaker = self.breaker(site)
        if not breaker.allow():
            with self._lock:
                self._site(site).short_circuited += 1
            self.metrics.inc("resilience.short_circuits")
            raise CircuitOpenError(site)
        attempts = self.retry.attempts if retryable else 1
        with self._lock:
            self._site(site).calls += 1
        self.metrics.inc("resilience.calls")
        with trace_span("guard", site=site) as span:
            for attempt in range(1, attempts + 1):
                if deadline is not None and deadline.expired:
                    with self._lock:
                        self._site(site).deadline_exceeded += 1
                    self.metrics.inc("resilience.deadline_exceeded")
                    span.set(outcome="deadline", attempts=attempt)
                    raise DeadlineExceededError(
                        f"{site}: deadline of {deadline.budget_ms:.0f} ms "
                        f"exceeded before attempt {attempt}"
                    )
                try:
                    if self.injector is not None:
                        self.injector.fire(site)
                    result = fn()
                except DeadlineExceededError:
                    with self._lock:
                        self._site(site).deadline_exceeded += 1
                    self.metrics.inc("resilience.deadline_exceeded")
                    span.set(outcome="deadline", attempts=attempt)
                    raise
                except Exception as exc:
                    with self._lock:
                        self._site(site).failures += 1
                    self.metrics.inc("resilience.failures")
                    if isinstance(exc, InjectedFaultError):
                        self.metrics.inc("resilience.injected_faults")
                    now_open = breaker.record_failure()
                    if now_open:
                        self.metrics.inc("resilience.breaker_opens")
                    if attempt >= attempts or now_open:
                        span.set(outcome="failed", attempts=attempt)
                        raise
                    backoff_ms = self.retry.backoff_for(attempt)
                    if (
                        deadline is not None
                        and deadline.remaining_ms <= backoff_ms
                    ):
                        # No budget to wait out the backoff: surface the
                        # real failure rather than a late deadline error.
                        span.set(outcome="failed", attempts=attempt)
                        raise
                    with self._lock:
                        self._site(site).retries += 1
                    self.metrics.inc("resilience.retries")
                    if backoff_ms > 0:
                        self._sleep(backoff_ms / 1000.0)
                else:
                    breaker.record_success()
                    span.set(outcome="ok", attempts=attempt)
                    return result
        raise AssertionError("unreachable")  # pragma: no cover

    # -- reporting -----------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The ``resilience`` section of ``GET /health``."""
        with self._lock:
            sites = {
                site: {
                    "calls": c.calls,
                    "failures": c.failures,
                    "retries": c.retries,
                    "deadline_exceeded": c.deadline_exceeded,
                    "short_circuited": c.short_circuited,
                }
                for site, c in sorted(self._counters.items())
            }
            fallbacks = dict(self._fallbacks)
            breakers = {
                site: breaker.snapshot()
                for site, breaker in sorted(self._breakers.items())
            }
        totals = {
            key: sum(site[key] for site in sites.values())
            for key in (
                "calls",
                "failures",
                "retries",
                "deadline_exceeded",
                "short_circuited",
            )
        }
        snap: Dict[str, Any] = {
            "enabled": self.enabled,
            "deadline_ms": self.default_deadline_ms,
            "retry": {
                "attempts": self.retry.attempts,
                "backoff_ms": self.retry.backoff_ms,
                "multiplier": self.retry.multiplier,
                "max_backoff_ms": self.retry.max_backoff_ms,
            },
            "totals": totals,
            "sites": sites,
            "fallbacks": fallbacks,
            "breakers": breakers,
            "breaker_transitions": sum(
                b["transitions"] for b in breakers.values()
            ),
        }
        if self.injector is not None:
            snap["injected"] = self.injector.snapshot()
        return snap


#: Shared no-op manager for code paths built without a config.
DISABLED = ResilienceManager(enabled=False)
