"""Multi-round dialogue sessions.

Implements the paper's iterative refinement loop: ask -> inspect results ->
select a preferred item -> refine with new text, where the selected item's
image augments the next query (the feedback loop of Figures 1 and 4).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, List, Optional, Set

from repro.core.answer import Answer
from repro.core.coordinator import Coordinator
from repro.core.execution import QueryExecution
from repro.data.modality import Modality
from repro.data.objects import RawQuery
from repro.errors import SessionError
from repro.llm.prompts import DialogueTurn


@dataclass
class Round:
    """One completed dialogue round.

    Attributes:
        index: Zero-based round number.
        user_text: What the user typed.
        had_image: Whether an image accompanied the query (uploaded or
            carried over from a selection).
        answer: The system's answer.
        selected_object_id: The item the user picked afterwards (None until
            :meth:`DialogueSession.select` is called).
        rejected_object_ids: Items the user dismissed ("not this one");
            excluded from all later rounds.
    """

    index: int
    user_text: str
    had_image: bool
    answer: Answer
    selected_object_id: Optional[int] = None
    rejected_object_ids: Set[int] = field(default_factory=set)


class DialogueSession:
    """Stateful conversation against one coordinator.

    Thread-safe: every verb and every transcript read runs under one
    reentrant lock, so two refines racing on the same session cannot
    interleave their history/selection reads with each other's round
    append, and ``to_dict`` never renders a half-appended round.  (The
    query engine additionally serialises verbs per session; this lock
    keeps direct library users safe too.)
    """

    def __init__(self, coordinator: Coordinator) -> None:
        self.coordinator = coordinator
        self.rounds: List[Round] = []
        self._lock = threading.RLock()

    @property
    def round_count(self) -> int:
        """Completed rounds so far."""
        with self._lock:
            return len(self.rounds)

    def rounds_snapshot(self) -> List[Round]:
        """A stable copy of the round list for lock-free iteration."""
        with self._lock:
            return list(self.rounds)

    @property
    def last_answer(self) -> Answer:
        """The most recent answer (SessionError when no round has run)."""
        with self._lock:
            if not self.rounds:
                raise SessionError("no dialogue round has run yet")
            return self.rounds[-1].answer

    def _history(self) -> List[DialogueTurn]:
        return [
            DialogueTurn(user_text=r.user_text, system_text=r.answer.text)
            for r in self.rounds
        ]

    def _preferred_ids(self) -> Set[int]:
        return {
            r.selected_object_id
            for r in self.rounds
            if r.selected_object_id is not None
        }

    def _rejected_ids(self) -> Set[int]:
        rejected: Set[int] = set()
        for round_ in self.rounds:
            rejected |= round_.rejected_object_ids
        return rejected

    # ------------------------------------------------------------------
    # the interaction verbs
    # ------------------------------------------------------------------
    def ask(
        self,
        text: str,
        image: Any = None,
        k: Optional[int] = None,
        weights: Optional[dict] = None,
        where=None,
        deadline_ms: Optional[float] = None,
    ) -> Answer:
        """Start (or continue) the dialogue with a fresh query.

        Args:
            text: The user's request.
            image: Optional uploaded reference image (scenario 4b).
            k: Result-count override for this round.
            weights: Per-query modality weights (e.g. lean on the image).
            where: Predicate over objects restricting results (metadata
                filtering, e.g. ``lambda obj: "wool" in obj.concepts``).
            deadline_ms: Per-request latency budget override (resilience
                mode only).
        """
        if not text:
            raise SessionError("query text must be non-empty")
        if image is not None:
            query = RawQuery.from_text_and_image(text, image)
        else:
            query = RawQuery.from_text(text)
        return self._run(
            query, text, k=k, weights=weights, where=where,
            deadline_ms=deadline_ms,
        )

    def ask_agentic(
        self,
        text: str,
        image: Any = None,
        k: Optional[int] = None,
        weights: Optional[dict] = None,
        deadline_ms: Optional[float] = None,
    ) -> Answer:
        """Ask through the multi-hop agentic path (``POST /ask``).

        Same dialogue-state threading as :meth:`ask` (history, preferred
        selections, round numbering), but the round runs through
        :meth:`~repro.core.coordinator.Coordinator.answer_agentic` —
        which falls back to the single-hop path, bit-identically, when
        agentic mode is off.  Metadata filtering and rejected-id
        exclusion are :meth:`ask`-only for now.
        """
        if not text:
            raise SessionError("query text must be non-empty")
        if image is not None:
            query = RawQuery.from_text_and_image(text, image)
        else:
            query = RawQuery.from_text(text)
        with self._lock:
            answer = self.coordinator.answer_agentic(
                query,
                history=self._history(),
                preferred_ids=self._preferred_ids(),
                round_index=len(self.rounds),
                k=k,
                weights=weights,
                deadline_ms=deadline_ms,
            )
            self.rounds.append(
                Round(
                    index=len(self.rounds),
                    user_text=text,
                    had_image=query.has(Modality.IMAGE),
                    answer=answer,
                )
            )
            return answer

    def select(self, rank: int) -> int:
        """Mark the item at ``rank`` of the last answer as preferred.

        Returns the selected object id (the click on a result card).
        """
        with self._lock:
            answer = self.last_answer
            if not 0 <= rank < len(answer.items):
                raise SessionError(
                    f"rank {rank} out of range; last answer has "
                    f"{len(answer.items)} items"
                )
            object_id = answer.items[rank].object_id
            self.rounds[-1].selected_object_id = object_id
            return object_id

    def reject(self, rank: int) -> int:
        """Dismiss the item at ``rank`` of the last answer ("not this one").

        Rejected objects never reappear in later rounds of this session.
        Returns the rejected object id.
        """
        with self._lock:
            answer = self.last_answer
            if not 0 <= rank < len(answer.items):
                raise SessionError(
                    f"rank {rank} out of range; last answer has "
                    f"{len(answer.items)} items"
                )
            object_id = answer.items[rank].object_id
            self.rounds[-1].rejected_object_ids.add(object_id)
            return object_id

    def refine(
        self,
        text: str,
        k: Optional[int] = None,
        weights: Optional[dict] = None,
        deadline_ms: Optional[float] = None,
    ) -> Answer:
        """Refine using the selected item of the previous round.

        The selection's image modality augments the new text query (the
        dotted arrow of Figure 2).  Requires a prior :meth:`select`.
        """
        if not text:
            raise SessionError("refinement text must be non-empty")
        with self._lock:
            if not self.rounds:
                raise SessionError("nothing to refine; call ask() first")
            selected_id = self.rounds[-1].selected_object_id
            if selected_id is None:
                raise SessionError("select a result before refining")
            selected = self.coordinator.get_object(selected_id)
            query = QueryExecution.augment_query(text, selected)
            return self._run(
                query, text, k=k, weights=weights, deadline_ms=deadline_ms
            )

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The whole dialogue as a JSON-serialisable document."""
        with self._lock:
            return self._to_dict_locked()

    def _to_dict_locked(self) -> dict:
        return {
            "rounds": [
                {
                    "index": r.index,
                    "user_text": r.user_text,
                    "had_image": r.had_image,
                    "selected_object_id": r.selected_object_id,
                    "answer": {
                        "text": r.answer.text,
                        "grounded": r.answer.grounded,
                        "framework": r.answer.framework,
                        "llm": r.answer.llm,
                        "degraded": r.answer.degraded,
                        "degraded_reasons": list(r.answer.degraded_reasons),
                        "items": [
                            {
                                "object_id": item.object_id,
                                "description": item.description,
                                "score": item.score,
                                "preferred": item.preferred,
                            }
                            for item in r.answer.items
                        ],
                    },
                }
                for r in self.rounds
            ]
        }

    def export_transcript(self, path) -> None:
        """Write :meth:`to_dict` as pretty-printed JSON to ``path``."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    def _run(
        self,
        query: RawQuery,
        text: str,
        k: Optional[int] = None,
        weights: Optional[dict] = None,
        where=None,
        deadline_ms: Optional[float] = None,
    ) -> Answer:
        with self._lock:
            answer = self.coordinator.handle_query(
                query,
                history=self._history(),
                preferred_ids=self._preferred_ids(),
                round_index=len(self.rounds),
                k=k,
                weights=weights,
                exclude_ids=sorted(self._rejected_ids()),
                where=where,
                deadline_ms=deadline_ms,
            )
            self.rounds.append(
                Round(
                    index=len(self.rounds),
                    user_text=text,
                    had_image=query.has(Modality.IMAGE),
                    answer=answer,
                )
            )
            return answer
