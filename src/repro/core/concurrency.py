"""Concurrent query serving: the read/write lock and the query engine.

The paper's demo is an interactive multi-user system, and the roadmap's
north star is production-scale serving — which means a second request must
be able to arrive while the first is still running.  Two primitives make
that safe:

* :class:`RWLock` — a writer-preference read/write lock.  Searches are
  pure reads over the index structures, so any number may proceed in
  parallel; ingestion, removal, and re-apply mutate the graph and take the
  lock exclusively.  Writer preference keeps a stream of cheap reads from
  starving a pending ingest.
* :class:`QueryEngine` — a bounded thread-pool dispatcher.  Every API verb
  flows through it: reads run concurrently under the shared read lock up
  to ``workers`` at a time, writes run exclusively, and dialogue verbs on
  the same session serialise on a per-session lock so multi-round state
  (history, selections, rejections) never interleaves.  The queue is
  bounded: when ``workers`` tasks are running and ``max_queue`` more are
  waiting, further submissions fail fast with
  :class:`EngineSaturatedError` — backpressure instead of an unbounded
  memory ramp.

With ``workers == 1`` the engine runs tasks inline on the calling thread
(no pool is created), still enforcing every lock — so the default
configuration behaves exactly like the historical single-threaded server
while remaining safe if callers share it across threads.

Lock ordering, everywhere: session lock → engine RW lock → coordinator RW
lock.  All three levels are acquired in that order only (and each at most
once per task), so the system is deadlock-free by construction.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Dict, Hashable, List, Optional

import numpy as np

from repro.errors import DeadlineExceededError, MQAError

#: Task modes accepted by :meth:`QueryEngine.submit`.
READ = "read"
WRITE = "write"


class EngineSaturatedError(MQAError):
    """The engine's bounded queue is full; the request was rejected."""


class RWLock:
    """A writer-preference readers/writer lock.

    Any number of readers may hold the lock together; a writer holds it
    alone.  A waiting writer blocks *new* readers (preference), so writes
    cannot starve under a steady read stream.  Non-reentrant: a thread
    must not re-acquire in either mode while already holding it.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        """Block until no writer holds or awaits the lock, then enter."""
        with self._cond:
            while self._writer or self._waiting_writers:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        """Leave the shared section; wakes writers when the last reader exits."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def acquire_write(self) -> None:
        """Block until all readers have drained, then enter exclusively."""
        with self._cond:
            self._waiting_writers += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = True

    def release_write(self) -> None:
        """Leave the exclusive section and wake all waiters."""
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # context managers
    # ------------------------------------------------------------------
    class _Guard:
        __slots__ = ("_acquire", "_release")

        def __init__(self, acquire: Callable[[], None], release: Callable[[], None]) -> None:
            self._acquire = acquire
            self._release = release

        def __enter__(self) -> None:
            self._acquire()

        def __exit__(self, *exc_info: object) -> bool:
            self._release()
            return False

    def read(self) -> "RWLock._Guard":
        """``with lock.read():`` — shared acquisition."""
        return RWLock._Guard(self.acquire_read, self.release_read)

    def write(self) -> "RWLock._Guard":
        """``with lock.write():`` — exclusive acquisition."""
        return RWLock._Guard(self.acquire_write, self.release_write)

    def snapshot(self) -> Dict[str, int]:
        """Introspection for tests and ``/health``."""
        with self._cond:
            return {
                "active_readers": self._readers,
                "writer_active": int(self._writer),
                "waiting_writers": self._waiting_writers,
            }


class _BatchSlot:
    """One submitter's parking spot while the batcher coalesces requests."""

    __slots__ = ("item", "done", "result", "error")

    def __init__(self, item: Any) -> None:
        self.item = item
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None


class MicroBatcher:
    """Coalesces concurrent single-item calls into one batched call.

    Concurrent searches arriving within ``window_ms`` of each other are
    collected (up to ``max_batch``) and handed to ``runner`` as one list;
    each submitter receives exactly its own element of the runner's result
    list.  The batched execution path is bit-identical to the serial one,
    so coalescing changes throughput, never results.

    Leadership rotates: the first submitter to find no active collector
    becomes the leader, waits out the window (or until the batch fills),
    takes the oldest ``max_batch`` pending slots, and executes the runner
    *outside* the internal lock so the next leader can start collecting
    while the batch runs.  A leader whose own slot was swept into an
    earlier batch simply leads on behalf of the remaining waiters.

    With ``max_batch <= 1`` submissions run inline immediately — no
    waiting, no condition variable — preserving the exact pre-batching
    serving behaviour.

    Args:
        runner: Takes the batched items, returns one result per item
            (``len(results) == len(items)``, positionally matched).
        max_batch: Largest batch handed to ``runner``.
        window_ms: How long a leader waits for the batch to fill.
        clock: Injectable time source (monotonic seconds).
    """

    def __init__(
        self,
        runner: Callable[[List[Any]], List[Any]],
        max_batch: int = 1,
        window_ms: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if window_ms < 0:
            raise ValueError(f"window_ms must be >= 0, got {window_ms}")
        self._runner = runner
        self.max_batch = max_batch
        self.window_ms = window_ms
        self._clock = clock
        self._cond = threading.Condition()
        self._pending: List[_BatchSlot] = []
        self._leader_active = False
        self._histogram: Dict[int, int] = {}
        self._flushes: Dict[str, int] = {
            "full": 0, "window": 0, "inline": 0, "explicit": 0,
        }
        self._batches = 0
        self._items = 0

    @property
    def enabled(self) -> bool:
        """True when coalescing can actually happen (``max_batch > 1``)."""
        return self.max_batch > 1

    def submit(self, item: Any) -> Any:
        """Run ``item`` through the runner, possibly batched with others.

        Blocks until the item's result is available; re-raises the runner's
        exception if its batch failed.
        """
        if self.max_batch <= 1:
            result = self._runner([item])[0]
            with self._cond:
                self._record(1, "inline")
            return result
        slot = _BatchSlot(item)
        with self._cond:
            self._pending.append(slot)
            self._cond.notify_all()
            while not slot.done:
                if not self._leader_active and self._pending:
                    self._lead()
                else:
                    self._cond.wait(0.05)
        if slot.error is not None:
            raise slot.error
        return slot.result

    def _lead(self) -> None:
        """Collect and execute one batch.  Caller holds the lock."""
        self._leader_active = True
        deadline = self._clock() + self.window_ms / 1000.0
        while len(self._pending) < self.max_batch:
            remaining = deadline - self._clock()
            if remaining <= 0:
                break
            self._cond.wait(remaining)
        batch = self._pending[: self.max_batch]
        del self._pending[: self.max_batch]
        reason = "full" if len(batch) >= self.max_batch else "window"
        self._record(len(batch), reason)
        # Hand leadership back before running so the next batch can start
        # collecting while this one executes (batches pipeline under the
        # coordinator's shared read lock).
        self._leader_active = False
        self._cond.notify_all()
        self._cond.release()
        try:
            results = None
            error: Optional[BaseException] = None
            try:
                results = self._runner([slot.item for slot in batch])
                if len(results) != len(batch):
                    raise RuntimeError(
                        f"micro-batch runner returned {len(results)} results "
                        f"for {len(batch)} items"
                    )
            except BaseException as exc:  # noqa: BLE001 - mirrored to waiters
                error = exc
        finally:
            self._cond.acquire()
        for position, slot in enumerate(batch):
            if error is not None:
                slot.error = error
            else:
                slot.result = results[position]
            slot.done = True
        self._cond.notify_all()

    def note(self, size: int, reason: str = "explicit") -> None:
        """Record an externally-executed batch (e.g. an explicit list
        request that bypassed the collector) in the statistics."""
        with self._cond:
            self._record(size, reason)

    def _record(self, size: int, reason: str) -> None:
        self._histogram[size] = self._histogram.get(size, 0) + 1
        self._flushes[reason] = self._flushes.get(reason, 0) + 1
        self._batches += 1
        self._items += size

    def snapshot(self) -> Dict[str, Any]:
        """Batch-size histogram and flush reasons for ``GET /health``."""
        with self._cond:
            return {
                "enabled": self.enabled,
                "max_batch": self.max_batch,
                "window_ms": self.window_ms,
                "batches": self._batches,
                "queries": self._items,
                "histogram": {
                    str(size): count
                    for size, count in sorted(self._histogram.items())
                },
                "flushes": dict(self._flushes),
            }


def run_scattered(
    tasks: "List[Callable[[], Any]]",
    pool: "ThreadPoolExecutor | None" = None,
) -> List[Any]:
    """Run every thunk and return their results in task order.

    The scatter primitive behind the shard router: with ``pool`` the
    thunks run concurrently (per-shard service waits overlap, the way
    independent shard servers would); without one they run inline on the
    calling thread, in order — no pool threads, no overhead.  Either way
    the result list is positionally stable, so callers merge results
    deterministically regardless of completion order.  Exceptions
    propagate — thunks that must degrade instead of raise catch their own.
    """
    if pool is None:
        return [task() for task in tasks]
    futures = [pool.submit(task) for task in tasks]
    return [future.result() for future in futures]


class QueryEngine:
    """Bounded concurrent dispatcher for API verbs.

    Args:
        workers: Maximum tasks running at once.  ``1`` (the default) runs
            tasks inline on the calling thread — no pool threads exist and
            behaviour is byte-identical to the historical serial server.
        max_queue: Tasks allowed to *wait* beyond the running ones before
            :meth:`submit` rejects with :class:`EngineSaturatedError`.
        clock: Time source for queue-wait measurement (injectable).

    Reads run under the shared :attr:`rwlock` read side, writes under its
    write side.  A task submitted with a ``session_key`` additionally
    holds that session's lock for its whole duration, serialising dialogue
    rounds per session while different sessions proceed in parallel.
    """

    def __init__(
        self,
        workers: int = 1,
        max_queue: int = 64,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.workers = workers
        self.max_queue = max_queue
        self.rwlock = RWLock()
        self._clock = clock
        # Slots bound total outstanding work (running + queued).
        self._slots = threading.Semaphore(workers + max_queue)
        # In inline mode the semaphore (not a pool) caps execution width.
        self._exec = threading.Semaphore(workers)
        self._pool: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=workers, thread_name_prefix="mqa-engine")
            if workers > 1
            else None
        )
        self._session_locks: Dict[Hashable, threading.Lock] = {}
        self._stats_lock = threading.Lock()
        self._queued = 0
        self._in_flight = 0
        self._completed = 0
        self._rejected = 0
        self._shed = 0
        self._errors = 0
        self._reads = 0
        self._writes = 0
        self._waits_ms: List[float] = []
        self._closed = False
        #: Optional ``wait_ms -> None`` callback invoked as each task
        #: starts (outside the stats lock) — the admission controller's
        #: queue-delay EWMA feed.
        self.wait_observer: Optional[Callable[[float], None]] = None

    # ------------------------------------------------------------------
    # session locks
    # ------------------------------------------------------------------
    def session_lock(self, key: Hashable) -> threading.Lock:
        """The (lazily created) lock serialising one session's verbs."""
        with self._stats_lock:
            lock = self._session_locks.get(key)
            if lock is None:
                lock = self._session_locks[key] = threading.Lock()
            return lock

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def submit(
        self,
        fn: Callable[[], Any],
        *,
        mode: str = READ,
        session_key: Optional[Hashable] = None,
        deadline: Optional[Any] = None,
    ) -> "Future[Any]":
        """Schedule ``fn`` under the engine's locks; returns its future.

        ``deadline`` (a :class:`repro.core.resilience.Deadline`) lets the
        engine shed a request whose latency budget already expired while
        it waited in the queue — the task fails with
        :class:`~repro.errors.DeadlineExceededError` instead of running
        work whose caller has given up.

        Raises:
            EngineSaturatedError: All workers are busy and the wait queue
                is full (the caller should shed load or retry later).
        """
        if mode not in (READ, WRITE):
            raise ValueError(f"mode must be 'read' or 'write', got {mode!r}")
        if self._closed:
            raise EngineSaturatedError("engine has been shut down")
        if not self._slots.acquire(blocking=False):
            with self._stats_lock:
                self._rejected += 1
            raise EngineSaturatedError(
                f"engine saturated: {self.workers} worker(s) busy and "
                f"queue of {self.max_queue} full"
            )
        submitted = self._clock()
        with self._stats_lock:
            self._queued += 1
        if self._pool is not None:
            try:
                return self._pool.submit(
                    self._run_task, fn, mode, session_key, submitted, deadline
                )
            except BaseException:
                self._slots.release()
                with self._stats_lock:
                    self._queued -= 1
                raise
        # Inline mode: execute on the calling thread, still under every
        # lock, and hand back an already-resolved future.
        future: "Future[Any]" = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(
                self._run_task(fn, mode, session_key, submitted, deadline)
            )
        except BaseException as exc:  # noqa: BLE001 - mirrored into the future
            future.set_exception(exc)
        return future

    def run(
        self,
        fn: Callable[[], Any],
        *,
        mode: str = READ,
        session_key: Optional[Hashable] = None,
    ) -> Any:
        """Synchronous :meth:`submit`: dispatch and wait for the result."""
        return self.submit(fn, mode=mode, session_key=session_key).result()

    def _run_task(
        self,
        fn: Callable[[], Any],
        mode: str,
        session_key: Optional[Hashable],
        submitted: float,
        deadline: Optional[Any] = None,
    ) -> Any:
        self._exec.acquire()
        wait_ms = (self._clock() - submitted) * 1000.0
        with self._stats_lock:
            self._queued -= 1
            self._in_flight += 1
            self._waits_ms.append(wait_ms)
            if len(self._waits_ms) > 1024:
                del self._waits_ms[: len(self._waits_ms) - 1024]
            if mode == READ:
                self._reads += 1
            else:
                self._writes += 1
        observer = self.wait_observer
        if observer is not None:
            observer(wait_ms)
        session_lock = (
            self.session_lock(session_key) if session_key is not None else None
        )
        try:
            if deadline is not None and deadline.expired:
                with self._stats_lock:
                    self._shed += 1
                raise DeadlineExceededError(
                    f"request deadline of {deadline.budget_ms:.0f} ms expired "
                    f"after {wait_ms:.1f} ms in the engine queue"
                )
            if session_lock is not None:
                session_lock.acquire()
            try:
                guard = self.rwlock.read() if mode == READ else self.rwlock.write()
                with guard:
                    return fn()
            finally:
                if session_lock is not None:
                    session_lock.release()
        except BaseException:
            with self._stats_lock:
                self._errors += 1
            raise
        finally:
            with self._stats_lock:
                self._in_flight -= 1
                self._completed += 1
            self._exec.release()
            self._slots.release()

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Live count of submitted-but-not-yet-running requests.

        Cheap enough to poll per admission decision — admission control
        uses it as a Little's-law wait estimate that, unlike the
        queue-wait EWMA, cannot go stale while arrivals are being shed.
        """
        with self._stats_lock:
            return self._queued

    def snapshot(self) -> Dict[str, Any]:
        """Pool depth and queue statistics for ``GET /health``."""
        with self._stats_lock:
            waits = list(self._waits_ms)
            stats = {
                "workers": self.workers,
                "max_queue": self.max_queue,
                "inline": self._pool is None,
                "queued": self._queued,
                "in_flight": self._in_flight,
                "completed": self._completed,
                "rejected": self._rejected,
                "shed": self._shed,
                "errors": self._errors,
                "reads": self._reads,
                "writes": self._writes,
                "sessions_tracked": len(self._session_locks),
            }
        if waits:
            sample = np.asarray(waits)
            stats["queue_wait_ms"] = {
                "p50": round(float(np.percentile(sample, 50)), 3),
                "p95": round(float(np.percentile(sample, 95)), 3),
                "max": round(float(sample.max()), 3),
            }
        else:
            stats["queue_wait_ms"] = {"p50": 0.0, "p95": 0.0, "max": 0.0}
        stats["lock"] = self.rwlock.snapshot()
        return stats

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for the pool to drain."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=wait)

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.shutdown()
        return False
