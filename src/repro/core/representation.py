"""Component 2: vector representation.

Builds the configured encoder set and produces the modality weights —
learned through contrastive training, fixed from user input, or equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import MQAConfig, WeightMode
from repro.data.knowledge_base import KnowledgeBase
from repro.data.modality import Modality
from repro.encoders import EncoderSet, build_encoder_set
from repro.weights import (
    VectorWeightLearner,
    WeightLearningConfig,
    WeightLearningReport,
    equal_weights,
    fixed_weights,
)


@dataclass
class RepresentationOutcome:
    """What the representation stage hands to index construction.

    Attributes:
        encoder_set: The modality -> encoder assignment.
        weights: Modality weights for the multi-vector distance.
        learning_report: The contrastive run's report (None unless
            weight_mode is LEARNED).
    """

    encoder_set: EncoderSet
    weights: Dict[Modality, float]
    learning_report: Optional[WeightLearningReport] = None


class VectorRepresentation:
    """Encodes the knowledge base's modalities and weighs them."""

    name = "vector representation"

    def run(self, config: MQAConfig, kb: KnowledgeBase) -> RepresentationOutcome:
        """Build encoders and weights for ``kb`` per ``config``."""
        encoder_set = build_encoder_set(config.encoder_set, kb, seed=config.encoder_seed)
        mode = config.weight_mode
        if mode is WeightMode.EQUAL:
            return RepresentationOutcome(
                encoder_set=encoder_set,
                weights=equal_weights(encoder_set.modalities),
            )
        if mode is WeightMode.FIXED:
            assert config.fixed_weights is not None  # validated by MQAConfig
            return RepresentationOutcome(
                encoder_set=encoder_set,
                weights=fixed_weights(encoder_set.modalities, config.fixed_weights),
            )
        learner = VectorWeightLearner(WeightLearningConfig(**config.weight_learning))
        report = learner.fit(kb, encoder_set)
        return RepresentationOutcome(
            encoder_set=encoder_set,
            weights=report.weights,
            learning_report=report,
        )
