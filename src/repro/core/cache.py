"""Query-result caching with ingestion-aware invalidation.

Interactive systems see repeated queries (the user re-runs a search, the UI
refreshes a panel); an LRU cache over retrieval responses removes the
duplicate graph traversals.  The cache key covers everything that affects
the result — query content, k, budget, per-query weights, exclusions — and
the whole cache invalidates whenever the corpus changes (ingestion), so a
cached answer can never miss a newly added object.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.data.modality import Modality
from repro.data.objects import RawQuery
from repro.errors import ConfigurationError
from repro.retrieval.base import RetrievalResponse


def _digest_content(value: Any) -> str:
    """Stable digest of query content (text or array)."""
    digest = hashlib.blake2b(digest_size=12)
    if isinstance(value, str):
        digest.update(b"s")
        digest.update(value.encode("utf-8"))
    else:
        array = np.ascontiguousarray(np.asarray(value, dtype=np.float64))
        digest.update(b"a")
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


class QueryCache:
    """LRU cache over retrieval responses.

    Thread-safe: concurrent searches share one cache, and the LRU
    reordering (``move_to_end``) would corrupt the underlying ordered
    dict if two readers raced through it unlocked.

    Args:
        capacity: Maximum cached responses; least-recently-used evicted.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._store: "OrderedDict[Tuple, RetrievalResponse]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self._generation = 0

    def key_for(
        self,
        query: RawQuery,
        k: int,
        budget: int,
        weights: "Dict[Modality, float] | None" = None,
        exclude_ids: Tuple[int, ...] = (),
    ) -> Tuple:
        """Build the cache key for one retrieval call."""
        content = tuple(
            (modality.value, _digest_content(query.get(modality)))
            for modality in sorted(query.modalities, key=lambda m: m.value)
        )
        weight_items: Tuple = ()
        if weights is not None:
            weight_items = tuple(
                sorted((Modality.parse(m).value, float(w)) for m, w in weights.items())
            )
        return (self._generation, content, k, budget, weight_items, tuple(exclude_ids))

    def get(self, key: Tuple) -> Optional[RetrievalResponse]:
        """Cached response for ``key``, or None (counts hit/miss)."""
        with self._lock:
            response = self._store.get(key)
            if response is None:
                self.misses += 1
                return None
            self.hits += 1
            self._store.move_to_end(key)
            return response

    def put(self, key: Tuple, response: RetrievalResponse) -> None:
        """Store ``response`` under ``key`` (evicting LRU if full)."""
        with self._lock:
            self._store[key] = response
            self._store.move_to_end(key)
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)

    def invalidate(self) -> None:
        """Drop everything (called when the corpus changes)."""
        with self._lock:
            self._store.clear()
            self._generation += 1

    @property
    def size(self) -> int:
        """Number of cached responses."""
        with self._lock:
            return len(self._store)

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses), 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
