"""Query-result caching with ingestion-aware invalidation.

Interactive systems see repeated queries (the user re-runs a search, the UI
refreshes a panel); an LRU cache over retrieval responses removes the
duplicate graph traversals.  The cache key covers everything that affects
the result — query content, k, budget, per-query weights, exclusions — and
the whole cache invalidates whenever the corpus changes (ingestion), so a
cached answer can never miss a newly added object.

:class:`SemanticQueryCache` layers near-duplicate matching on top: when
the exact key misses, the query's per-modality embeddings are compared
(cosine) against the embeddings of cached entries sharing the same
modality signature, ``k``, budget, weights, and — critically — the same
generation counter, so a semantic hit can never cross an ingest
invalidation.  A configurable recall guard (the planner's prediction
that serving the neighbour keeps recall above the floor) gates every
near-hit; ``threshold <= 0`` disables semantic matching entirely and the
cache degenerates to exact-match behaviour bit-for-bit.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.data.modality import Modality
from repro.data.objects import RawQuery
from repro.errors import ConfigurationError
from repro.retrieval.base import RetrievalResponse


def _digest_content(value: Any) -> str:
    """Stable digest of query content (text or array)."""
    digest = hashlib.blake2b(digest_size=12)
    if isinstance(value, str):
        digest.update(b"s")
        digest.update(value.encode("utf-8"))
    else:
        array = np.ascontiguousarray(np.asarray(value, dtype=np.float64))
        digest.update(b"a")
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


class QueryCache:
    """LRU cache over retrieval responses.

    Thread-safe: concurrent searches share one cache, and the LRU
    reordering (``move_to_end``) would corrupt the underlying ordered
    dict if two readers raced through it unlocked.

    Args:
        capacity: Maximum cached responses; least-recently-used evicted.
    """

    #: True on subclasses that support near-duplicate lookups; the
    #: executor checks this flag instead of isinstance so the exact-match
    #: code path stays byte-identical.
    semantic = False

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._store: "OrderedDict[Tuple, RetrievalResponse]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self._generation = 0

    def key_for(
        self,
        query: RawQuery,
        k: int,
        budget: int,
        weights: "Dict[Modality, float] | None" = None,
        exclude_ids: Tuple[int, ...] = (),
    ) -> Tuple:
        """Build the cache key for one retrieval call."""
        content = tuple(
            (modality.value, _digest_content(query.get(modality)))
            for modality in sorted(query.modalities, key=lambda m: m.value)
        )
        weight_items: Tuple = ()
        if weights is not None:
            weight_items = tuple(
                sorted((Modality.parse(m).value, float(w)) for m, w in weights.items())
            )
        return (self._generation, content, k, budget, weight_items, tuple(exclude_ids))

    def get(self, key: Tuple) -> Optional[RetrievalResponse]:
        """Cached response for ``key``, or None (counts hit/miss)."""
        with self._lock:
            response = self._store.get(key)
            if response is None:
                self.misses += 1
                return None
            self.hits += 1
            self._store.move_to_end(key)
            return response

    def put(self, key: Tuple, response: RetrievalResponse) -> None:
        """Store ``response`` under ``key`` (evicting LRU if full)."""
        with self._lock:
            self._store[key] = response
            self._store.move_to_end(key)
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)

    def invalidate(self) -> None:
        """Drop everything (called when the corpus changes)."""
        with self._lock:
            self._store.clear()
            self._generation += 1

    @property
    def size(self) -> int:
        """Number of cached responses."""
        with self._lock:
            return len(self._store)

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses), 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """One consistent view of the counters, taken under the lock.

        ``hits``/``misses``/``size``/``generation`` are mutated together
        under ``_lock``; reading them attribute-by-attribute (as the
        metrics endpoint used to) can observe a hit counted against the
        wrong total.  Everything that reports the cache — the health
        payload, ``/metrics``, the stats plane, the status panel — goes
        through this method.
        """
        with self._lock:
            hits = self.hits
            misses = self.misses
            size = len(self._store)
            generation = self._generation
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "size": size,
            "generation": generation,
            "hit_rate": round(hits / total, 4) if total else 0.0,
        }


class SemanticQueryCache(QueryCache):
    """An exact-match :class:`QueryCache` with near-duplicate serving.

    Keys work exactly like the base class; additionally every stored
    entry registers its query embedding in a *bucket* keyed on the exact
    key minus the content digests (generation, modality signature, k,
    budget, weights, exclusions).  An exact miss scans the matching
    bucket for the nearest cached neighbour; at or above the cosine
    ``threshold`` — and past the ``recall_guard`` — the neighbour's
    response is served as a *semantic hit*.

    Generation safety is structural: the generation counter is part of
    both the exact key and the bucket key, and :meth:`invalidate` clears
    the embedding registry, so a response cached before an ingest can
    never be served after it.

    Args:
        embed: Deterministic ``query -> (signature, unit_vector)``
            mapping (built by the coordinator from the active encoder
            set); only called when semantic matching is active.
        capacity: Maximum cached responses (LRU).
        threshold: Cosine similarity at or above which a neighbour
            qualifies; ``<= 0`` disables semantic matching entirely —
            behaviour is then bit-identical to :class:`QueryCache`.
        recall_guard: Optional ``similarity -> bool`` predicate (the
            planner's recall prediction); a qualifying neighbour it
            rejects is counted in ``semantic_rejects`` and the query
            proceeds as a miss.
    """

    semantic = True

    def __init__(
        self,
        embed: Callable[[RawQuery], Tuple[Tuple, np.ndarray]],
        capacity: int = 128,
        threshold: float = 0.9,
        recall_guard: "Callable[[float], bool] | None" = None,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError(
                f"semantic threshold must be in [0, 1], got {threshold}"
            )
        super().__init__(capacity=capacity)
        self._embed = embed
        self.threshold = float(threshold)
        self.recall_guard = recall_guard
        self.semantic_hits = 0
        self.semantic_rejects = 0
        #: bucket key -> [(unit vector, exact key), ...]
        self._vectors: Dict[Tuple, List[Tuple[np.ndarray, Tuple]]] = {}

    @staticmethod
    def _bucket_of(key: Tuple) -> Tuple:
        """The semantic bucket for an exact key: content digests replaced
        by the modality signature, everything else kept verbatim."""
        signature = tuple(modality for modality, _ in key[1])
        return (key[0], signature) + key[2:]

    def lookup(
        self, key: Tuple, query: RawQuery
    ) -> "Tuple[Optional[RetrievalResponse], str, Optional[Tuple]]":
        """Exact-then-semantic lookup for one retrieval call.

        Returns ``(response, label, registration)`` where ``label`` is
        ``"hit"``, ``"semantic"``, or ``"miss"``; on a miss with semantic
        matching active, ``registration`` carries ``(bucket, vector)``
        for the follow-up :meth:`put_semantic`.  Counter discipline: an
        exact hit counts as a hit, a semantic hit counts only in
        ``semantic_hits`` (not as a miss), everything else as a miss.
        """
        with self._lock:
            response = self._store.get(key)
            if response is not None:
                self.hits += 1
                self._store.move_to_end(key)
                return response, "hit", None
            if self.threshold <= 0.0:
                self.misses += 1
                return None, "miss", None
        # The embedding is a pure function of the query; computing it
        # outside the lock keeps the scan the only serialised part.
        signature, vector = self._embed(query)
        bucket = (key[0], signature) + key[2:]
        guard = self.recall_guard
        with self._lock:
            best_key: Optional[Tuple] = None
            best_sim = self.threshold
            for stored_vector, stored_key in self._vectors.get(bucket, ()):
                if stored_key not in self._store:
                    continue  # evicted by LRU; pruned on the next put
                similarity = float(stored_vector @ vector)
                if similarity >= best_sim:
                    best_sim = similarity
                    best_key = stored_key
            if best_key is not None:
                if guard is None or guard(best_sim):
                    self.semantic_hits += 1
                    self._store.move_to_end(best_key)
                    return self._store[best_key], "semantic", None
                self.semantic_rejects += 1
            self.misses += 1
            return None, "miss", (bucket, vector)

    def put_semantic(
        self,
        key: Tuple,
        registration: Tuple,
        response: RetrievalResponse,
    ) -> None:
        """Store a fresh response and register its embedding.

        ``registration`` is the ``(bucket, vector)`` pair returned by the
        preceding :meth:`lookup` miss.  The bucket list is pruned of
        entries whose key was LRU-evicted so the registry stays bounded
        by the store's capacity.
        """
        bucket, vector = registration
        with self._lock:
            self._store[key] = response
            self._store.move_to_end(key)
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)
            entries = self._vectors.setdefault(bucket, [])
            entries[:] = [
                (vec, stored_key)
                for vec, stored_key in entries
                if stored_key in self._store and stored_key != key
            ]
            entries.append((vector, key))

    def invalidate(self) -> None:
        """Drop responses *and* embeddings (corpus changed)."""
        with self._lock:
            self._store.clear()
            self._vectors.clear()
            self._generation += 1

    def snapshot(self) -> Dict[str, Any]:
        """Base counters plus the semantic hit/near-hit/rejection view."""
        with self._lock:
            hits = self.hits
            misses = self.misses
            semantic_hits = self.semantic_hits
            semantic_rejects = self.semantic_rejects
            size = len(self._store)
            generation = self._generation
        total = hits + semantic_hits + misses
        body = {
            "hits": hits,
            "misses": misses,
            "size": size,
            "generation": generation,
            "hit_rate": round(hits / total, 4) if total else 0.0,
            "semantic": True,
            "threshold": self.threshold,
            "semantic_hits": semantic_hits,
            "semantic_rejects": semantic_rejects,
            "semantic_hit_rate": (
                round(semantic_hits / total, 4) if total else 0.0
            ),
        }
        return body
