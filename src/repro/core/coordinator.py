"""The coordinator — the system's central nexus.

"Both the frontend and backend exclusively interact with the coordinator,
which functions as a conduit between them."  Setup (preprocessing ->
representation -> index construction) runs as a DAG on the CGraph stand-in;
each query round flows query-execution -> answer-generation.  Every data
transition is recorded in the event log, and every stage updates the
status board the monitoring panel renders.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.agentic import AgenticAnswerer, QueryDecomposer
from repro.core.answer import Answer
from repro.core.cache import QueryCache, SemanticQueryCache
from repro.core.concurrency import RWLock
from repro.core.config import MQAConfig
from repro.core.events import EventLog
from repro.core.execution import QueryExecution
from repro.core.generation import AnswerGeneration
from repro.core.indexing import IndexConstruction
from repro.core.planning import AdmissionController, QueryPlanner
from repro.core.preprocessing import DataPreprocessing
from repro.core.representation import RepresentationOutcome, VectorRepresentation
from repro.core.resilience import Deadline, ResilienceManager
from repro.core.status import StatusBoard
from repro.data.knowledge_base import KnowledgeBase
from repro.data.modality import Modality
from repro.data.objects import RawQuery
from repro.errors import CoordinatorError, MQAError
from repro.llm import QueryRewriter, build_llm
from repro.llm.prompts import DialogueTurn
from repro.observability import (
    NOOP_TRACER,
    FlightRecorder,
    MetricsRegistry,
    QualityMonitor,
    QueryCostProfile,
    SLOMonitor,
    SLOTargets,
    StatsPlane,
    Tracer,
    cost_context,
    trace_span,
)
from repro.pipeline import DagPipeline
from repro.utils import Timer


class Coordinator:
    """Owns the five components and mediates every interaction."""

    def __init__(
        self,
        config: MQAConfig,
        knowledge_base: Optional[KnowledgeBase] = None,
    ) -> None:
        self.config = config
        self._provided_kb = knowledge_base
        # Queries are pure reads over the index structures; ingestion and
        # removal mutate them.  Any number of handle_query calls share the
        # read side while ingest_object/remove_object take the write side
        # exclusively — a search can never observe a half-mutated graph.
        self.rwlock = RWLock()
        self.events = EventLog(capacity=config.event_capacity)
        self.status = StatusBoard()
        self.metrics = MetricsRegistry()
        # A flight recorder persists span trees, so it implies tracing even
        # when the tracing flag itself is off.
        self.tracer = (
            Tracer(capacity=config.trace_capacity, metrics=self.metrics)
            if config.tracing or config.recorder_path is not None
            else NOOP_TRACER
        )
        self.recorder: Optional[FlightRecorder] = (
            FlightRecorder(
                config.recorder_path,
                config=config.to_dict(),
                max_bytes=config.recorder_max_bytes,
                max_files=config.recorder_max_files,
                metrics=self.metrics,
            )
            if config.recorder_path is not None
            else None
        )
        self.slo: Optional[SLOMonitor] = (
            SLOMonitor(
                SLOTargets(
                    latency_ms=config.slo_latency_ms,
                    error_rate=config.slo_error_rate,
                    window=config.slo_window,
                )
            )
            if config.monitoring
            else None
        )
        self.quality: Optional[QualityMonitor] = None  # needs the kb; see setup()
        # The cost plane only exists when cost accounting is on; every
        # query/batch observed here feeds GET /stats and the labelled
        # Prometheus families.
        self.stats: Optional[StatsPlane] = (
            StatsPlane(
                metrics=self.metrics, exemplars=config.stats_exemplars
            )
            if config.cost_accounting
            else None
        )
        self.resilience = ResilienceManager.from_config(config, metrics=self.metrics)
        # The planner consumes the stats plane's live distributions (when
        # cost accounting is on) and its own per-tier observations; both
        # it and the admission controller are None when disabled, so the
        # query path stays byte-identical.
        self.planner: Optional[QueryPlanner] = (
            QueryPlanner(
                base_budget=config.search_budget,
                k=config.result_count,
                recall_floor=config.recall_floor,
                shards=config.shards or 0,
                stats=self.stats,
                metrics=self.metrics,
            )
            if config.planner
            else None
        )
        self.admission: Optional[AdmissionController] = (
            AdmissionController.from_config(config, metrics=self.metrics)
            if config.admission
            else None
        )
        self.agentic: Optional[AgenticAnswerer] = None  # needs the kb; see setup()
        self.kb: Optional[KnowledgeBase] = None
        self.representation: Optional[RepresentationOutcome] = None
        self.execution: Optional[QueryExecution] = None
        self.generation: Optional[AnswerGeneration] = None
        self._fallback_generation: Optional[AnswerGeneration] = None
        self._is_setup = False

    # ------------------------------------------------------------------
    # setup flow (preprocessing -> representation -> indexing)
    # ------------------------------------------------------------------
    def setup(self) -> "Coordinator":
        """Run the backend setup pipeline; returns self for chaining.

        On stage failure the corresponding milestone is marked FAILED (the
        status panel shows ✗ plus the error) and the pipeline error
        propagates — the system must never come up half-built.
        """
        stage_names = {
            "preprocessing": "data preprocessing",
            "representation": "vector representation",
            "indexing": "index construction",
        }

        def guarded(node: str, fn):
            def run(context: dict):
                try:
                    return fn(context)
                except Exception as exc:
                    milestone = stage_names.get(node)
                    if milestone is not None:
                        self.status.fail(milestone, f"{type(exc).__name__}: {exc}")
                    raise

            return run

        pipeline = DagPipeline(name="mqa-setup")
        pipeline.add_node("preprocessing", guarded("preprocessing", self._run_preprocessing))
        pipeline.add_node(
            "representation",
            guarded("representation", self._run_representation),
            depends_on=["preprocessing"],
        )
        pipeline.add_node(
            "indexing", guarded("indexing", self._run_indexing), depends_on=["representation"]
        )
        pipeline.add_node("llm", self._run_llm_setup, depends_on=["indexing"])
        pipeline.run({})
        if self.config.monitoring and self.kb is not None:
            self.quality = QualityMonitor(
                self.kb,
                self.metrics,
                sample_rate=self.config.monitor_sample_rate,
                k=self.config.result_count,
            )
        if self.config.agentic and self.kb is not None:
            # Decomposition needs the domain's concept vocabulary, so the
            # answerer can only exist once preprocessing delivered the kb.
            self.agentic = AgenticAnswerer(
                QueryDecomposer(
                    self.kb.space,
                    max_hops=self.config.agentic_max_hops,
                    seed=self.config.dataset.seed,
                    temperature=self.config.temperature,
                ),
                refine_rounds=self.config.agentic_refine_rounds,
                metrics=self.metrics,
            )
        self._is_setup = True
        return self

    def _run_preprocessing(self, context: dict) -> Optional[KnowledgeBase]:
        stage = "data preprocessing"
        self.status.start(stage)
        self.events.record("frontend", "coordinator", "configuration", "setup requested")
        component = DataPreprocessing()
        with Timer() as timer:
            kb = component.run(self.config, self._provided_kb)
        self.kb = kb
        if kb is None:
            self.status.finish(stage, timer.elapsed, mode="LLM-only (no external knowledge)")
            self.events.record("coordinator", "preprocessing", "knowledge-base", "disabled")
        else:
            self.status.finish(
                stage,
                timer.elapsed,
                objects=str(len(kb)),
                modalities="+".join(m.value for m in kb.modalities),
                domain=kb.name,
            )
            self.events.record(
                "coordinator", "preprocessing", "knowledge-base", kb.describe()
            )
        return kb

    def _run_representation(self, context: dict) -> Optional[RepresentationOutcome]:
        stage = "vector representation"
        if self.kb is None:
            self.status.finish(stage, 0.0, mode="skipped (LLM-only)")
            return None
        self.status.start(stage)
        component = VectorRepresentation()
        with Timer() as timer:
            outcome = component.run(self.config, self.kb)
        self.representation = outcome
        dims = ", ".join(
            f"{m.value}:{d}" for m, d in outcome.encoder_set.dims().items()
        )
        weights = ", ".join(
            f"{m.value}={w:.2f}" for m, w in outcome.weights.items()
        )
        self.status.finish(
            stage,
            timer.elapsed,
            encoders=outcome.encoder_set.name,
            modal_count=str(len(outcome.encoder_set.modalities)),
            vector_dims=dims,
            weights=weights,
            weight_mode=self.config.weight_mode.value,
        )
        self.events.record(
            "preprocessing", "representation", "objects", f"encoded with {dims}"
        )
        return outcome

    def _run_indexing(self, context: dict) -> None:
        stage = "index construction"
        if self.kb is None or self.representation is None:
            self.status.finish(stage, 0.0, mode="skipped (LLM-only)")
            return None
        self.status.start(stage)
        component = IndexConstruction()
        with Timer() as timer, self.tracer.trace(
            "index-build", index=self.config.index, objects=len(self.kb)
        ):
            framework = component.run(
                self.config,
                self.kb,
                self.representation.encoder_set,
                self.representation.weights,
                resilience=self.resilience,
                events=self.events,
                metrics=self.metrics,
            )
        cache = self._build_cache()
        self.execution = QueryExecution(
            framework,
            cache=cache,
            cost_accounting=self.config.cost_accounting,
            index_name=self.config.index,
        )
        self.status.finish(
            stage,
            timer.elapsed,
            index=self.config.index,
            framework=framework.name,
        )
        self.events.record(
            "representation", "indexing", "vectors", framework.describe()
        )
        return None

    def _build_cache(self) -> Optional[QueryCache]:
        """The query cache for this deployment.

        ``semantic_cache`` upgrades the exact-match LRU to the
        near-duplicate :class:`~repro.core.cache.SemanticQueryCache`; the
        embedding is the concatenation of the query's per-modality
        encoder vectors (each unit-normalised, jointly re-scaled so the
        cosine of two embeddings is the mean per-modality cosine), and
        the planner — when one exists — supplies the recall guard.
        """
        if self.config.semantic_cache:
            assert self.representation is not None
            encoder_set = self.representation.encoder_set

            def embed(query: RawQuery):
                vectors = encoder_set.encode_query(query)
                signature: List[str] = []
                parts: List[np.ndarray] = []
                for modality in sorted(vectors, key=lambda m: m.value):
                    vector = np.asarray(vectors[modality], dtype=np.float64)
                    norm = float(np.linalg.norm(vector))
                    parts.append(vector / norm if norm > 0.0 else vector)
                    signature.append(modality.value)
                joined = np.concatenate(parts) / float(np.sqrt(len(parts)))
                return tuple(signature), joined

            return SemanticQueryCache(
                embed,
                threshold=self.config.semantic_threshold,
                recall_guard=(
                    self.planner.semantic_guard
                    if self.planner is not None
                    else None
                ),
            )
        return QueryCache() if self.config.cache_queries else None

    def _run_llm_setup(self, context: dict) -> None:
        llm = build_llm(self.config.llm, self.config.llm_params) if self.config.llm else None
        self.generation = AnswerGeneration(llm=llm, temperature=self.config.temperature)
        # The degradation target when the real LLM fails: same component,
        # no model — produces the grounded retrieval-only listing.
        self._fallback_generation = AnswerGeneration(
            llm=None, temperature=self.config.temperature
        )
        detail = self.config.llm or "none (direct engagement mode)"
        self.events.record("coordinator", "generation", "llm", detail)
        return None

    # ------------------------------------------------------------------
    # query flow (execution -> generation)
    # ------------------------------------------------------------------
    def _require_setup(self) -> None:
        if not self._is_setup:
            raise CoordinatorError("coordinator has not been set up; call setup() first")

    def handle_query(
        self,
        query: RawQuery,
        history: Sequence[DialogueTurn] = (),
        preferred_ids: Sequence[int] = (),
        round_index: int = 0,
        k: Optional[int] = None,
        weights: "Dict[Modality, float] | None" = None,
        exclude_ids: Sequence[int] = (),
        where=None,
        deadline_ms: Optional[float] = None,
    ) -> Answer:
        """Run one full query round through execution and generation.

        ``weights`` applies a per-query modality re-weighting (the
        configuration box's "modality weights at the query point").
        ``where`` filters results by a predicate over
        :class:`~repro.data.MultiModalObject` (metadata filtering).
        ``deadline_ms`` overrides the configured per-request latency
        budget (resilience mode only; None uses ``config.deadline_ms``).
        """
        self._require_setup()
        assert self.generation is not None
        k = k if k is not None else self.config.result_count
        user_text = str(query.get(Modality.TEXT)) if query.has(Modality.TEXT) else ""
        had_image = query.has(Modality.IMAGE)
        deadline = self.resilience.deadline(deadline_ms)

        self.events.record(
            "frontend", "coordinator", "raw-query",
            f"round {round_index}: {user_text[:60]!r}"
            + (" +image" if had_image else ""),
        )

        with self.rwlock.read(), Timer() as round_timer, self.tracer.trace(
            "query", round=round_index, k=k, had_image=had_image
        ):
            answer = self._run_query_round(
                query, user_text, had_image, history, preferred_ids,
                round_index, k, weights, exclude_ids, where, deadline,
            )
        self.metrics.inc("coordinator.queries")
        if answer.degraded:
            self.metrics.inc("coordinator.degraded")
        self.metrics.observe("coordinator.query_ms", round_timer.elapsed * 1000.0)
        # Stats folding, recording, and quality scoring happen OUTSIDE the
        # trace block: they must not add spans, or a replayed flight would
        # never match its recording's span-tree shape.
        if self.stats is not None and answer.cost is not None:
            self.stats.observe(answer.cost, round_timer.elapsed * 1000.0)
        if self.recorder is not None:
            self._record_flight(
                query, user_text, had_image, history, preferred_ids,
                round_index, k, weights, exclude_ids, where, answer,
            )
        if self.quality is not None and user_text:
            score = self.quality.maybe_score(user_text, answer.ids)
            if (
                score is not None
                and self.stats is not None
                and answer.cost is not None
            ):
                self.stats.observe_recall(
                    answer.cost.framework,
                    answer.cost.index,
                    float(score["recall_at_k"]),
                )
            if (
                score is not None
                and self.planner is not None
                and answer.plan is not None
            ):
                # Close the loop: sampled recall@k scores tune the
                # planner's per-tier recall model.
                self.planner.observe_recall(
                    answer.plan.budget, float(score["recall_at_k"])
                )
        return answer

    def answer_agentic(
        self,
        query: RawQuery,
        history: Sequence[DialogueTurn] = (),
        preferred_ids: Sequence[int] = (),
        round_index: int = 0,
        k: Optional[int] = None,
        weights: "Dict[Modality, float] | None" = None,
        deadline_ms: Optional[float] = None,
    ) -> Answer:
        """Run one multi-hop agentic round (``POST /ask``).

        Delegates to the :class:`~repro.core.agentic.AgenticAnswerer`
        when ``config.agentic`` is on; otherwise falls straight through
        to :meth:`handle_query`, so an ``/ask`` against a non-agentic
        deployment answers bit-identically to ``/query``.
        """
        self._require_setup()
        if self.agentic is None:
            return self.handle_query(
                query,
                history=history,
                preferred_ids=preferred_ids,
                round_index=round_index,
                k=k,
                weights=weights,
                deadline_ms=deadline_ms,
            )
        return self.agentic.answer(
            self,
            query,
            history=history,
            preferred_ids=preferred_ids,
            round_index=round_index,
            k=k,
            weights=weights,
            deadline_ms=deadline_ms,
        )

    def retrieve_batch(
        self,
        queries: Sequence[RawQuery],
        k: Optional[int] = None,
        weights: "Dict[Modality, float] | None" = None,
    ):
        """Raw batched retrieval for a set of independent queries.

        The fast path behind server micro-batching: no dialogue state, no
        query rewriting, no answer generation — just the framework's
        batched search under one shared read-lock acquisition.  Element
        ``i`` of the returned list is bit-identical (ids and scores) to a
        serial ``retrieve`` of ``queries[i]``.

        Cache interaction: each query in the batch consults and populates
        the :class:`~repro.core.cache.QueryCache` exactly as the serial
        path would — same keys, same hit/miss accounting — so a query
        served serially and a query served inside a batch are fully
        interchangeable.  (An earlier revision bypassed the cache here,
        which left batch traffic re-searching queries the serial path had
        already answered and never warming the cache for later serial
        rounds.)
        """
        self._require_setup()
        if self.execution is None or self.kb is None:
            raise CoordinatorError("cannot retrieve in LLM-only mode")
        k = k if k is not None else self.config.result_count
        queries = list(queries)
        if not queries:
            return []
        # One batch-scope ledger collects what is amortised over the whole
        # batch (the router's scatter/merge); per-query profiles ride on
        # each response.
        batch_profile = (
            QueryCostProfile(
                framework=self.execution.framework.name,
                index=self.config.index,
                shards_total=getattr(self.execution.framework, "shards", 0),
                batch=len(queries),
            )
            if self.execution.cost_accounting
            else None
        )
        scope = (
            cost_context(batch_profile)
            if batch_profile is not None
            else nullcontext()
        )
        with self.rwlock.read(), Timer() as timer, self.tracer.trace(
            "query-batch", queries=len(queries), k=k
        ), scope:
            responses = self.execution.execute_batch(
                queries, k=k, budget=self.config.search_budget, weights=weights
            )
        if self.stats is not None:
            self.stats.observe_batch(
                [response.cost for response in responses],
                batch_profile,
                timer.elapsed * 1000.0,
            )
        self.metrics.inc("coordinator.queries", len(queries))
        self.metrics.observe(
            "coordinator.batch_query_ms", timer.elapsed * 1000.0
        )
        self.events.record(
            "coordinator", "execution", "query-batch",
            f"{len(queries)} queries, k={k}",
        )
        return responses

    def _record_flight(
        self,
        query: RawQuery,
        user_text: str,
        had_image: bool,
        history: Sequence[DialogueTurn],
        preferred_ids: Sequence[int],
        round_index: int,
        k: int,
        weights: "Dict[Modality, float] | None",
        exclude_ids: Sequence[int],
        where,
        answer: Answer,
    ) -> None:
        """Persist one finished round into the flight recorder."""
        assert self.recorder is not None
        request: Dict[str, object] = {
            "text": user_text,
            "k": k,
            "round_index": round_index,
            "preferred_ids": [int(i) for i in preferred_ids],
            "exclude_ids": [int(i) for i in exclude_ids],
            "history": [
                {"user": turn.user_text, "system": turn.system_text}
                for turn in history
            ],
            "metadata": dict(query.metadata),
        }
        if had_image:
            request["image"] = query.get(Modality.IMAGE)
        if weights is not None:
            request["weights"] = {
                (m.value if isinstance(m, Modality) else str(m)): float(w)
                for m, w in weights.items()
            }
        if where is not None:
            # Predicates are arbitrary callables; replay skips such entries.
            request["filtered"] = True
        last = self.tracer.last_trace
        self.recorder.record(
            request,
            result_ids=list(answer.ids),
            span_tree=last.to_dict() if last is not None else None,
            answer={
                "text": answer.text,
                "grounded": answer.grounded,
                "llm": answer.llm,
            },
        )

    def _run_query_round(
        self,
        query: RawQuery,
        user_text: str,
        had_image: bool,
        history: Sequence[DialogueTurn],
        preferred_ids: Sequence[int],
        round_index: int,
        k: int,
        weights: "Dict[Modality, float] | None",
        exclude_ids: Sequence[int],
        where,
        deadline: Optional[Deadline] = None,
    ) -> Answer:
        assert self.generation is not None
        degraded_reasons: List[str] = []
        if (
            self.config.query_rewriting
            and self.kb is not None
            and user_text
            and (history or preferred_ids)
        ):
            with trace_span("rewrite") as span:
                rewriter = QueryRewriter(self.kb.space)
                descriptions = []
                for object_id in preferred_ids:
                    obj = self.kb.get(object_id)
                    if obj.has(Modality.TEXT):
                        descriptions.append(str(obj.get(Modality.TEXT)))
                rewritten = rewriter.rewrite(
                    user_text,
                    history_texts=[turn.user_text for turn in history],
                    selected_descriptions=descriptions,
                )
                span.set(rewritten=rewritten != user_text)
            if rewritten != user_text:
                self.events.record(
                    "generation", "execution", "rewritten-query",
                    rewritten[:60],
                )
                query = query.with_content(Modality.TEXT, rewritten)

        if (
            self.resilience.enabled
            and self.representation is not None
            and self.kb is not None
        ):
            query, weights = self._drop_failing_modalities(
                query, weights, deadline, degraded_reasons
            )

        response = None
        plan = None
        if self.execution is not None and self.kb is not None and query is not None:
            filter_fn = None
            if where is not None:
                kb = self.kb
                filter_fn = lambda object_id: where(kb.get(object_id))  # noqa: E731
            budget = self.config.search_budget
            fanout = None
            if self.planner is not None:
                pressure = (
                    self.admission is not None and self.admission.under_pressure
                )
                with trace_span("plan") as span:
                    plan = self.planner.plan(deadline=deadline, pressure=pressure)
                    span.set(**plan.to_dict())
                budget = plan.budget
                fanout = plan.fanout
                if plan.degraded:
                    degraded_reasons.append(
                        f"plan degraded to budget {plan.budget} "
                        f"(deadline pressure)"
                    )
            self.status.start("query execution")
            self.events.record("coordinator", "execution", "query", f"k={k}")
            with Timer() as timer:
                if not self.resilience.enabled:
                    response = self.execution.execute(
                        query,
                        k=k,
                        budget=budget,
                        weights=weights,
                        exclude_ids=exclude_ids,
                        filter_fn=filter_fn,
                        fanout=fanout,
                    )
                else:
                    try:
                        response = self.resilience.call(
                            "index.search",
                            lambda: self.execution.execute(
                                query,
                                k=k,
                                budget=budget,
                                weights=weights,
                                exclude_ids=exclude_ids,
                                filter_fn=filter_fn,
                                fanout=fanout,
                            ),
                            deadline=deadline,
                        )
                    except MQAError as exc:
                        degraded_reasons.append(
                            f"retrieval unavailable ({type(exc).__name__})"
                        )
                        self.resilience.record_fallback("retrieval_unavailable")
                        self.status.fail(
                            "query execution", f"{type(exc).__name__}: {exc}"
                        )
                        self.events.record(
                            "execution", "generation", "search-failed",
                            f"{type(exc).__name__}: {exc}"[:80],
                        )
            if plan is not None and self.planner is not None:
                self.planner.observe(
                    plan, timer.elapsed * 1000.0, ok=response is not None
                )
            if response is not None:
                if response.degraded_reasons:
                    # Partial results from the shard router (lost shards)
                    # degrade the round rather than failing it.
                    degraded_reasons.extend(response.degraded_reasons)
                self.status.finish(
                    "query execution",
                    timer.elapsed,
                    results=str(len(response)),
                    framework=response.framework,
                    hops=str(response.stats.hops),
                )
                self.events.record(
                    "execution", "generation", "search-results",
                    f"{len(response)} items via {response.framework}",
                )

        self.status.start("answer generation")
        with Timer() as timer, trace_span("generation") as span:
            answer = self._generate_answer(
                user_text, response, history, preferred_ids, had_image,
                round_index, deadline, degraded_reasons,
            )
            span.set(llm=answer.llm or "none", grounded=answer.grounded)
        if response is not None and response.cost is not None:
            # The round's ledger: retrieval profile plus the generation
            # stage, carried on the Answer for the API/stats plane.
            response.cost.add_stage("generate", timer.elapsed * 1000.0)
            answer.cost = response.cost
        self.status.finish(
            "answer generation",
            timer.elapsed,
            llm=answer.llm or "none",
            grounded=str(answer.grounded),
        )
        self.events.record(
            "generation", "frontend", "answer", answer.text[:60]
        )
        if degraded_reasons:
            answer.degraded = True
            answer.degraded_reasons = degraded_reasons
        answer.plan = plan
        return answer

    # ------------------------------------------------------------------
    # graceful degradation (resilience mode only)
    # ------------------------------------------------------------------
    def _drop_failing_modalities(
        self,
        query: RawQuery,
        weights: "Dict[Modality, float] | None",
        deadline: Optional[Deadline],
        degraded_reasons: List[str],
    ) -> "Tuple[RawQuery | None, Dict[Modality, float] | None]":
        """Probe each query modality's encoder; drop the ones that fail.

        Encoders are pure functions of their content, so a successful
        probe guarantees the framework's own encode of the same content
        succeeds identically.  Returns the (possibly reduced) query — or
        None when no modality survives — plus weights renormalised over
        the surviving modalities.
        """
        assert self.representation is not None
        encoder_set = self.representation.encoder_set
        dropped: List[Modality] = []
        for modality in query.modalities:
            if modality not in encoder_set.modalities:
                continue
            encoder = encoder_set.encoder_for(modality)
            content = query.get(modality)
            try:
                self.resilience.call(
                    f"encoder.{modality.value}",
                    lambda enc=encoder, m=modality, c=content: enc.encode(m, c),
                    deadline=deadline,
                )
            except MQAError as exc:
                dropped.append(modality)
                degraded_reasons.append(
                    f"modality {modality.value} dropped ({type(exc).__name__})"
                )
                self.resilience.record_fallback("modality_dropped")
                self.events.record(
                    "representation", "execution", "modality-dropped",
                    f"{modality.value}: {type(exc).__name__}: {exc}"[:80],
                )
        if not dropped:
            return query, weights
        remaining = {
            modality: query.get(modality)
            for modality in query.modalities
            if modality not in dropped
        }
        if not remaining:
            degraded_reasons.append("retrieval skipped (no encodable modality)")
            self.resilience.record_fallback("retrieval_unavailable")
            return None, weights
        reduced = RawQuery(content=remaining, metadata=dict(query.metadata))
        return reduced, self._renormalised_weights(weights, dropped)

    def _renormalised_weights(
        self,
        weights: "Dict[Modality, float] | None",
        dropped: Sequence[Modality],
    ) -> "Dict[Modality, float] | None":
        """Redistribute the dropped modalities' weight over the survivors.

        The distance kernels expect a weight for *every* schema modality,
        so dropped modalities stay in the map pinned to 0.0 while the
        survivors are rescaled to sum to 1.  Frameworks without a
        per-query ``weights`` capability (joint embedding) fuse with
        their built-in weighting, so they get None.
        """
        if self.execution is None or "weights" not in self.execution.capabilities:
            return None
        if weights is not None:
            base = {Modality.parse(m): float(w) for m, w in weights.items()}
        elif self.representation is not None:
            base = dict(self.representation.weights)
        else:
            return None
        kept_total = sum(w for m, w in base.items() if m not in dropped)
        if kept_total <= 0:
            return None
        return {
            m: (0.0 if m in dropped else w / kept_total)
            for m, w in base.items()
        }

    def _generate_answer(
        self,
        user_text: str,
        response,
        history: Sequence[DialogueTurn],
        preferred_ids: Sequence[int],
        had_image: bool,
        round_index: int,
        deadline: Optional[Deadline],
        degraded_reasons: List[str],
    ) -> Answer:
        """Generation with LLM fallback: a failing or out-of-budget LLM
        degrades to the retrieval-only listing instead of failing the
        round."""
        assert self.generation is not None

        def generate(component: AnswerGeneration) -> Answer:
            return component.generate(
                user_text,
                response,
                self.kb,
                history=history,
                preferred_ids=preferred_ids,
                had_image=had_image,
                round_index=round_index,
            )

        guarded = self.resilience.enabled and self.generation.llm is not None
        if not guarded:
            return generate(self.generation)
        assert self._fallback_generation is not None
        if deadline is not None and deadline.expired:
            degraded_reasons.append("llm skipped (deadline exhausted)")
            self.resilience.record_fallback("llm_fallback")
            self.events.record(
                "generation", "frontend", "generation-fallback",
                "deadline exhausted before LLM call",
            )
            return generate(self._fallback_generation)
        try:
            return self.resilience.call(
                "llm.generate",
                lambda: generate(self.generation),
                deadline=deadline,
            )
        except MQAError as exc:
            degraded_reasons.append(f"llm fallback ({type(exc).__name__})")
            self.resilience.record_fallback("llm_fallback")
            self.events.record(
                "generation", "frontend", "generation-fallback",
                f"{type(exc).__name__}: {exc}"[:80],
            )
            return generate(self._fallback_generation)

    # ------------------------------------------------------------------
    # incremental ingestion
    # ------------------------------------------------------------------
    def ingest_object(
        self,
        concepts,
        intensities=None,
        metadata: "dict | None" = None,
    ) -> int:
        """Add one new object to the knowledge base *and* the live index.

        The object is rendered into every configured modality, encoded with
        the active encoder set, and inserted into the retrieval framework's
        index structures — no rebuild.  Returns the new object id.

        Exception safety: if the index insertion fails, the freshly
        created knowledge-base object is discarded and the query cache is
        invalidated before the error propagates, so no reader can ever
        observe an object that exists in the store but not in the index.
        Events are recorded while the write lock is still held, keeping
        the event log's ordering consistent with the mutation order.
        """
        self._require_setup()
        if self.kb is None or self.execution is None:
            raise CoordinatorError("cannot ingest in LLM-only mode")
        with self.rwlock.write():
            obj = self.kb.create_object(
                concepts, intensities=intensities, metadata=metadata
            )
            try:
                self.resilience.call(
                    "store.ingest",
                    lambda: self.execution.framework.add_object(obj),
                    retryable=False,
                )
            except BaseException as exc:
                self.kb.discard_object(obj.object_id)
                if self.execution.cache is not None:
                    self.execution.cache.invalidate()
                self.events.record(
                    "preprocessing", "coordinator", "ingest-failed",
                    f"object {obj.object_id} rolled back: "
                    f"{type(exc).__name__}: {exc}"[:80],
                )
                self.metrics.inc("coordinator.ingest_errors")
                raise
            if self.execution.cache is not None:
                self.execution.cache.invalidate()
            self.events.record(
                "frontend", "preprocessing", "ingest",
                f"object {obj.object_id}: {', '.join(obj.concepts)}",
            )
        return obj.object_id

    def remove_object(self, object_id: int) -> None:
        """Tombstone an object: it stays stored but never surfaces again.

        Exception safety: the tombstone, the ``deleted`` metadata flag,
        and the cache invalidation apply atomically under the write lock —
        a failed framework removal restores the tombstone set before the
        error propagates, so the store's metadata never disagrees with
        the index's view of which objects are live.
        """
        self._require_setup()
        if self.kb is None or self.execution is None:
            raise CoordinatorError("cannot remove objects in LLM-only mode")
        with self.rwlock.write():
            obj = self.kb.get(object_id)  # validates the id
            already_deleted = object_id in self.execution.framework.deleted_ids
            try:
                self.resilience.call(
                    "store.remove",
                    lambda: self.execution.framework.remove_object(object_id),
                    retryable=False,
                )
            except BaseException as exc:
                if not already_deleted:
                    self.execution.framework.restore_object(object_id)
                self.events.record(
                    "preprocessing", "coordinator", "remove-failed",
                    f"object {object_id} rolled back: "
                    f"{type(exc).__name__}: {exc}"[:80],
                )
                self.metrics.inc("coordinator.remove_errors")
                raise
            obj.metadata["deleted"] = True
            if self.execution.cache is not None:
                self.execution.cache.invalidate()
            self.events.record(
                "frontend", "preprocessing", "remove", f"object {object_id}"
            )

    # ------------------------------------------------------------------
    # introspection used by the panels
    # ------------------------------------------------------------------
    @property
    def weights(self) -> Dict[Modality, float]:
        """Modality weights in force (empty in LLM-only mode)."""
        if self.representation is None:
            return {}
        return dict(self.representation.weights)

    def get_object(self, object_id: int):
        """Fetch a knowledge-base object through the coordinator."""
        if self.kb is None:
            raise CoordinatorError("no knowledge base attached")
        return self.kb.get(object_id)
