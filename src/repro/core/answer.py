"""The answer object a query round produces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.index.base import SearchStats


@dataclass
class AnswerItem:
    """One result shown to the user.

    Attributes:
        object_id: Knowledge-base id.
        description: The object's text modality (caption under the image).
        score: Retrieval score; smaller is better.
        preferred: True when this item was selected in an earlier round.
    """

    object_id: int
    description: str
    score: float
    preferred: bool = False


@dataclass
class Answer:
    """A complete system response for one dialogue round.

    Attributes:
        text: The conversational reply (LLM summary, or a plain listing in
            no-LLM mode).
        items: Retrieved objects backing the reply, best first.
        grounded: True when the reply cites only retrieved objects.
        framework: Retrieval framework that produced the items.
        llm: Name of the generating model ("" in no-LLM mode).
        round_index: Zero-based dialogue round.
        search_stats: Work counters of the retrieval step.
        degraded: True when the resilience layer delivered this answer in
            a reduced form (LLM fallback, dropped modality, retrieval
            unavailable) instead of failing the round.
        degraded_reasons: Human-readable reason per degradation applied.
        cost: The round's
            :class:`~repro.observability.costs.QueryCostProfile` when
            cost accounting is enabled, else None (includes the
            ``generate`` stage on top of the retrieval profile).
        plan: The :class:`~repro.core.planning.QueryPlan` the planner
            chose for this round, else None when planning is off.
        claims: Per-concept :class:`~repro.core.agentic.Claim` list when
            the round ran the agentic multi-hop path, else None — absent
            from payloads whenever agentic mode is off.
        groundedness: Fraction of claims whose citations carry textual
            evidence (agentic rounds only), else None.
    """

    text: str
    items: List[AnswerItem] = field(default_factory=list)
    grounded: bool = True
    framework: str = ""
    llm: str = ""
    round_index: int = 0
    search_stats: SearchStats = field(default_factory=SearchStats)
    degraded: bool = False
    degraded_reasons: List[str] = field(default_factory=list)
    cost: "object | None" = None
    plan: "object | None" = None
    claims: "List[object] | None" = None
    groundedness: "float | None" = None

    @property
    def ids(self) -> List[int]:
        """Retrieved object ids, best first."""
        return [item.object_id for item in self.items]

    def item_by_rank(self, rank: int) -> AnswerItem:
        """The item at ``rank`` (0 = best)."""
        return self.items[rank]
