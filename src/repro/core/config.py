"""System configuration — the data model behind the configuration panel."""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

from repro.data.datasets import DOMAINS, DatasetSpec
from repro.data.modality import Modality
from repro.errors import ConfigurationError


class WeightMode(str, enum.Enum):
    """How modality weights are obtained."""

    EQUAL = "equal"
    LEARNED = "learned"
    FIXED = "fixed"

    @classmethod
    def parse(cls, value: "str | WeightMode") -> "WeightMode":
        """Coerce a string such as ``"learned"`` into a mode."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            valid = ", ".join(m.value for m in cls)
            raise ConfigurationError(
                f"unknown weight mode {value!r}; expected one of: {valid}"
            ) from None


@dataclass
class MQAConfig:
    """Every knob the configuration panel exposes.

    Attributes:
        dataset: Knowledge-base generation spec (ignored when a prebuilt
            knowledge base is supplied to the coordinator).
        external_knowledge: The paper's toggle — False runs LLM-only mode
            with no retrieval at all.
        encoder_set: Registered encoder-set name.
        encoder_seed: Seed for encoder projections.
        weight_mode: equal / learned / fixed.
        fixed_weights: Modality-name -> weight mapping (fixed mode only).
        weight_learning: Overrides for the contrastive learner
            (steps, batch_size, ...).
        index: Registered index-algorithm name.
        index_params: Parameters forwarded to the index factory.
        framework: Registered retrieval-framework name (mr / je / must).
        framework_params: Parameters forwarded to the framework factory.
        result_count: Default top-k shown per round.
        search_budget: Beam width for graph searches.
        llm: Registered LLM name, or None for the no-LLM mode.
        llm_params: Parameters forwarded to the LLM factory.
        temperature: LLM output variability.
        query_rewriting: Fold dialogue intent into vague follow-up queries
            before retrieval (the "retrieval guided by LLM" mechanism).
        cache_queries: Serve repeated queries from an LRU response cache
            (invalidated on ingestion).
        tracing: Capture a hierarchical span trace (encode /
            weight-inference / index-search / fusion / generation, with
            timings and search-work counters) for every query round.  Off
            by default: the no-op tracer adds no measurable overhead to
            the serving hot path.  Traces surface through ``GET /trace``,
            the status panel, and the CLI ``--trace`` flag.
        trace_capacity: How many finished query traces the tracer retains
            (oldest evicted first).  Only meaningful with ``tracing``.
        recorder_path: Flight-recorder JSONL file; None (the default)
            disables recording.  A non-None path implies tracing — the
            recorder persists span trees, so the coordinator activates a
            tracer even when ``tracing`` is False.
        recorder_max_bytes: Rotation threshold for the active recorder
            file.
        recorder_max_files: Rotated recorder generations kept on disk.
        monitoring: Master switch for online quality + SLO monitoring
            (``GET /health``).  Off by default: the serving hot path then
            pays nothing.
        monitor_sample_rate: Score every Nth query against the
            latent-concept ground truth (1 = every query).
        slo_latency_ms: Rolling-window p95 latency target.
        slo_error_rate: Rolling-window error-fraction target.
        slo_window: Requests per SLO rolling window.
        event_capacity: Ring-buffer size of the coordinator's event log
            (oldest events evicted first so long dialogue sessions cannot
            grow memory without bound).
        workers: Query-engine worker count.  ``1`` (the default) executes
            requests inline on the calling thread — the historical serial
            behaviour; ``N > 1`` serves up to N requests concurrently
            under the read/write lock.
        engine_queue: Requests allowed to wait beyond the running ones
            before the engine sheds load with an engine-saturated error.
        max_batch: Upper bound on how many concurrent ``/search`` requests
            the server micro-batches into one batched retrieval.  ``1``
            (the default) disables coalescing entirely — every request runs
            alone, exactly the pre-batching behaviour.
        batch_window_ms: How long the micro-batch collector waits for
            additional requests before flushing a partial batch.  Only
            meaningful with ``max_batch > 1``.
        shards: Partition the knowledge base across this many shards
            behind a scatter-gather router.  ``None`` (the default) keeps
            the historical unsharded engine — no router exists at all;
            ``1`` routes through a single shard (a pure pass-through,
            bit-identical to unsharded); ``N > 1`` hash-partitions the
            corpus and merges per-shard top-k exactly.
        replicas: Identical replicas per shard for read scaling
            (round-robin, health-aware selection).  ``replicas > 1`` with
            ``shards=None`` serves one shard from several replicas.
        partitioner: Shard-assignment policy: ``"hash"`` (stable id hash)
            or ``"concept"`` (objects sharing a leading concept co-locate).
        rebalance_threshold: Live-object spread between the largest and
            smallest shard that triggers an ingest-time rebalance; ``0``
            disables online rebalancing.
        shard_latency_ms: Simulated fixed per-shard-call service time in
            milliseconds (models remote shard RPC; 0 disables).
        shard_latency_ms_per_1k: Simulated service time per 1000 live
            objects on the called shard (models a remote shard scanning
            its partition; 0 disables).  When either knob is on, the
            router scatters on a thread pool so shard service times
            overlap.
        resilience: Master switch for the fault-tolerance layer (retries,
            deadlines, circuit breakers, graceful degradation).  Off by
            default: every guarded boundary then takes the exact
            pre-resilience code path.
        retry_attempts: Total tries per guarded call (1 = no retries).
        retry_backoff_ms: Backoff before the first retry.
        retry_multiplier: Exponential backoff growth factor.
        retry_max_backoff_ms: Backoff ceiling.
        deadline_ms: Default per-request latency budget; None disables
            deadlines (requests may override per call).
        breaker_threshold: Consecutive failures that open a site's
            circuit breaker.
        breaker_reset_ms: How long an open breaker waits before letting
            half-open probe calls through.
        breaker_half_open_probes: Probe calls allowed in half-open; all
            succeeding closes the breaker again.
        fault_seed: Master seed for the deterministic fault injector.
        faults: Fault-injection specs keyed by call site (or site prefix,
            e.g. ``"encoder"`` covers ``encoder.text``); each value maps
            to :class:`~repro.core.resilience.FaultSpec` kwargs.  Inert
            unless ``resilience`` is on.
        cost_accounting: Attach a per-query
            :class:`~repro.observability.costs.QueryCostProfile` (kernel
            counters + per-stage wall time) to every response and
            aggregate them in the :class:`~repro.observability.stats.StatsPlane`
            behind ``GET /stats`` and ``python -m repro stats``.  Off by
            default: the disabled path costs one context-variable read
            per instrumented site and results are bit-identical either
            way.
        stats_exemplars: How many of the slowest queries the stats plane
            retains with full cost profiles (tail-latency exemplars);
            ``0`` keeps distributions only.
        tiered: Beyond-RAM serving for the Starling index: SQ-quantized
            codes stay resident for graph traversal while full-precision
            vectors spill to a memory-mapped file touched only by the
            exact rerank pass.  Off by default — results are then
            bit-identical to the classic all-in-RAM path.  Requires
            ``index="starling"``.
        quantize_bits: Resident-tier code width (8 or 4); only meaningful
            with ``tiered``.
        rerank_factor: Rerank over-fetch — traversal returns
            ``rerank_factor * k`` candidates for full-precision
            re-scoring; only meaningful with ``tiered``.
        mmap_cache_blocks: Buffer-pool blocks in front of the mmap tier
            (0 disables caching); only meaningful with ``tiered``.
        planner: Self-tuning query planner: pick the per-query search
            budget (and shard fan-out under deadline pressure) from the
            live latency/recall distributions so the cheapest plan whose
            predicted p95 fits the remaining deadline — and whose
            observed recall stays at or above ``recall_floor`` — runs.
            Off by default: queries then use ``search_budget`` verbatim
            and results are bit-identical to the unplanned path.
        recall_floor: Minimum acceptable recall@k for planner decisions
            and semantic-cache serving; plans predicted to land below
            the floor are never chosen voluntarily.
        semantic_cache: Replace the exact-match query cache with the
            near-duplicate :class:`~repro.core.cache.SemanticQueryCache`
            (cosine matching over per-modality query embeddings, same
            generation-counter invalidation on ingest).  Off by default.
        semantic_threshold: Cosine similarity at or above which a cached
            near-duplicate may be served; ``0`` degenerates to
            exact-match behaviour bit-identically.
        admission: Admission control at the query-engine boundary: a
            predicted-cost token bucket plus a queue-delay EWMA shed or
            degrade requests *before* the engine saturates, instead of
            failing at the ``EngineSaturatedError`` cliff.  Off by
            default.
        agentic: Agentic multi-hop answering: decompose the question into
            per-concept sub-queries, retrieve them as one batch, fuse the
            hops, synthesize per-claim citations, and re-retrieve for
            unsupported claims (``POST /ask`` and the ``--agentic`` CLI
            flag).  Off by default: the single-hop query path and its
            payloads are then bit-identical to the pre-agentic behaviour.
        agentic_max_hops: Upper bound on decomposed sub-queries per
            question (the original query always runs as hop 0 on top);
            only meaningful with ``agentic``.
        agentic_refine_rounds: Re-retrieval rounds allowed for claims
            whose citations carry no textual evidence; ``0`` disables the
            refinement pass.  Only meaningful with ``agentic``.
    """

    dataset: DatasetSpec = field(default_factory=DatasetSpec)
    external_knowledge: bool = True
    encoder_set: str = "clip-joint"
    encoder_seed: int = 0
    weight_mode: WeightMode = WeightMode.LEARNED
    fixed_weights: Optional[Dict[str, float]] = None
    weight_learning: Dict[str, Any] = field(default_factory=dict)
    index: str = "hnsw"
    index_params: Dict[str, Any] = field(default_factory=dict)
    framework: str = "must"
    framework_params: Dict[str, Any] = field(default_factory=dict)
    result_count: int = 5
    search_budget: int = 64
    llm: Optional[str] = "template"
    llm_params: Dict[str, Any] = field(default_factory=dict)
    temperature: float = 0.0
    query_rewriting: bool = False
    cache_queries: bool = True
    tracing: bool = False
    trace_capacity: int = 64
    recorder_path: Optional[str] = None
    recorder_max_bytes: int = 4_000_000
    recorder_max_files: int = 3
    monitoring: bool = False
    monitor_sample_rate: int = 8
    slo_latency_ms: float = 250.0
    slo_error_rate: float = 0.05
    slo_window: int = 64
    event_capacity: int = 2048
    workers: int = 1
    engine_queue: int = 64
    max_batch: int = 1
    batch_window_ms: float = 2.0
    shards: Optional[int] = None
    replicas: int = 1
    partitioner: str = "hash"
    rebalance_threshold: int = 8
    shard_latency_ms: float = 0.0
    shard_latency_ms_per_1k: float = 0.0
    resilience: bool = False
    retry_attempts: int = 1
    retry_backoff_ms: float = 10.0
    retry_multiplier: float = 2.0
    retry_max_backoff_ms: float = 1000.0
    deadline_ms: Optional[float] = None
    breaker_threshold: int = 5
    breaker_reset_ms: float = 1000.0
    breaker_half_open_probes: int = 1
    fault_seed: int = 0
    faults: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    cost_accounting: bool = False
    stats_exemplars: int = 8
    tiered: bool = False
    quantize_bits: int = 8
    rerank_factor: int = 4
    mmap_cache_blocks: int = 32
    planner: bool = False
    recall_floor: float = 0.8
    semantic_cache: bool = False
    semantic_threshold: float = 0.9
    admission: bool = False
    agentic: bool = False
    agentic_max_hops: int = 4
    agentic_refine_rounds: int = 1

    def __post_init__(self) -> None:
        self.weight_mode = WeightMode.parse(self.weight_mode)
        self.validate()

    @property
    def sharding_enabled(self) -> bool:
        """True when indexing should build the shard router instead of a
        bare framework (any explicit ``shards`` value, or extra replicas)."""
        return self.shards is not None or self.replicas > 1

    def validate(self) -> None:
        """Check cross-field consistency; raises ConfigurationError."""
        from repro.encoders import available_encoder_sets
        from repro.index import available_indexes
        from repro.llm import available_llms
        from repro.retrieval import available_frameworks

        if self.dataset.domain not in DOMAINS:
            valid = ", ".join(sorted(DOMAINS))
            raise ConfigurationError(
                f"unknown knowledge-base domain {self.dataset.domain!r}; "
                f"expected one of: {valid}"
            )
        if self.encoder_set not in available_encoder_sets():
            raise ConfigurationError(
                f"unknown encoder set {self.encoder_set!r}; "
                f"available: {', '.join(available_encoder_sets())}"
            )
        if self.index not in available_indexes():
            raise ConfigurationError(
                f"unknown index {self.index!r}; "
                f"available: {', '.join(available_indexes())}"
            )
        if self.framework not in available_frameworks():
            raise ConfigurationError(
                f"unknown framework {self.framework!r}; "
                f"available: {', '.join(available_frameworks())}"
            )
        if self.llm is not None and self.llm not in available_llms():
            raise ConfigurationError(
                f"unknown llm {self.llm!r}; available: {', '.join(available_llms())}"
            )
        if self.weight_mode is WeightMode.FIXED and not self.fixed_weights:
            raise ConfigurationError("weight_mode 'fixed' requires fixed_weights")
        if self.result_count < 1:
            raise ConfigurationError(
                f"result_count must be >= 1, got {self.result_count}"
            )
        if self.search_budget < 1:
            raise ConfigurationError(
                f"search_budget must be >= 1, got {self.search_budget}"
            )
        if not 0.0 <= self.temperature <= 2.0:
            raise ConfigurationError(
                f"temperature must be in [0, 2], got {self.temperature}"
            )
        if self.trace_capacity < 1:
            raise ConfigurationError(
                f"trace_capacity must be >= 1, got {self.trace_capacity}"
            )
        if self.recorder_max_bytes < 1024:
            raise ConfigurationError(
                f"recorder_max_bytes must be >= 1024, got {self.recorder_max_bytes}"
            )
        if self.recorder_max_files < 1:
            raise ConfigurationError(
                f"recorder_max_files must be >= 1, got {self.recorder_max_files}"
            )
        if self.monitor_sample_rate < 1:
            raise ConfigurationError(
                f"monitor_sample_rate must be >= 1, got {self.monitor_sample_rate}"
            )
        if self.slo_latency_ms <= 0:
            raise ConfigurationError(
                f"slo_latency_ms must be positive, got {self.slo_latency_ms}"
            )
        if not 0.0 <= self.slo_error_rate <= 1.0:
            raise ConfigurationError(
                f"slo_error_rate must be in [0, 1], got {self.slo_error_rate}"
            )
        if self.slo_window < 1:
            raise ConfigurationError(
                f"slo_window must be >= 1, got {self.slo_window}"
            )
        if self.event_capacity < 1:
            raise ConfigurationError(
                f"event_capacity must be >= 1, got {self.event_capacity}"
            )
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.engine_queue < 0:
            raise ConfigurationError(
                f"engine_queue must be >= 0, got {self.engine_queue}"
            )
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.batch_window_ms < 0:
            raise ConfigurationError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )
        if self.shards is not None and self.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1 or None, got {self.shards}"
            )
        if self.replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {self.replicas}"
            )
        from repro.core.sharding import available_partitioners

        if self.partitioner not in available_partitioners():
            raise ConfigurationError(
                f"unknown partitioner {self.partitioner!r}; "
                f"available: {', '.join(available_partitioners())}"
            )
        if self.rebalance_threshold < 0:
            raise ConfigurationError(
                "rebalance_threshold must be >= 0, got "
                f"{self.rebalance_threshold}"
            )
        if self.shard_latency_ms < 0:
            raise ConfigurationError(
                f"shard_latency_ms must be >= 0, got {self.shard_latency_ms}"
            )
        if self.shard_latency_ms_per_1k < 0:
            raise ConfigurationError(
                "shard_latency_ms_per_1k must be >= 0, got "
                f"{self.shard_latency_ms_per_1k}"
            )
        if self.retry_attempts < 1:
            raise ConfigurationError(
                f"retry_attempts must be >= 1, got {self.retry_attempts}"
            )
        if self.retry_backoff_ms < 0:
            raise ConfigurationError(
                f"retry_backoff_ms must be >= 0, got {self.retry_backoff_ms}"
            )
        if self.retry_multiplier < 1.0:
            raise ConfigurationError(
                f"retry_multiplier must be >= 1, got {self.retry_multiplier}"
            )
        if self.retry_max_backoff_ms < self.retry_backoff_ms:
            raise ConfigurationError(
                "retry_max_backoff_ms must be >= retry_backoff_ms, got "
                f"{self.retry_max_backoff_ms} < {self.retry_backoff_ms}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ConfigurationError(
                f"deadline_ms must be positive or None, got {self.deadline_ms}"
            )
        if self.breaker_threshold < 1:
            raise ConfigurationError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_reset_ms <= 0:
            raise ConfigurationError(
                f"breaker_reset_ms must be positive, got {self.breaker_reset_ms}"
            )
        if self.breaker_half_open_probes < 1:
            raise ConfigurationError(
                "breaker_half_open_probes must be >= 1, got "
                f"{self.breaker_half_open_probes}"
            )
        if self.faults:
            # Reuse the injector's own validation so the config panel and
            # CLI reject bad specs at configuration time, not mid-query.
            from repro.core.resilience import FaultInjector

            FaultInjector(seed=self.fault_seed, specs=self.faults)
        if self.stats_exemplars < 0:
            raise ConfigurationError(
                f"stats_exemplars must be >= 0, got {self.stats_exemplars}"
            )
        if self.tiered and self.index != "starling":
            raise ConfigurationError(
                "tiered serving requires index 'starling', got "
                f"{self.index!r}"
            )
        if self.quantize_bits not in (4, 8):
            raise ConfigurationError(
                f"quantize_bits must be 4 or 8, got {self.quantize_bits}"
            )
        if self.rerank_factor < 1:
            raise ConfigurationError(
                f"rerank_factor must be >= 1, got {self.rerank_factor}"
            )
        if self.mmap_cache_blocks < 0:
            raise ConfigurationError(
                f"mmap_cache_blocks must be >= 0, got {self.mmap_cache_blocks}"
            )
        if not 0.0 <= self.recall_floor <= 1.0:
            raise ConfigurationError(
                f"recall_floor must be in [0, 1], got {self.recall_floor}"
            )
        if not 0.0 <= self.semantic_threshold <= 1.0:
            raise ConfigurationError(
                "semantic_threshold must be in [0, 1], got "
                f"{self.semantic_threshold}"
            )
        if self.agentic_max_hops < 1:
            raise ConfigurationError(
                f"agentic_max_hops must be >= 1, got {self.agentic_max_hops}"
            )
        if self.agentic_refine_rounds < 0:
            raise ConfigurationError(
                "agentic_refine_rounds must be >= 0, got "
                f"{self.agentic_refine_rounds}"
            )

    # ------------------------------------------------------------------
    # serialisation (the flight recorder embeds the config so a replay
    # can rebuild the exact system)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready view of every field (enums become their values)."""
        data = asdict(self)
        data["weight_mode"] = self.weight_mode.value
        data["dataset"]["modalities"] = [
            m.value for m in self.dataset.modalities
        ]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MQAConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are rejected (a recording from a future version
        should fail loudly, not half-apply).
        """
        payload = dict(data)
        dataset_data = dict(payload.pop("dataset", None) or {})
        if "modalities" in dataset_data:
            dataset_data["modalities"] = tuple(
                Modality.parse(m) for m in dataset_data["modalities"]
            )
        known = {f.name for f in cls.__dataclass_fields__.values()}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown configuration keys: {', '.join(sorted(unknown))}"
            )
        return cls(dataset=DatasetSpec(**dataset_data), **payload)

    def summary(self) -> Dict[str, str]:
        """Flat key -> value view for the status panel."""
        index = self.index
        if self.tiered:
            index += (
                f" (tiered sq{self.quantize_bits}, rerank x{self.rerank_factor})"
            )
        body = {
            "knowledge base": f"{self.dataset.domain} ({self.dataset.size} objects)"
            if self.external_knowledge
            else "disabled (LLM-only mode)",
            "encoder set": self.encoder_set,
            "weight mode": self.weight_mode.value,
            "index": index,
            "framework": self.framework,
            "result count": str(self.result_count),
            "search budget": str(self.search_budget),
            "llm": self.llm or "none",
            "temperature": f"{self.temperature:.2f}",
        }
        adaptive = []
        if self.planner:
            adaptive.append(f"planner (floor {self.recall_floor:.2f})")
        if self.semantic_cache:
            adaptive.append(f"semantic cache @ {self.semantic_threshold:.2f}")
        if self.admission:
            adaptive.append("admission control")
        if adaptive:
            body["planning"] = ", ".join(adaptive)
        if self.agentic:
            body["agentic"] = (
                f"multi-hop (max {self.agentic_max_hops} hops, "
                f"{self.agentic_refine_rounds} refine rounds)"
            )
        return body
