"""Exception hierarchy for the MQA reproduction.

Every error raised by this library derives from :class:`MQAError`, so callers
can catch one base class at the system boundary.  Subclasses are grouped by
the component that raises them (mirroring the five backend components of the
paper's Figure 2 plus the coordinator).
"""

from __future__ import annotations


class MQAError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(MQAError):
    """An invalid or inconsistent system configuration was supplied."""


class DataError(MQAError):
    """Raised by the data-preprocessing substrate (ingestion, storage)."""


class UnknownObjectError(DataError):
    """An object id was requested that is not present in the store."""

    def __init__(self, object_id: int) -> None:
        super().__init__(f"unknown object id: {object_id!r}")
        self.object_id = object_id


class ModalityError(DataError):
    """An object or query referenced a modality it does not carry."""


class EncodingError(MQAError):
    """Raised by the vector-representation component (encoders)."""


class DimensionMismatchError(EncodingError):
    """Vectors of incompatible dimensionality were combined."""


class IndexError_(MQAError):
    """Raised by the index-construction component.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`, which has unrelated semantics.
    """


class IndexNotBuiltError(IndexError_):
    """A search was issued against an index that has not been built."""


class GraphConstructionError(IndexError_):
    """A navigation-graph construction pipeline stage failed."""


class SearchError(MQAError):
    """Raised by the query-execution component."""


class RetrievalError(SearchError):
    """A retrieval framework could not execute the query."""


class GenerationError(MQAError):
    """Raised by the answer-generation component (LLM layer)."""


class GroundingError(GenerationError):
    """A generated answer referenced content outside the retrieved context."""


class PipelineError(MQAError):
    """Raised by the DAG execution engine (the CGraph stand-in)."""


class CycleError(PipelineError):
    """The DAG pipeline definition contains a dependency cycle."""


class SessionError(MQAError):
    """Raised by the interactive dialogue session layer."""


class CoordinatorError(MQAError):
    """Raised by the coordinator when component orchestration fails."""


class ResilienceError(MQAError):
    """Base class for the fault-injection / graceful-degradation layer."""


class InjectedFaultError(ResilienceError):
    """A fault deliberately raised by the seeded fault injector.

    Carries the call site so chaos tests can assert which boundary failed.
    """

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at {site!r}")
        self.site = site


class DeadlineExceededError(ResilienceError):
    """A per-request deadline budget ran out before the work completed."""


class CircuitOpenError(ResilienceError):
    """A circuit breaker is open: the component is failing repeatedly and
    calls are being short-circuited instead of hammering it."""

    def __init__(self, site: str) -> None:
        super().__init__(
            f"circuit breaker for {site!r} is open; call short-circuited"
        )
        self.site = site
