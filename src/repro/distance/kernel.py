"""The distance-kernel interface consumed by every vector index.

Indexes never touch raw vectors directly; they ask a kernel for distances.
That indirection is what lets the same graph code serve single-vector
searches (MR, JE) and MUST's weighted multi-vector searches with pruning.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


@dataclass
class DistanceStats:
    """Counters for the computational-pruning ablation (experiment E5).

    Attributes:
        calls: Number of single-pair distance evaluations requested.
        pruned: How many of those terminated early via the bound.
        segments_evaluated: Vector segments actually computed.
        segments_total: Segments that a full evaluation would have computed.
    """

    calls: int = 0
    pruned: int = 0
    segments_evaluated: int = 0
    segments_total: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.calls = 0
        self.pruned = 0
        self.segments_evaluated = 0
        self.segments_total = 0

    @property
    def pruning_rate(self) -> float:
        """Fraction of calls that terminated early (0.0 when unused)."""
        return self.pruned / self.calls if self.calls else 0.0

    @property
    def work_saved(self) -> float:
        """Fraction of segment evaluations avoided (0.0 when unused)."""
        if not self.segments_total:
            return 0.0
        return 1.0 - self.segments_evaluated / self.segments_total


class DistanceKernel(abc.ABC):
    """Computes distances between a query and stored vectors.

    Smaller is always more similar.  ``single`` accepts an optional upper
    ``bound``: implementations may stop early once the partial distance
    provably exceeds it, returning any value greater than ``bound`` —
    exact pruning, never an approximation.
    """

    def __init__(self) -> None:
        self.stats = DistanceStats()

    @property
    @abc.abstractmethod
    def dim(self) -> int:
        """Dimensionality of the vectors this kernel compares."""

    @abc.abstractmethod
    def batch(self, query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        """Distances from ``query`` to every row of ``matrix``."""

    @abc.abstractmethod
    def single(self, query: np.ndarray, vector: np.ndarray, bound: float = np.inf) -> float:
        """Distance from ``query`` to ``vector``, with optional early exit."""

    def matrix(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """All-pairs distances between ``rows`` and ``cols`` matrices.

        The default delegates to :meth:`batch` per row; kernels override it
        with a fully vectorised form (construction-time hot path).
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        return np.stack([self.batch(row, cols) for row in rows])

    def batch_many(self, queries: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        """Distances from every query row to every ``matrix`` row.

        The batched search path's entry point.  Contract: row ``i`` of the
        result is *bit-identical* to ``batch(queries[i], matrix)`` — not
        merely close — so batched searches return exactly the serial ids
        and distances.  Concrete kernels override this with a vectorised
        form that preserves that guarantee; the default simply loops.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        return np.stack([self.batch(query, matrix) for query in queries])

    def batch_paired(
        self, queries: np.ndarray, matrix: np.ndarray, owners: np.ndarray
    ) -> np.ndarray:
        """Distances for the pairs ``(queries[owners[i]], matrix[i])``.

        The ragged companion to :meth:`batch_many`: where ``batch_many``
        scores every query against every row, this scores each row against
        exactly one owning query — which is what a lockstep beam search
        needs, since each beam only cares about its *own* frontier.  Same
        contract: entry ``i`` is bit-identical to
        ``batch(queries[owners[i]], matrix[i:i+1])[0]``.  The default
        loops per owner run; concrete kernels override with one vectorised
        gather + rowwise evaluation.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        owners = np.asarray(owners, dtype=np.intp)
        out = np.empty(matrix.shape[0], dtype=np.float64)
        for i in range(matrix.shape[0]):
            out[i] = self.batch(queries[owners[i]], matrix[i : i + 1])[0]
        return out
