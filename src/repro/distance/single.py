"""Single-vector distance kernel with optional chunked incremental scanning."""

from __future__ import annotations

import numpy as np

from repro.distance.kernel import DistanceKernel
from repro.distance.metrics import (
    Metric,
    paired_inner_product_distance,
    paired_squared_l2,
    pairwise_squared_l2,
    rowwise_inner_product_distance,
    rowwise_squared_l2,
)
from repro.errors import DimensionMismatchError
from repro.utils import l2_normalize


class SingleVectorKernel(DistanceKernel):
    """Distances over plain vectors (used by the MR and JE frameworks).

    Args:
        dim: Expected vector dimensionality.
        metric: Distance metric.  Cosine inputs are normalised up front so
            searches reduce to squared L2 (monotonically equivalent).
        chunk_size: When positive, ``single`` accumulates squared L2 in
            chunks of this many dimensions and stops once the partial sum
            exceeds the bound — the single-vector form of incremental
            scanning.  Zero disables chunking.
    """

    def __init__(self, dim: int, metric: Metric = Metric.SQUARED_L2, chunk_size: int = 0) -> None:
        super().__init__()
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if chunk_size < 0:
            raise ValueError(f"chunk_size must be >= 0, got {chunk_size}")
        self._dim = dim
        self.metric = Metric.parse(metric)
        self.chunk_size = chunk_size

    @property
    def dim(self) -> int:
        return self._dim

    def prepare(self, vectors: np.ndarray) -> np.ndarray:
        """Normalise stored/query vectors as the metric requires."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.shape[-1] != self._dim:
            raise DimensionMismatchError(
                f"expected dim {self._dim}, got {vectors.shape[-1]}"
            )
        if self.metric is Metric.COSINE:
            return l2_normalize(vectors)
        return vectors

    def batch(self, query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        # The rowwise forms (not the gemm expansion) keep batch() and
        # batch_many() bitwise interchangeable — see rowwise_squared_l2.
        query = np.asarray(query, dtype=np.float64)
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        if self.metric is Metric.INNER_PRODUCT:
            distances = rowwise_inner_product_distance(query[None, :], matrix)[0]
        else:
            distances = rowwise_squared_l2(query[None, :], matrix)[0]
        self.stats.calls += matrix.shape[0]
        self.stats.segments_evaluated += matrix.shape[0]
        self.stats.segments_total += matrix.shape[0]
        return distances

    def batch_many(self, queries: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        if self.metric is Metric.INNER_PRODUCT:
            distances = rowwise_inner_product_distance(queries, matrix)
        else:
            distances = rowwise_squared_l2(queries, matrix)
        count = queries.shape[0] * matrix.shape[0]
        self.stats.calls += count
        self.stats.segments_evaluated += count
        self.stats.segments_total += count
        return distances

    def batch_paired(
        self, queries: np.ndarray, matrix: np.ndarray, owners: np.ndarray
    ) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        gathered = queries[np.asarray(owners, dtype=np.intp)]
        if self.metric is Metric.INNER_PRODUCT:
            distances = paired_inner_product_distance(gathered, matrix)
        else:
            distances = paired_squared_l2(gathered, matrix)
        count = matrix.shape[0]
        self.stats.calls += count
        self.stats.segments_evaluated += count
        self.stats.segments_total += count
        return distances

    def matrix(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        cols = np.atleast_2d(np.asarray(cols, dtype=np.float64))
        if self.metric is Metric.INNER_PRODUCT:
            distances = -(rows @ cols.T)
        else:
            distances = pairwise_squared_l2(rows, cols)
        count = rows.shape[0] * cols.shape[0]
        self.stats.calls += count
        self.stats.segments_evaluated += count
        self.stats.segments_total += count
        return distances

    def single(self, query: np.ndarray, vector: np.ndarray, bound: float = np.inf) -> float:
        query = np.asarray(query, dtype=np.float64)
        vector = np.asarray(vector, dtype=np.float64)
        self.stats.calls += 1
        if self.metric is Metric.INNER_PRODUCT or not self.chunk_size:
            self.stats.segments_evaluated += 1
            self.stats.segments_total += 1
            if self.metric is Metric.INNER_PRODUCT:
                return float(-(query @ vector))
            diff = query - vector
            return float(diff @ diff)

        # Chunked incremental scan: squared L2 partial sums never decrease,
        # so exceeding the bound part-way proves the full distance does too.
        n_chunks = (self._dim + self.chunk_size - 1) // self.chunk_size
        self.stats.segments_total += n_chunks
        total = 0.0
        for start in range(0, self._dim, self.chunk_size):
            stop = min(start + self.chunk_size, self._dim)
            diff = query[start:stop] - vector[start:stop]
            total += float(diff @ diff)
            self.stats.segments_evaluated += 1
            if total > bound:
                self.stats.pruned += 1
                return total
        return total
