"""Distance kernels, including the weighted multi-vector distance with
incremental scanning that powers MUST's "computational pruning"."""

from repro.distance.kernel import DistanceKernel, DistanceStats
from repro.distance.metrics import (
    Metric,
    cosine_distance,
    inner_product_distance,
    pairwise_squared_l2,
    squared_l2,
)
from repro.distance.multivector import MultiVectorSchema, WeightedMultiVectorKernel
from repro.distance.single import SingleVectorKernel

__all__ = [
    "DistanceKernel",
    "DistanceStats",
    "Metric",
    "MultiVectorSchema",
    "SingleVectorKernel",
    "WeightedMultiVectorKernel",
    "cosine_distance",
    "inner_product_distance",
    "pairwise_squared_l2",
    "squared_l2",
]
