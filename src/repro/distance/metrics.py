"""Scalar and batch distance functions."""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import DimensionMismatchError


class Metric(str, enum.Enum):
    """Distance metric identifiers accepted by index configurations."""

    SQUARED_L2 = "squared_l2"
    COSINE = "cosine"
    INNER_PRODUCT = "inner_product"

    @classmethod
    def parse(cls, value: "str | Metric") -> "Metric":
        """Coerce a string such as ``"cosine"`` into a :class:`Metric`."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            valid = ", ".join(m.value for m in cls)
            raise ValueError(f"unknown metric {value!r}; expected one of: {valid}") from None


def _check_dims(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape[-1] != b.shape[-1]:
        raise DimensionMismatchError(
            f"vectors have incompatible dims {a.shape[-1]} and {b.shape[-1]}"
        )


def squared_l2(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance between two vectors."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    _check_dims(a, b)
    diff = a - b
    return float(diff @ diff)


def cosine_distance(a: np.ndarray, b: np.ndarray) -> float:
    """``1 - cos(a, b)``; 1.0 for orthogonal, 0.0 for parallel vectors."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    _check_dims(a, b)
    denom = max(np.linalg.norm(a) * np.linalg.norm(b), 1e-12)
    return float(1.0 - (a @ b) / denom)


def inner_product_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Negated inner product, so that smaller still means more similar."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    _check_dims(a, b)
    return float(-(a @ b))


def pairwise_squared_l2(queries: np.ndarray, corpus: np.ndarray) -> np.ndarray:
    """Squared L2 between every query row and every corpus row.

    Uses the expansion ``|q - x|^2 = |q|^2 - 2 q.x + |x|^2`` so the whole
    computation is three BLAS calls; negatives from floating-point
    cancellation are clamped to zero.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    corpus = np.atleast_2d(np.asarray(corpus, dtype=np.float64))
    _check_dims(queries, corpus)
    q_norms = (queries * queries).sum(axis=1)[:, None]
    c_norms = (corpus * corpus).sum(axis=1)[None, :]
    distances = q_norms - 2.0 * queries @ corpus.T + c_norms
    return np.maximum(distances, 0.0)
