"""Scalar and batch distance functions."""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import DimensionMismatchError


class Metric(str, enum.Enum):
    """Distance metric identifiers accepted by index configurations."""

    SQUARED_L2 = "squared_l2"
    COSINE = "cosine"
    INNER_PRODUCT = "inner_product"

    @classmethod
    def parse(cls, value: "str | Metric") -> "Metric":
        """Coerce a string such as ``"cosine"`` into a :class:`Metric`."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            valid = ", ".join(m.value for m in cls)
            raise ValueError(f"unknown metric {value!r}; expected one of: {valid}") from None


def _check_dims(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape[-1] != b.shape[-1]:
        raise DimensionMismatchError(
            f"vectors have incompatible dims {a.shape[-1]} and {b.shape[-1]}"
        )


def squared_l2(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance between two vectors."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    _check_dims(a, b)
    diff = a - b
    return float(diff @ diff)


def cosine_distance(a: np.ndarray, b: np.ndarray) -> float:
    """``1 - cos(a, b)``; 1.0 for orthogonal, 0.0 for parallel vectors."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    _check_dims(a, b)
    denom = max(np.linalg.norm(a) * np.linalg.norm(b), 1e-12)
    return float(1.0 - (a @ b) / denom)


def inner_product_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Negated inner product, so that smaller still means more similar."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    _check_dims(a, b)
    return float(-(a @ b))


def _corpus_chunk_rows(n_queries: int, dim: int) -> int:
    """Corpus rows per scratch block, capping the scratch tensor ~0.5 MB.

    The block must stay cache-resident: the diff scratch is read and
    written once per arithmetic pass, so a block larger than L2 turns the
    kernel memory-bound and *slower* than the serial per-query scan.
    """
    budget = 65_536  # float64 elements (~0.5 MB scratch)
    return max(1, budget // max(1, n_queries * dim))


def rowwise_squared_l2(queries: np.ndarray, corpus: np.ndarray) -> np.ndarray:
    """Squared L2 between every query row and every corpus row, bit-stable.

    Unlike :func:`pairwise_squared_l2`'s gemm expansion — whose blocked
    accumulation order depends on the *shape* of the inputs, so the same
    (query, row) pair can land on different floats at different batch
    sizes — this computes each pair as an independent
    ``((row - query) ** 2).sum()`` via broadcasting.  Every entry is
    bit-identical to the serial one-query evaluation regardless of how
    many queries share the call, which is what lets the batched search
    path promise id-identical results.  Corpus rows are processed in
    blocks to bound scratch memory; blocking never changes any entry.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    corpus = np.atleast_2d(np.asarray(corpus, dtype=np.float64))
    _check_dims(queries, corpus)
    n_queries, dim = queries.shape
    n_rows = corpus.shape[0]
    out = np.empty((n_queries, n_rows), dtype=np.float64)
    # Per-query 2-D passes beat a (Q, chunk, D) broadcast: the broadcast
    # subtract falls off numpy's fast contiguous ufunc loops, while the
    # dense 2-D forms below run at full speed.  Element order within each
    # output row is unchanged, so blocking/layout never changes any entry.
    chunk = max(1, min(_corpus_chunk_rows(1, dim), n_rows))
    scratch = np.empty((chunk, dim), dtype=np.float64)
    for q in range(n_queries):
        query = queries[q]
        for start in range(0, n_rows, chunk):
            block = corpus[start : start + chunk]
            view = scratch[: block.shape[0]]
            np.subtract(block, query, out=view)
            np.multiply(view, view, out=view)
            np.sum(view, axis=-1, out=out[q, start : start + chunk])
    return out


def rowwise_inner_product_distance(
    queries: np.ndarray, corpus: np.ndarray
) -> np.ndarray:
    """Negated inner products, computed with the same bit-stable guarantee
    as :func:`rowwise_squared_l2` (multiply-then-reduce per pair, never a
    gemm whose accumulation order varies with batch shape)."""
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    corpus = np.atleast_2d(np.asarray(corpus, dtype=np.float64))
    _check_dims(queries, corpus)
    n_queries, dim = queries.shape
    n_rows = corpus.shape[0]
    out = np.empty((n_queries, n_rows), dtype=np.float64)
    chunk = max(1, min(_corpus_chunk_rows(1, dim), n_rows))
    scratch = np.empty((chunk, dim), dtype=np.float64)
    for q in range(n_queries):
        query = queries[q]
        for start in range(0, n_rows, chunk):
            block = corpus[start : start + chunk]
            view = scratch[: block.shape[0]]
            np.multiply(block, query, out=view)
            np.sum(view, axis=-1, out=out[q, start : start + chunk])
            np.negative(
                out[q, start : start + chunk], out=out[q, start : start + chunk]
            )
    return out


def paired_squared_l2(queries: np.ndarray, corpus: np.ndarray) -> np.ndarray:
    """Squared L2 between ``queries[i]`` and ``corpus[i]`` for every ``i``.

    The ragged-batch workhorse: the lockstep beam search gathers each
    beam's own frontier neighbours (query rows repeated per neighbour) and
    scores exactly those pairs in one dispatch — no all-pairs waste.  The
    arithmetic per pair (elementwise subtract, square, pairwise-sum along
    the last axis) is identical to :func:`rowwise_squared_l2`'s, so every
    entry is bit-identical to the serial one-query evaluation.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    corpus = np.atleast_2d(np.asarray(corpus, dtype=np.float64))
    _check_dims(queries, corpus)
    diff = corpus - queries
    np.multiply(diff, diff, out=diff)
    return np.add.reduce(diff, axis=-1)


def paired_inner_product_distance(
    queries: np.ndarray, corpus: np.ndarray
) -> np.ndarray:
    """Negated inner product between ``queries[i]`` and ``corpus[i]``,
    with the same bit-stability guarantee as :func:`paired_squared_l2`."""
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    corpus = np.atleast_2d(np.asarray(corpus, dtype=np.float64))
    _check_dims(queries, corpus)
    product = corpus * queries
    total = np.add.reduce(product, axis=-1)
    np.negative(total, out=total)
    return total


def pairwise_squared_l2(queries: np.ndarray, corpus: np.ndarray) -> np.ndarray:
    """Squared L2 between every query row and every corpus row.

    Uses the expansion ``|q - x|^2 = |q|^2 - 2 q.x + |x|^2`` so the whole
    computation is three BLAS calls; negatives from floating-point
    cancellation are clamped to zero.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    corpus = np.atleast_2d(np.asarray(corpus, dtype=np.float64))
    _check_dims(queries, corpus)
    q_norms = (queries * queries).sum(axis=1)[:, None]
    c_norms = (corpus * corpus).sum(axis=1)[None, :]
    distances = q_norms - 2.0 * queries @ corpus.T + c_norms
    return np.maximum(distances, 0.0)
