"""Weighted multi-vector distance — the heart of MUST's similarity model.

A multi-modal object is a *tuple* of vectors, one per modality, stored
concatenated.  The distance between query and object is the weighted sum of
per-modality squared L2 distances:

    d_w(q, x) = sum_m  w_m * |q_m - x_m|^2

Because every term is non-negative, scanning modalities incrementally and
aborting once the running sum exceeds the best-so-far candidate distance is
an *exact* optimisation ("computational pruning" in the paper).  The kernel
counts evaluated segments so experiment E5 can report the work saved.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.data.modality import Modality
from repro.distance.kernel import DistanceKernel
from repro.errors import DimensionMismatchError, EncodingError


class MultiVectorSchema:
    """Layout of concatenated per-modality vectors.

    Args:
        dims: Ordered mapping from modality to that modality's vector
            dimensionality.  Concatenation order follows mapping order.
    """

    def __init__(self, dims: Mapping[Modality, int]) -> None:
        if not dims:
            raise EncodingError("multi-vector schema needs at least one modality")
        self._modalities: Tuple[Modality, ...] = tuple(Modality.parse(m) for m in dims)
        self._dims: Tuple[int, ...] = tuple(int(d) for d in dims.values())
        if any(d <= 0 for d in self._dims):
            raise EncodingError(f"all modality dims must be positive, got {self._dims}")
        offsets = [0]
        for d in self._dims:
            offsets.append(offsets[-1] + d)
        self._offsets: Tuple[int, ...] = tuple(offsets)

    @property
    def modalities(self) -> Tuple[Modality, ...]:
        """Concatenation order."""
        return self._modalities

    @property
    def total_dim(self) -> int:
        """Dimensionality of the concatenated vector."""
        return self._offsets[-1]

    def dim_of(self, modality: Modality) -> int:
        """Dimensionality of one modality's segment."""
        modality = Modality.parse(modality)
        try:
            return self._dims[self._modalities.index(modality)]
        except ValueError:
            raise EncodingError(f"schema has no modality {modality.value!r}") from None

    def segment(self, index: int) -> slice:
        """Slice selecting segment ``index`` of a concatenated vector."""
        return slice(self._offsets[index], self._offsets[index + 1])

    def concat(self, vectors: Mapping[Modality, np.ndarray]) -> np.ndarray:
        """Concatenate per-modality vectors in schema order.

        Modalities missing from ``vectors`` (a text-only query against a
        text+image schema) are zero-filled; zero segments contribute a
        constant to every distance under squared L2 against unit-norm
        stored vectors, so rankings are unaffected.
        """
        parts = []
        for modality, dim in zip(self._modalities, self._dims):
            if modality in vectors:
                vector = np.asarray(vectors[modality], dtype=np.float64)
                if vector.shape != (dim,):
                    raise DimensionMismatchError(
                        f"{modality.value} vector has shape {vector.shape}, "
                        f"schema expects ({dim},)"
                    )
                parts.append(vector)
            else:
                parts.append(np.zeros(dim))
        return np.concatenate(parts)

    def split(self, concatenated: np.ndarray) -> Dict[Modality, np.ndarray]:
        """Split a concatenated vector back into per-modality segments."""
        concatenated = np.asarray(concatenated, dtype=np.float64)
        if concatenated.shape[-1] != self.total_dim:
            raise DimensionMismatchError(
                f"vector has dim {concatenated.shape[-1]}, schema expects {self.total_dim}"
            )
        return {
            modality: concatenated[..., self.segment(i)]
            for i, modality in enumerate(self._modalities)
        }


class WeightedMultiVectorKernel(DistanceKernel):
    """Weighted per-modality squared-L2 with incremental scanning.

    Args:
        schema: Concatenation layout.
        weights: Per-modality weights in schema order or as a mapping.
            Normalised to sum to the number of modalities, so equal weights
            are all 1.0 and distances stay comparable across weightings.
        prune: Enable early termination in :meth:`single` (on by default;
            the E5 ablation turns it off).
    """

    def __init__(
        self,
        schema: MultiVectorSchema,
        weights: "Sequence[float] | Mapping[Modality, float] | None" = None,
        prune: bool = True,
    ) -> None:
        super().__init__()
        self.schema = schema
        self.prune = prune
        self._weights = self._normalise_weights(weights)
        # Scanning more discriminative (higher-weight) segments first makes
        # the running sum grow fastest, maximising pruning opportunities.
        self._scan_order = tuple(int(i) for i in np.argsort(-self._weights))

    def _normalise_weights(self, weights) -> np.ndarray:
        count = len(self.schema.modalities)
        if weights is None:
            return np.ones(count)
        if isinstance(weights, Mapping):
            parsed = {Modality.parse(k): float(v) for k, v in weights.items()}
            missing = [m for m in self.schema.modalities if m not in parsed]
            if missing:
                names = ", ".join(m.value for m in missing)
                raise EncodingError(f"weights missing for modalities: {names}")
            values = np.array([parsed[m] for m in self.schema.modalities])
        else:
            values = np.asarray(list(weights), dtype=np.float64)
            if values.shape != (count,):
                raise EncodingError(
                    f"expected {count} weights, got {values.shape}"
                )
        if (values < 0).any():
            raise EncodingError(f"modality weights must be non-negative, got {values}")
        total = values.sum()
        if total <= 0:
            raise EncodingError("modality weights must not all be zero")
        return values * (count / total)

    @property
    def weights(self) -> np.ndarray:
        """Normalised per-modality weights in schema order."""
        return self._weights.copy()

    def weights_by_modality(self) -> Dict[Modality, float]:
        """Weights keyed by modality."""
        return {
            m: float(w) for m, w in zip(self.schema.modalities, self._weights)
        }

    @property
    def dim(self) -> int:
        return self.schema.total_dim

    def with_weights(self, weights) -> "WeightedMultiVectorKernel":
        """A new kernel over the same schema with different weights."""
        return WeightedMultiVectorKernel(self.schema, weights, prune=self.prune)

    # ------------------------------------------------------------------
    # distance evaluation
    # ------------------------------------------------------------------
    def batch(self, query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        query = np.asarray(query, dtype=np.float64)
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        if matrix.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"matrix dim {matrix.shape[1]} != schema dim {self.dim}"
            )
        total = np.zeros(matrix.shape[0])
        for i, weight in enumerate(self._weights):
            seg = self.schema.segment(i)
            diff = matrix[:, seg] - query[seg]
            total += weight * (diff * diff).sum(axis=1)
        n_segments = len(self._weights) * matrix.shape[0]
        self.stats.calls += matrix.shape[0]
        self.stats.segments_evaluated += n_segments
        self.stats.segments_total += n_segments
        return total

    def batch_many(self, queries: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        if matrix.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"matrix dim {matrix.shape[1]} != schema dim {self.dim}"
            )
        n_queries = queries.shape[0]
        n_rows = matrix.shape[0]
        out = np.empty((n_queries, n_rows), dtype=np.float64)
        # Segments tile the concatenated vector, so one full-width
        # subtract + square per query covers every segment in two dense
        # 2-D ufunc passes; the per-segment reduces then run over column
        # slices of that scratch.  The diff/square values, each segment's
        # pairwise-sum order, the weight scaling, and the segment
        # accumulation order all match batch() exactly, so each output
        # row is bit-identical to the serial evaluation of that query
        # (the dropped leading ``0 +`` is exact: every term is >= +0.0).
        scratch = np.empty((n_rows, self.dim), dtype=np.float64)
        acc = np.empty(n_rows, dtype=np.float64)
        for q in range(n_queries):
            np.subtract(matrix, queries[q], out=scratch)
            np.multiply(scratch, scratch, out=scratch)
            row = out[q]
            for i, weight in enumerate(self._weights):
                seg = self.schema.segment(i)
                np.add.reduce(scratch[:, seg], axis=1, out=acc)
                if i == 0:
                    np.multiply(acc, weight, out=row)
                else:
                    np.multiply(acc, weight, out=acc)
                    np.add(row, acc, out=row)
        count = n_queries * n_rows
        self.stats.calls += count
        self.stats.segments_evaluated += count * len(self._weights)
        self.stats.segments_total += count * len(self._weights)
        return out

    def batch_paired(
        self, queries: np.ndarray, matrix: np.ndarray, owners: np.ndarray
    ) -> np.ndarray:
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        if matrix.shape[1] != self.dim:
            raise DimensionMismatchError(
                f"matrix dim {matrix.shape[1]} != schema dim {self.dim}"
            )
        gathered = queries[np.asarray(owners, dtype=np.intp)]
        # Same segment order and multiply-then-reduce arithmetic as
        # batch(), so entry i is bit-identical to the serial evaluation of
        # (queries[owners[i]], matrix[i]).
        total = np.zeros(matrix.shape[0])
        for i, weight in enumerate(self._weights):
            seg = self.schema.segment(i)
            diff = matrix[:, seg] - gathered[:, seg]
            total += weight * (diff * diff).sum(axis=1)
        n_segments = len(self._weights) * matrix.shape[0]
        self.stats.calls += matrix.shape[0]
        self.stats.segments_evaluated += n_segments
        self.stats.segments_total += n_segments
        return total

    def matrix(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        from repro.distance.metrics import pairwise_squared_l2

        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        cols = np.atleast_2d(np.asarray(cols, dtype=np.float64))
        total = np.zeros((rows.shape[0], cols.shape[0]))
        for i, weight in enumerate(self._weights):
            seg = self.schema.segment(i)
            total += weight * pairwise_squared_l2(rows[:, seg], cols[:, seg])
        count = rows.shape[0] * cols.shape[0]
        self.stats.calls += count
        self.stats.segments_evaluated += count * len(self._weights)
        self.stats.segments_total += count * len(self._weights)
        return total

    def single(self, query: np.ndarray, vector: np.ndarray, bound: float = np.inf) -> float:
        query = np.asarray(query, dtype=np.float64)
        vector = np.asarray(vector, dtype=np.float64)
        self.stats.calls += 1
        self.stats.segments_total += len(self._weights)
        total = 0.0
        for i in self._scan_order:
            seg = self.schema.segment(i)
            diff = query[seg] - vector[seg]
            total += self._weights[i] * float(diff @ diff)
            self.stats.segments_evaluated += 1
            if self.prune and total > bound:
                self.stats.pruned += 1
                return total
        return total

    # ------------------------------------------------------------------
    # corpus helpers
    # ------------------------------------------------------------------
    def stack_corpus(self, vectors_by_modality: Mapping[Modality, np.ndarray]) -> np.ndarray:
        """Concatenate per-modality corpus matrices into an (n, total) matrix."""
        rows = None
        parts = []
        for modality in self.schema.modalities:
            if modality not in vectors_by_modality:
                raise EncodingError(
                    f"corpus is missing modality {modality.value!r}"
                )
            matrix = np.atleast_2d(np.asarray(vectors_by_modality[modality], dtype=np.float64))
            if matrix.shape[1] != self.schema.dim_of(modality):
                raise DimensionMismatchError(
                    f"{modality.value} corpus dim {matrix.shape[1]} != "
                    f"schema dim {self.schema.dim_of(modality)}"
                )
            if rows is None:
                rows = matrix.shape[0]
            elif matrix.shape[0] != rows:
                raise EncodingError(
                    "per-modality corpus matrices have different row counts"
                )
            parts.append(matrix)
        return np.concatenate(parts, axis=1)
