"""Experiment-results digest.

``pytest benchmarks/ --benchmark-only`` persists every experiment table
under ``benchmarks/results/``; this module collects them into one markdown
digest (and ``python -m repro.reporting`` prints it), so a full
reproduction run ends with a single reviewable artefact.  The digest
closes with the serving-layer *performance trajectory*: one headline row
per infrastructure PR, read from the committed ``BENCH_PR*.json``
artefacts at the repository root so the table can never drift from the
numbers actually measured.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional

EXPERIMENT_ORDER = (
    "fig1", "fig2", "fig3", "fig4", "fig5",
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9",
)


def collect_results(results_dir: "str | Path") -> List[Path]:
    """Result files under ``results_dir``, in experiment order."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        return []
    found = {path.stem: path for path in results_dir.glob("*.txt")}
    ordered = [found.pop(stem) for stem in EXPERIMENT_ORDER if stem in found]
    ordered.extend(sorted(found.values()))
    return ordered


def _load_bench(repo_root: Path, name: str) -> Optional[dict]:
    path = repo_root / name
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def render_trajectory(repo_root: "str | Path") -> Optional[str]:
    """The serving-layer performance-trajectory table, or None.

    One row per infrastructure PR bench, read from the committed
    ``BENCH_PR*.json`` artefacts so the digest always matches the
    measured numbers.  Returns None when no artefact is present.
    """
    repo_root = Path(repo_root)
    rows: List[List[str]] = []
    pr7 = _load_bench(repo_root, "BENCH_PR7.json")
    if pr7 is not None:
        p50 = pr7["p50_latency_ms"]
        rows.append(
            [
                "7",
                "cost accounting",
                "p50 read latency, accounting off -> on: "
                f"{p50['accounting_off']} -> {p50['accounting_on']} ms",
                f"{pr7['estimated_disabled_overhead_pct']}",
                "yes" if pr7["read_ids_identical"] else "NO",
            ]
        )
    pr8 = _load_bench(repo_root, "BENCH_PR8.json")
    if pr8 is not None:
        rows.append(
            [
                "8",
                "tiered beyond-RAM serving",
                f"recall@10 {pr8['best_tiered_recall_at_10']} (full precision "
                f"{pr8['full_precision']['recall_at_10']}) at >= "
                f"{pr8['min_full_to_resident_ratio']:.1f}x spilled",
                f"{pr8['estimated_disabled_overhead_pct']}",
                "yes" if pr8["tiered_off_ids_identical"] else "NO",
            ]
        )
    pr9 = _load_bench(repo_root, "BENCH_PR9.json")
    if pr9 is not None:
        rows.append(
            [
                "9",
                "adaptive serving (planner + semantic cache + admission)",
                f"{pr9['goodput_ratio']}x goodput under overload "
                f"({pr9['adaptive']['goodput']['good']} vs "
                f"{pr9['baseline']['goodput']['good']} good reads, "
                f"{pr9['scenario']['deadline_ms']:.0f} ms deadline)",
                f"{pr9['estimated_disabled_overhead_pct']}",
                "yes" if pr9["idle_ids_identical"] else "NO",
            ]
        )
    if not rows:
        return None
    header = ["PR", "feature", "headline (measured)", "disabled ovh %", "ids identical"]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(header[i].ljust(widths[i]) for i in range(len(header))).rstrip(),
        "-" * (sum(widths) + 2 * (len(widths) - 1)),
    ]
    for row in rows:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(row))).rstrip()
        )
    return "\n".join(lines)


def render_digest(results_dir: "str | Path") -> str:
    """All experiment tables as one markdown document."""
    paths = collect_results(results_dir)
    if not paths:
        return (
            "No experiment results found. Run "
            "`pytest benchmarks/ --benchmark-only` first."
        )
    sections = ["# Experiment results digest", ""]
    for path in paths:
        content = path.read_text().rstrip()
        title, _, body = content.partition("\n")
        sections.append(f"## {title}")
        sections.append("")
        sections.append("```")
        sections.append(body)
        sections.append("```")
        sections.append("")
    trajectory = render_trajectory(Path(results_dir).resolve().parent.parent)
    if trajectory is not None:
        sections.append("## Performance trajectory (serving-layer PR benches)")
        sections.append("")
        sections.append(
            "Headline numbers from the committed `BENCH_PR*.json` artefacts"
        )
        sections.append(
            "at the repository root; every PR's flags are off by default and"
        )
        sections.append(
            "each bench asserts bit-identical ids and < 1% disabled overhead."
        )
        sections.append("")
        sections.append("```")
        sections.append(trajectory)
        sections.append("```")
        sections.append("")
    return "\n".join(sections)


def write_digest(
    results_dir: "str | Path",
    output: "str | Path",
) -> Path:
    """Write the digest markdown to ``output`` and return its path."""
    output = Path(output)
    output.write_text(render_digest(results_dir))
    return output


def main() -> int:
    """Print the digest for the repository's benchmark results."""
    repo_root = Path(__file__).resolve().parents[2]
    print(render_digest(repo_root / "benchmarks" / "results"))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    raise SystemExit(main())
