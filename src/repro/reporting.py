"""Experiment-results digest.

``pytest benchmarks/ --benchmark-only`` persists every experiment table
under ``benchmarks/results/``; this module collects them into one markdown
digest (and ``python -m repro.reporting`` prints it), so a full
reproduction run ends with a single reviewable artefact.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

EXPERIMENT_ORDER = (
    "fig1", "fig2", "fig3", "fig4", "fig5",
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9",
)


def collect_results(results_dir: "str | Path") -> List[Path]:
    """Result files under ``results_dir``, in experiment order."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        return []
    found = {path.stem: path for path in results_dir.glob("*.txt")}
    ordered = [found.pop(stem) for stem in EXPERIMENT_ORDER if stem in found]
    ordered.extend(sorted(found.values()))
    return ordered


def render_digest(results_dir: "str | Path") -> str:
    """All experiment tables as one markdown document."""
    paths = collect_results(results_dir)
    if not paths:
        return (
            "No experiment results found. Run "
            "`pytest benchmarks/ --benchmark-only` first."
        )
    sections = ["# Experiment results digest", ""]
    for path in paths:
        content = path.read_text().rstrip()
        title, _, body = content.partition("\n")
        sections.append(f"## {title}")
        sections.append("")
        sections.append("```")
        sections.append(body)
        sections.append("```")
        sections.append("")
    return "\n".join(sections)


def write_digest(
    results_dir: "str | Path",
    output: "str | Path",
) -> Path:
    """Write the digest markdown to ``output`` and return its path."""
    output = Path(output)
    output.write_text(render_digest(results_dir))
    return output


def main() -> int:
    """Print the digest for the repository's benchmark results."""
    repo_root = Path(__file__).resolve().parents[2]
    print(render_digest(repo_root / "benchmarks" / "results"))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    raise SystemExit(main())
