"""Deterministic random-number utilities.

Everything stochastic in this library flows through seeded
:class:`numpy.random.Generator` instances so that datasets, encoders, index
construction, and benchmarks are exactly reproducible run to run.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_hash(*parts: object) -> int:
    """Return a 64-bit hash of ``parts`` that is stable across processes.

    Python's builtin :func:`hash` is salted per process for strings, so it
    cannot be used to derive reproducible seeds.  This helper hashes the
    ``repr`` of each part with BLAKE2b instead.
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")  # separator so ("ab","c") != ("a","bc")
    return int.from_bytes(digest.digest(), "big")


def rng_from_seed(seed: int) -> np.random.Generator:
    """Create a generator from an integer seed."""
    return np.random.default_rng(seed)


def derive_rng(seed: int, *scope: object) -> np.random.Generator:
    """Create a generator for a named sub-scope of a master seed.

    Deriving independent streams by name (e.g. ``derive_rng(seed, "text",
    object_id)``) keeps components decoupled: adding noise draws in one
    module never shifts the stream consumed by another.
    """
    return np.random.default_rng(stable_hash(seed, *scope))
