"""Shared utilities: seeded RNG helpers, timers, and simplex projection."""

from repro.utils.rng import derive_rng, rng_from_seed, stable_hash
from repro.utils.timing import Timer
from repro.utils.vectors import l2_normalize, project_to_simplex

__all__ = [
    "Timer",
    "derive_rng",
    "l2_normalize",
    "project_to_simplex",
    "rng_from_seed",
    "stable_hash",
]
