"""Small vector helpers shared across encoders, weights, and indexes."""

from __future__ import annotations

import numpy as np


def l2_normalize(vectors: np.ndarray, axis: int = -1, eps: float = 1e-12) -> np.ndarray:
    """L2-normalise ``vectors`` along ``axis``.

    Zero vectors are left as zeros instead of producing NaNs, which matters
    for degenerate synthetic objects (e.g. an empty text description).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    norms = np.linalg.norm(vectors, axis=axis, keepdims=True)
    return vectors / np.maximum(norms, eps)


def project_to_simplex(weights: np.ndarray, total: float = 1.0) -> np.ndarray:
    """Euclidean projection of ``weights`` onto the simplex of sum ``total``.

    Used by the contrastive weight-learning model to keep modality weights
    non-negative and normalised after each gradient step.  Implements the
    sorting algorithm of Duchi et al. (2008).
    """
    if total <= 0:
        raise ValueError(f"simplex total must be positive, got {total}")
    w = np.asarray(weights, dtype=np.float64).ravel()
    if w.size == 0:
        raise ValueError("cannot project an empty weight vector")
    sorted_desc = np.sort(w)[::-1]
    cumulative = np.cumsum(sorted_desc) - total
    indices = np.arange(1, w.size + 1)
    above = sorted_desc - cumulative / indices > 0
    rho = int(np.nonzero(above)[0][-1]) + 1 if above.any() else 1
    theta = cumulative[rho - 1] / rho
    return np.maximum(w - theta, 0.0)
