"""A tiny wall-clock timer used by the status panel and the benchmarks."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     sum(range(10))
    45
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start

    def start(self) -> None:
        """Start (or restart) the timer outside a ``with`` block."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the timer and return the elapsed seconds."""
        self.elapsed = time.perf_counter() - self._start
        return self.elapsed
