"""A small dependency-resolving DAG engine (the CGraph stand-in).

The paper builds its graph-construction pipeline on CGraph, a C++ DAG
framework.  This package provides the same contract in Python: named nodes
with declared dependencies, topological execution, per-node status and
timing, and cycle detection — enough for any navigation-graph algorithm to
be decomposed into pluggable stages and executed as a DAG.
"""

from repro.pipeline.dag import DagPipeline, NodeReport, NodeStatus

__all__ = ["DagPipeline", "NodeReport", "NodeStatus"]
