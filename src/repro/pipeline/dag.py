"""Topological DAG execution with per-node reporting."""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import CycleError, PipelineError

NodeFn = Callable[[Dict[str, Any]], Any]


class NodeStatus(str, enum.Enum):
    """Lifecycle of one pipeline node."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    SKIPPED = "skipped"


@dataclass
class NodeReport:
    """Execution record for one node.

    Attributes:
        name: Node name.
        status: Final status after :meth:`DagPipeline.run`.
        elapsed: Wall-clock seconds spent in the node body.
        error: Stringified exception when status is FAILED.
    """

    name: str
    status: NodeStatus = NodeStatus.PENDING
    elapsed: float = 0.0
    error: Optional[str] = None


@dataclass
class _Node:
    name: str
    fn: NodeFn
    depends_on: Tuple[str, ...]


class DagPipeline:
    """A named DAG of processing stages sharing one context dictionary.

    Each node receives the context and may return a value, which is stored
    in the context under the node's name — downstream stages read their
    inputs from there.  Execution order is a deterministic topological sort
    (insertion order among ready nodes).
    """

    def __init__(self, name: str = "pipeline") -> None:
        self.name = name
        self._nodes: Dict[str, _Node] = {}

    def add_node(
        self,
        name: str,
        fn: NodeFn,
        depends_on: Sequence[str] = (),
    ) -> "DagPipeline":
        """Register a stage; returns self so calls chain."""
        if not name:
            raise PipelineError("node name must be non-empty")
        if name in self._nodes:
            raise PipelineError(f"duplicate node name {name!r} in pipeline {self.name!r}")
        self._nodes[name] = _Node(name=name, fn=fn, depends_on=tuple(depends_on))
        return self

    @property
    def node_names(self) -> Tuple[str, ...]:
        """Registered node names in insertion order."""
        return tuple(self._nodes)

    def _toposort(self) -> List[str]:
        for node in self._nodes.values():
            for dep in node.depends_on:
                if dep not in self._nodes:
                    raise PipelineError(
                        f"node {node.name!r} depends on unknown node {dep!r}"
                    )
        in_degree = {name: len(node.depends_on) for name, node in self._nodes.items()}
        dependents: Dict[str, List[str]] = {name: [] for name in self._nodes}
        for node in self._nodes.values():
            for dep in node.depends_on:
                dependents[dep].append(node.name)
        ready = [name for name, degree in in_degree.items() if degree == 0]
        order: List[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for dependent in dependents[current]:
                in_degree[dependent] -= 1
                if in_degree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(self._nodes):
            unresolved = sorted(set(self._nodes) - set(order))
            raise CycleError(
                f"pipeline {self.name!r} has a dependency cycle involving: "
                + ", ".join(unresolved)
            )
        return order

    def run(
        self,
        context: "Dict[str, Any] | None" = None,
    ) -> "Tuple[Dict[str, Any], List[NodeReport]]":
        """Execute all nodes; returns the final context and node reports.

        On the first node failure the remaining nodes are marked SKIPPED and
        a :class:`PipelineError` is raised carrying the failing node's name.
        """
        context = dict(context or {})
        reports = {name: NodeReport(name=name) for name in self._nodes}
        order = self._toposort()
        failed: Optional[str] = None
        for name in order:
            report = reports[name]
            if failed is not None:
                report.status = NodeStatus.SKIPPED
                continue
            node = self._nodes[name]
            report.status = NodeStatus.RUNNING
            start = time.perf_counter()
            try:
                result = node.fn(context)
            except Exception as exc:  # noqa: BLE001 - reported, then re-raised
                report.status = NodeStatus.FAILED
                report.error = f"{type(exc).__name__}: {exc}"
                report.elapsed = time.perf_counter() - start
                failed = name
                continue
            report.elapsed = time.perf_counter() - start
            report.status = NodeStatus.DONE
            if result is not None:
                context[name] = result
        ordered_reports = [reports[name] for name in order]
        if failed is not None:
            message = reports[failed].error or "unknown error"
            raise PipelineError(
                f"pipeline {self.name!r} failed at node {failed!r}: {message}"
            )
        return context, ordered_reports
