"""Reusable graph-construction stages.

The paper proposes "a general pipeline for constructing fine-grained
navigation graphs ... of five flexible parts, allowing any current
navigation graph to be decomposed and smoothly integrated".  These are the
parts: initialisation, candidate acquisition, neighbour selection,
connectivity augmentation, and entry-point selection.  Each stage is a
factory returning a callable over the shared pipeline context, so stages
from different algorithms can be mixed into novel indexes (the "nav-must"
spec does exactly that).

Context keys (set by :func:`repro.index.pipeline_builder.build_navigation_graph`):

* ``vectors`` — the ``(n, d)`` corpus matrix.
* ``kernel`` — the distance kernel.
* ``graph`` — the evolving :class:`NavigationGraph` (after init).
* ``candidates`` — per-vertex candidate id lists (after acquisition).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

import numpy as np

from repro.errors import GraphConstructionError
from repro.index.graph import NavigationGraph
from repro.index.search import greedy_search
from repro.utils import derive_rng

StageFn = Callable[[Dict[str, Any]], Any]


def _corpus(context: Dict[str, Any]) -> np.ndarray:
    return context["vectors"]


def _kernel(context: Dict[str, Any]):
    return context["kernel"]


def robust_prune(
    query_vector: np.ndarray,
    pool: List[int],
    vectors: np.ndarray,
    kernel,
    max_degree: int,
    alpha: float = 1.2,
) -> List[int]:
    """Vamana's alpha-relaxed RNG selection over a candidate pool.

    Returns at most ``max_degree`` ids from ``pool``, closest first, where
    each kept candidate removes dominated candidates (those within
    ``alpha``-scaled distance of it).  Shared by the selection stage and by
    incremental insertion.
    """
    if not pool:
        return []
    distances = kernel.batch(query_vector, vectors[pool])
    order = [int(i) for i in np.argsort(distances)]
    pairwise = kernel.matrix(vectors[pool], vectors[pool])
    selected: List[int] = []
    remaining = order
    while remaining and len(selected) < max_degree:
        head = remaining[0]
        selected.append(head)
        remaining = [
            row
            for row in remaining[1:]
            if alpha * float(pairwise[head, row]) > float(distances[row])
        ]
    return [pool[row] for row in selected]


def medoid_of(vectors: np.ndarray, kernel) -> int:
    """Vertex closest to the corpus centroid under ``kernel``."""
    centroid = vectors.mean(axis=0)
    distances = kernel.batch(centroid, vectors)
    return int(np.argmin(distances))


# ----------------------------------------------------------------------
# 1. initialisation
# ----------------------------------------------------------------------
def init_empty(max_degree: int) -> StageFn:
    """Start from an edgeless graph (NSG-style: edges come from selection)."""

    def stage(context: Dict[str, Any]) -> NavigationGraph:
        n = _corpus(context).shape[0]
        return NavigationGraph(n, max_degree=max_degree)

    return stage


def init_random_regular(max_degree: int, out_degree: int, seed: int = 0) -> StageFn:
    """Start from a random ``out_degree``-regular graph (Vamana-style)."""
    if out_degree > max_degree:
        raise GraphConstructionError(
            f"out_degree {out_degree} exceeds max_degree {max_degree}"
        )

    def stage(context: Dict[str, Any]) -> NavigationGraph:
        n = _corpus(context).shape[0]
        graph = NavigationGraph(n, max_degree=max_degree)
        rng = derive_rng(seed, "init-random-regular")
        degree = min(out_degree, n - 1)
        for vertex in range(n):
            targets = rng.choice(n, size=min(degree + 1, n), replace=False)
            graph.set_neighbors(vertex, [int(t) for t in targets if t != vertex][:degree])
        return graph

    return stage


# ----------------------------------------------------------------------
# 2. candidate acquisition
# ----------------------------------------------------------------------
def candidates_exact_knn(k: int, block_size: int = 512) -> StageFn:
    """Exact k-nearest-neighbour candidates via blockwise batch distances."""

    def stage(context: Dict[str, Any]) -> List[List[int]]:
        vectors = _corpus(context)
        kernel = _kernel(context)
        n = vectors.shape[0]
        neighbors_k = min(k, n - 1)
        result: List[List[int]] = []
        for start in range(0, n, block_size):
            stop = min(start + block_size, n)
            for vertex in range(start, stop):
                distances = kernel.batch(vectors[vertex], vectors)
                distances[vertex] = np.inf
                top = np.argpartition(distances, neighbors_k - 1)[:neighbors_k]
                top = top[np.argsort(distances[top])]
                result.append([int(t) for t in top])
        return result

    return stage


def candidates_beam_search(pool_size: int, budget: int = 96) -> StageFn:
    """Search-based candidates: beam search for each vertex on the current
    graph, collecting the visited pool (Vamana/HNSW-style acquisition).

    Requires an initialised graph with edges (e.g. random-regular).
    """

    def stage(context: Dict[str, Any]) -> List[List[int]]:
        vectors = _corpus(context)
        kernel = _kernel(context)
        graph: NavigationGraph = context["graph"]
        entry = medoid_of(vectors, kernel)
        result: List[List[int]] = []
        for vertex in range(vectors.shape[0]):
            outcome = greedy_search(
                graph,
                vectors,
                kernel,
                vectors[vertex],
                k=min(pool_size, vectors.shape[0]),
                budget=budget,
                entry_points=[entry],
            )
            pool = [i for i in outcome.ids if i != vertex][:pool_size]
            result.append(pool)
        return result

    return stage


# ----------------------------------------------------------------------
# 3. neighbour selection
# ----------------------------------------------------------------------
def select_mrng(max_degree: int) -> StageFn:
    """Monotonic-RNG edge selection (NSG's rule).

    A candidate is linked only if no already-selected neighbour is closer to
    it than the vertex itself, producing sparse monotonic paths.
    """

    def stage(context: Dict[str, Any]) -> NavigationGraph:
        vectors = _corpus(context)
        kernel = _kernel(context)
        graph: NavigationGraph = context["graph"]
        candidate_lists: List[List[int]] = context["candidates"]
        for vertex, pool in enumerate(candidate_lists):
            if not pool:
                graph.set_neighbors(vertex, [])
                continue
            pool_distances = kernel.batch(vectors[vertex], vectors[pool])
            order = [int(i) for i in np.argsort(pool_distances)]
            pairwise = kernel.matrix(vectors[pool], vectors[pool])
            selected_rows: List[int] = []
            for row in order:
                if len(selected_rows) >= max_degree:
                    break
                candidate_distance = float(pool_distances[row])
                keep = all(
                    pairwise[chosen, row] >= candidate_distance
                    for chosen in selected_rows
                )
                if keep:
                    selected_rows.append(row)
            graph.set_neighbors(vertex, [pool[row] for row in selected_rows])
        return graph

    return stage


def select_alpha_rng(max_degree: int, alpha: float = 1.2, add_reverse: bool = True) -> StageFn:
    """Vamana's robust prune: relaxed RNG rule with slack ``alpha``.

    ``alpha > 1`` keeps longer-range edges than the strict RNG rule, giving
    the flatter graphs DiskANN favours for few-hop disk traversals.  With
    ``add_reverse`` each selected edge is mirrored and the target re-pruned
    when over capacity.
    """
    if alpha < 1.0:
        raise GraphConstructionError(f"alpha must be >= 1.0, got {alpha}")

    def prune(vertex: int, pool: List[int], vectors, kernel) -> List[int]:
        pool = list(dict.fromkeys(p for p in pool if p != vertex))
        return robust_prune(vectors[vertex], pool, vectors, kernel, max_degree, alpha)

    def stage(context: Dict[str, Any]) -> NavigationGraph:
        vectors = _corpus(context)
        kernel = _kernel(context)
        graph: NavigationGraph = context["graph"]
        candidate_lists: List[List[int]] = context["candidates"]
        for vertex, pool in enumerate(candidate_lists):
            merged = pool + graph.neighbors(vertex)
            graph.set_neighbors(vertex, prune(vertex, merged, vectors, kernel))
            if add_reverse:
                for neighbor in graph.neighbors(vertex):
                    row = graph.neighbors(neighbor)
                    if vertex in row:
                        continue
                    if len(row) < max_degree:
                        row.append(vertex)
                    else:
                        graph.set_neighbors(
                            neighbor, prune(neighbor, row + [vertex], vectors, kernel)
                        )
        return graph

    return stage


# ----------------------------------------------------------------------
# 4. connectivity augmentation
# ----------------------------------------------------------------------
def connect_repair() -> StageFn:
    """Attach vertices unreachable from the entry points."""

    def stage(context: Dict[str, Any]) -> NavigationGraph:
        graph: NavigationGraph = context["graph"]
        graph.connect_unreachable()
        return graph

    return stage


# ----------------------------------------------------------------------
# 5. entry-point selection
# ----------------------------------------------------------------------
def entry_medoid() -> StageFn:
    """Use the corpus medoid as the single entry point (NSG, Vamana)."""

    def stage(context: Dict[str, Any]) -> List[int]:
        graph: NavigationGraph = context["graph"]
        graph.entry_points = [medoid_of(_corpus(context), _kernel(context))]
        return graph.entry_points

    return stage


def entry_random(count: int = 1, seed: int = 0) -> StageFn:
    """Use ``count`` random vertices as entry points."""
    if count < 1:
        raise GraphConstructionError(f"entry count must be >= 1, got {count}")

    def stage(context: Dict[str, Any]) -> List[int]:
        graph: NavigationGraph = context["graph"]
        rng = derive_rng(seed, "entry-random")
        n = graph.n_vertices
        graph.entry_points = [
            int(v) for v in rng.choice(n, size=min(count, n), replace=False)
        ]
        return graph.entry_points

    return stage
