"""Exact brute-force index — the accuracy baseline every graph is judged by."""

from __future__ import annotations

import time

import numpy as np

from repro.distance.kernel import DistanceKernel
from repro.errors import SearchError
from repro.index.base import (
    SearchResult,
    SearchStats,
    VectorIndex,
    _per_query_admits,
)


class FlatIndex(VectorIndex):
    """Scans the whole corpus through the kernel's batch path.

    Exact by construction; ``budget`` is ignored.  Used as the ground-truth
    oracle in recall measurements and as the low-QPS baseline in E3.
    """

    name = "flat"

    def build(self, vectors: np.ndarray, kernel: DistanceKernel) -> None:
        start = time.perf_counter()
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if vectors.shape[0] == 0:
            raise SearchError("cannot build an index over an empty corpus")
        if vectors.shape[1] != kernel.dim:
            raise SearchError(
                f"corpus dim {vectors.shape[1]} != kernel dim {kernel.dim}"
            )
        self._vectors = vectors
        self._kernel = kernel
        self.build_seconds = time.perf_counter() - start

    def add(self, vector: np.ndarray) -> int:
        self._require_built()
        vector = np.asarray(vector, dtype=np.float64).reshape(1, -1)
        if vector.shape[1] != self.kernel.dim:
            raise SearchError(
                f"vector dim {vector.shape[1]} != kernel dim {self.kernel.dim}"
            )
        self._vectors = np.vstack([self._vectors, vector])
        return self.size - 1

    def check_invariants(self) -> None:
        """Verify the store's structural invariants; raise on violation.

        The flat index has no graph, but the property tests still assert
        its storage stays coherent under interleaved adds: a 2-D finite
        matrix whose width matches the kernel.
        """
        self._require_built()
        vectors = self._vectors
        if vectors.ndim != 2:
            raise SearchError(f"corpus must be 2-D, got ndim={vectors.ndim}")
        if vectors.shape[1] != self.kernel.dim:
            raise SearchError(
                f"corpus dim {vectors.shape[1]} != kernel dim {self.kernel.dim}"
            )
        if not np.isfinite(vectors).all():
            raise SearchError("corpus contains non-finite values")

    def search(
        self,
        query: np.ndarray,
        k: int,
        budget: int = 64,
        admit=None,
    ) -> SearchResult:
        self._require_built()
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        distances = self.kernel.batch(np.asarray(query, dtype=np.float64), self.vectors)
        if admit is not None:
            mask = np.fromiter(
                (admit(i) for i in range(distances.size)), dtype=bool,
                count=distances.size,
            )
            distances = np.where(mask, distances, np.inf)
            if not mask.any():
                return SearchResult(
                    ids=[], distances=[],
                    stats=SearchStats(distance_evaluations=int(mask.size)),
                )
            k = min(k, int(mask.sum()))
        k = min(k, distances.size)
        top = np.argpartition(distances, k - 1)[:k]
        top = top[np.argsort(distances[top])]
        stats = SearchStats(hops=0, distance_evaluations=self.size)
        return SearchResult(
            ids=[int(i) for i in top],
            distances=[float(distances[i]) for i in top],
            stats=stats,
        )

    def search_batch(self, queries, k: int, budget: int = 64, admit=None):
        """All queries scanned with one kernel dispatch.

        Row ``i`` of the batched distance matrix is bit-identical to the
        serial ``kernel.batch`` scan, and the per-row top-k selection code
        is the same — so ids and distances match :meth:`search` exactly.
        """
        self._require_built()
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_queries = queries.shape[0]
        if n_queries == 0:
            return []
        admits = _per_query_admits(admit, n_queries)
        all_distances = self.kernel.batch_many(queries, self.vectors)
        if all(a is None for a in admits):
            # Unfiltered fast path: one axis-wise argpartition + argsort
            # selects every row's top-k.  Partition and sort run per row on
            # the same values the serial path sees, so ids and distances
            # are identical to per-query search().
            row_k = min(k, all_distances.shape[1])
            top = np.argpartition(all_distances, row_k - 1, axis=1)[:, :row_k]
            picked = np.take_along_axis(all_distances, top, axis=1)
            order = np.argsort(picked, axis=1)
            top = np.take_along_axis(top, order, axis=1)
            picked = np.take_along_axis(picked, order, axis=1)
            stats_size = self.size
            return [
                SearchResult(
                    ids=top[i].tolist(),
                    distances=picked[i].tolist(),
                    stats=SearchStats(hops=0, distance_evaluations=stats_size),
                )
                for i in range(n_queries)
            ]
        out = []
        for i in range(n_queries):
            distances = all_distances[i]
            row_k = k
            if admits[i] is not None:
                predicate = admits[i]
                mask = np.fromiter(
                    (predicate(j) for j in range(distances.size)), dtype=bool,
                    count=distances.size,
                )
                distances = np.where(mask, distances, np.inf)
                if not mask.any():
                    out.append(SearchResult(
                        ids=[], distances=[],
                        stats=SearchStats(distance_evaluations=int(mask.size)),
                    ))
                    continue
                row_k = min(row_k, int(mask.sum()))
            row_k = min(row_k, distances.size)
            top = np.argpartition(distances, row_k - 1)[:row_k]
            top = top[np.argsort(distances[top])]
            out.append(SearchResult(
                ids=[int(j) for j in top],
                distances=[float(distances[j]) for j in top],
                stats=SearchStats(hops=0, distance_evaluations=self.size),
            ))
        return out
