"""Exact brute-force index — the accuracy baseline every graph is judged by."""

from __future__ import annotations

import time

import numpy as np

from repro.distance.kernel import DistanceKernel
from repro.errors import SearchError
from repro.index.base import SearchResult, SearchStats, VectorIndex


class FlatIndex(VectorIndex):
    """Scans the whole corpus through the kernel's batch path.

    Exact by construction; ``budget`` is ignored.  Used as the ground-truth
    oracle in recall measurements and as the low-QPS baseline in E3.
    """

    name = "flat"

    def build(self, vectors: np.ndarray, kernel: DistanceKernel) -> None:
        start = time.perf_counter()
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if vectors.shape[0] == 0:
            raise SearchError("cannot build an index over an empty corpus")
        if vectors.shape[1] != kernel.dim:
            raise SearchError(
                f"corpus dim {vectors.shape[1]} != kernel dim {kernel.dim}"
            )
        self._vectors = vectors
        self._kernel = kernel
        self.build_seconds = time.perf_counter() - start

    def add(self, vector: np.ndarray) -> int:
        self._require_built()
        vector = np.asarray(vector, dtype=np.float64).reshape(1, -1)
        if vector.shape[1] != self.kernel.dim:
            raise SearchError(
                f"vector dim {vector.shape[1]} != kernel dim {self.kernel.dim}"
            )
        self._vectors = np.vstack([self._vectors, vector])
        return self.size - 1

    def check_invariants(self) -> None:
        """Verify the store's structural invariants; raise on violation.

        The flat index has no graph, but the property tests still assert
        its storage stays coherent under interleaved adds: a 2-D finite
        matrix whose width matches the kernel.
        """
        self._require_built()
        vectors = self._vectors
        if vectors.ndim != 2:
            raise SearchError(f"corpus must be 2-D, got ndim={vectors.ndim}")
        if vectors.shape[1] != self.kernel.dim:
            raise SearchError(
                f"corpus dim {vectors.shape[1]} != kernel dim {self.kernel.dim}"
            )
        if not np.isfinite(vectors).all():
            raise SearchError("corpus contains non-finite values")

    def search(
        self,
        query: np.ndarray,
        k: int,
        budget: int = 64,
        admit=None,
    ) -> SearchResult:
        self._require_built()
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        distances = self.kernel.batch(np.asarray(query, dtype=np.float64), self.vectors)
        if admit is not None:
            mask = np.fromiter(
                (admit(i) for i in range(distances.size)), dtype=bool,
                count=distances.size,
            )
            distances = np.where(mask, distances, np.inf)
            if not mask.any():
                return SearchResult(
                    ids=[], distances=[],
                    stats=SearchStats(distance_evaluations=int(mask.size)),
                )
            k = min(k, int(mask.sum()))
        k = min(k, distances.size)
        top = np.argpartition(distances, k - 1)[:k]
        top = top[np.argsort(distances[top])]
        stats = SearchStats(hops=0, distance_evaluations=self.size)
        return SearchResult(
            ids=[int(i) for i in top],
            distances=[float(distances[i]) for i in top],
            stats=stats,
        )
