"""Saving and loading built navigation-graph indexes.

Graph construction dominates setup time, so a built index can be frozen to
disk and reloaded without rebuilding: the corpus matrix, the adjacency
structure, the entry points, and the kernel's reconstruction recipe are
stored; loading yields a :class:`FrozenGraphIndex` that searches (and even
grows) exactly like the original.

Any index exposing a graph can be saved: pipeline-built indexes (NSG,
Vamana, nav-must) directly, HNSW through its base layer, and Starling
through its inner graph — including tiered Starling, whose full-precision
vectors are read back out of the memory-mapped spill tier at save time (the
frozen copy is always exact, never the quantized codes).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.data.modality import Modality
from repro.distance import (
    DistanceKernel,
    Metric,
    MultiVectorSchema,
    SingleVectorKernel,
    WeightedMultiVectorKernel,
)
from repro.errors import IndexError_
from repro.index.base import SearchResult, VectorIndex
from repro.index.graph import NavigationGraph
from repro.index.hnsw import HnswIndex
from repro.index.pipeline_builder import PipelineGraphIndex
from repro.index.search import greedy_search

_META_FILE = "index.json"
_ARRAYS_FILE = "index.npz"

SavableIndex = Union[PipelineGraphIndex, HnswIndex, "FrozenGraphIndex"]


class FrozenGraphIndex(VectorIndex):
    """A searchable (and insertable) graph index restored from disk."""

    name = "frozen"

    def __init__(self, graph: NavigationGraph, vectors: np.ndarray, kernel: DistanceKernel) -> None:
        super().__init__()
        self.graph = graph
        self._vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        self._kernel = kernel

    def build(self, vectors: np.ndarray, kernel: DistanceKernel) -> None:
        raise IndexError_(
            "frozen indexes are restored, not built; use load_index()"
        )

    # Insertion reuses the pipeline index's search-and-prune logic.
    add = PipelineGraphIndex.add

    def search(
        self,
        query: np.ndarray,
        k: int,
        budget: int = 64,
        use_pruning: bool = False,
        kernel: "DistanceKernel | None" = None,
        admit=None,
    ) -> SearchResult:
        self._require_built()
        active = kernel if kernel is not None else self.kernel
        return greedy_search(
            self.graph,
            self.vectors,
            active,
            query,
            k=k,
            budget=budget,
            use_pruning=use_pruning,
            admit=admit,
        )


def _graph_of(index: SavableIndex) -> NavigationGraph:
    if isinstance(index, HnswIndex):
        return index.base_graph()
    graph = index.graph
    if graph is None:
        raise IndexError_("index has no graph; build it before saving")
    return graph


def _kernel_doc(kernel: DistanceKernel) -> dict:
    if isinstance(kernel, WeightedMultiVectorKernel):
        return {
            "kind": "multivector",
            "dims": {
                m.value: kernel.schema.dim_of(m) for m in kernel.schema.modalities
            },
            "weights": [float(w) for w in kernel.weights],
            "prune": kernel.prune,
        }
    if isinstance(kernel, SingleVectorKernel):
        return {
            "kind": "single",
            "dim": kernel.dim,
            "metric": kernel.metric.value,
            "chunk_size": kernel.chunk_size,
        }
    raise IndexError_(
        f"cannot serialise kernel of type {type(kernel).__name__}"
    )


def _kernel_from_doc(doc: dict) -> DistanceKernel:
    if doc["kind"] == "multivector":
        schema = MultiVectorSchema(
            {Modality.parse(name): dim for name, dim in doc["dims"].items()}
        )
        return WeightedMultiVectorKernel(schema, doc["weights"], prune=doc["prune"])
    return SingleVectorKernel(
        doc["dim"], metric=Metric.parse(doc["metric"]), chunk_size=doc["chunk_size"]
    )


def save_index(index: SavableIndex, directory: "str | Path") -> Path:
    """Serialise a built index under ``directory`` (created if needed).

    HNSW indexes keep their full layer hierarchy (loading restores a true
    :class:`HnswIndex`); other graph indexes store their single graph and
    restore as :class:`FrozenGraphIndex`.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    graph = _graph_of(index)
    offsets, targets = graph.to_arrays()
    meta = {
        "source": index.name,
        "n_vertices": graph.n_vertices,
        "max_degree": graph.max_degree,
        "entry_points": list(graph.entry_points),
        "kernel": _kernel_doc(index.kernel),
    }
    if isinstance(index, HnswIndex):
        meta["hnsw"] = {
            "m": index.params.m,
            "ef_construction": index.params.ef_construction,
            "seed": index.params.seed,
            "entry": index._entry,
            "max_level": index._max_level,
            "node_levels": list(index._node_level),
            "layers": [
                {str(node): neighbors for node, neighbors in layer.items()}
                for layer in index._layers
            ],
        }
    (directory / _META_FILE).write_text(json.dumps(meta, indent=2))
    np.savez_compressed(
        directory / _ARRAYS_FILE,
        vectors=index.vectors,
        offsets=offsets,
        targets=targets,
    )
    return directory


def load_index(directory: "str | Path") -> "FrozenGraphIndex | HnswIndex":
    """Restore an index saved by :func:`save_index`."""
    directory = Path(directory)
    meta_path = directory / _META_FILE
    if not meta_path.exists():
        raise IndexError_(f"no saved index at {directory} (missing {_META_FILE})")
    meta = json.loads(meta_path.read_text())
    with np.load(directory / _ARRAYS_FILE) as arrays:
        vectors = arrays["vectors"]
        offsets = arrays["offsets"]
        targets = arrays["targets"]

    if "hnsw" in meta:
        from repro.index.hnsw import HnswParams

        doc = meta["hnsw"]
        restored = HnswIndex(
            HnswParams(
                m=doc["m"], ef_construction=doc["ef_construction"], seed=doc["seed"]
            )
        )
        restored._vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        restored._kernel = _kernel_from_doc(meta["kernel"])
        restored._entry = int(doc["entry"])
        restored._max_level = int(doc["max_level"])
        restored._node_level = [int(level) for level in doc["node_levels"]]
        restored._layers = [
            {int(node): [int(n) for n in neighbors] for node, neighbors in layer.items()}
            for layer in doc["layers"]
        ]
        return restored

    graph = NavigationGraph(meta["n_vertices"], max_degree=meta["max_degree"])
    for vertex in range(meta["n_vertices"]):
        graph.set_neighbors(
            vertex, [int(t) for t in targets[offsets[vertex] : offsets[vertex + 1]]]
        )
    graph.entry_points = [int(e) for e in meta["entry_points"]]
    kernel = _kernel_from_doc(meta["kernel"])
    index = FrozenGraphIndex(graph, vectors, kernel)
    index.name = f"frozen({meta['source']})"
    return index
