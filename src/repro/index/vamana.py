"""Vamana (the DiskANN graph) as a five-stage pipeline.

Decomposition: random-regular init -> beam-search candidate acquisition
from the medoid -> alpha-relaxed robust prune with reverse edges ->
reachability repair -> medoid entry point.  ``alpha > 1`` keeps longer
edges than strict RNG pruning, flattening the graph so disk-resident
searches (Starling) need fewer hops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.index.pipeline_builder import GraphPipelineSpec, PipelineGraphIndex
from repro.index.stages import (
    candidates_beam_search,
    connect_repair,
    entry_medoid,
    init_random_regular,
    select_alpha_rng,
)


@dataclass(frozen=True)
class VamanaParams:
    """Vamana construction parameters.

    Attributes:
        max_degree: Out-degree bound (DiskANN's R).
        alpha: Pruning slack; 1.0 is strict RNG, DiskANN defaults to 1.2.
        candidate_pool: Visited-pool size harvested per vertex.
        build_budget: Beam width during candidate acquisition (DiskANN's L).
        seed: Random-init seed.
    """

    max_degree: int = 16
    alpha: float = 1.2
    candidate_pool: int = 48
    build_budget: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_degree < 2:
            raise ValueError(f"max_degree must be >= 2, got {self.max_degree}")
        if self.alpha < 1.0:
            raise ValueError(f"alpha must be >= 1.0, got {self.alpha}")
        if self.candidate_pool < self.max_degree:
            raise ValueError(
                f"candidate_pool ({self.candidate_pool}) must be >= "
                f"max_degree ({self.max_degree})"
            )


def vamana_spec(params: VamanaParams = VamanaParams()) -> GraphPipelineSpec:
    """The pipeline decomposition of Vamana."""
    return GraphPipelineSpec(
        name="vamana",
        init=init_random_regular(
            params.max_degree, out_degree=params.max_degree // 2, seed=params.seed
        ),
        candidates=candidates_beam_search(
            params.candidate_pool, budget=params.build_budget
        ),
        selection=select_alpha_rng(params.max_degree, alpha=params.alpha),
        connectivity=connect_repair(),
        entry=entry_medoid(),
    )


class VamanaIndex(PipelineGraphIndex):
    """Vamana materialised through the general construction pipeline."""

    def __init__(self, params: VamanaParams = VamanaParams()) -> None:
        super().__init__(vamana_spec(params))
        self.params = params
