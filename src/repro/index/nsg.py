"""NSG (Navigating Spreading-out Graph) as a five-stage pipeline.

Decomposition: empty init -> exact kNN candidates -> monotonic-RNG edge
selection -> reachability repair -> medoid entry point.  The exact-kNN
candidate stage makes construction O(n^2) in batch distance computations,
which matches the original NSG's reliance on a prebuilt kNN graph and is
fine at the corpus sizes this reproduction runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.index.pipeline_builder import GraphPipelineSpec, PipelineGraphIndex
from repro.index.stages import (
    candidates_exact_knn,
    connect_repair,
    entry_medoid,
    init_empty,
    select_mrng,
)


@dataclass(frozen=True)
class NsgParams:
    """NSG construction parameters.

    Attributes:
        max_degree: Out-degree bound after MRNG selection.
        knn: Size of the kNN candidate pool per vertex.
    """

    max_degree: int = 16
    knn: int = 50

    def __post_init__(self) -> None:
        if self.max_degree < 2:
            raise ValueError(f"max_degree must be >= 2, got {self.max_degree}")
        if self.knn < self.max_degree:
            raise ValueError(
                f"knn pool ({self.knn}) must be >= max_degree ({self.max_degree})"
            )


def nsg_spec(params: NsgParams = NsgParams()) -> GraphPipelineSpec:
    """The pipeline decomposition of NSG."""
    return GraphPipelineSpec(
        name="nsg",
        init=init_empty(params.max_degree),
        candidates=candidates_exact_knn(params.knn),
        selection=select_mrng(params.max_degree),
        connectivity=connect_repair(),
        entry=entry_medoid(),
    )


class NsgIndex(PipelineGraphIndex):
    """NSG materialised through the general construction pipeline."""

    def __init__(self, params: NsgParams = NsgParams()) -> None:
        super().__init__(nsg_spec(params))
        self.params = params
