"""Tiered beyond-RAM vector storage: resident codes, memory-mapped rerank.

The production shape Starling (Wang et al., SIGMOD 2024) and DiskANN pitch
for corpora that outgrow RAM: scalar-quantized codes (SQ8/SQ4, via
:class:`~repro.index.quantization.ScalarQuantizer`) stay resident and serve
every graph-traversal distance, while the full-precision float64 matrix is
spilled to a block-aligned :class:`numpy.memmap` file that only a final
top-k' rerank pass touches.  Traversal therefore costs no simulated disk
I/O at all; the rerank reads are charged to the store's own
:class:`~repro.index.starling.BlockDevice`, so ``block_reads`` /
``cache_hits`` — and the PR 7 cost profiles built from them — describe
exactly the accesses the full-precision tier absorbed.

The rerank pass re-scores the k' = ``rerank_factor`` * k traversal
candidates with exact distances and re-sorts by ``(distance, id)`` — the
same tie-break :func:`~repro.index.search.greedy_search` uses — so whenever
the candidate set covers the true top-k, the final ordering is exactly the
full-precision ordering.
"""

from __future__ import annotations

import os
import tempfile
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.index.quantization import ScalarQuantizer


@dataclass(frozen=True)
class TieredParams:
    """Tiered-store parameters.

    Attributes:
        bits: Code width for the resident tier (8 or 4).
        rerank_factor: Traversal over-fetch; the rerank pass re-scores
            ``rerank_factor * k`` candidates at full precision.
        mmap_cache_blocks: Buffer-pool capacity (in blocks) in front of the
            memory-mapped full-precision tier; 0 disables caching.
        block_size: Full-precision rows per mmap block (the charging
            granularity of the spill file).
        path: Spill-file location; ``None`` (the default) uses a unique
            temporary file per store, so sharded replicas each own their
            own mmap segment.
    """

    bits: int = 8
    rerank_factor: int = 4
    mmap_cache_blocks: int = 32
    block_size: int = 16
    path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.bits not in (4, 8):
            raise ConfigurationError(f"bits must be 4 or 8, got {self.bits}")
        if self.rerank_factor < 1:
            raise ConfigurationError(
                f"rerank_factor must be >= 1, got {self.rerank_factor}"
            )
        if self.mmap_cache_blocks < 0:
            raise ConfigurationError(
                f"mmap_cache_blocks must be >= 0, got {self.mmap_cache_blocks}"
            )
        if self.block_size < 1:
            raise ConfigurationError(
                f"block_size must be >= 1, got {self.block_size}"
            )


class QuantizedCodes:
    """Decode-on-access view over a store's resident codes.

    Presents the quantized tier to :func:`~repro.index.search.greedy_search`
    /  :func:`~repro.index.search.greedy_search_batch` with the same shape
    and indexing surface as the corpus matrix: scalar indexing yields a 1-D
    decoded row, list/array/slice indexing yields a 2-D decoded block.
    Only requested rows are ever decoded — the float64 matrix never
    materialises.
    """

    def __init__(self, store: "TieredStore") -> None:
        self._store = store

    @property
    def shape(self) -> Tuple[int, int]:
        codes = self._store.codes
        return (codes.shape[0], codes.shape[1])

    def __len__(self) -> int:
        return self.shape[0]

    def __getitem__(self, key: Any) -> np.ndarray:
        rows = self._store.codes[key]
        decoded = self._store.quantizer.decode(rows)
        if isinstance(key, (int, np.integer)):
            return decoded[0]
        return decoded


class TieredStore:
    """Two-tier vector storage behind a Starling-style index.

    Tier 1 (resident): packed-accounted SQ codes plus per-dimension
    ranges — what traversal reads.  Tier 2 (spilled): the full-precision
    float64 matrix in a block-aligned ``numpy.memmap`` file behind a
    counted, LRU-cached :class:`~repro.index.starling.BlockDevice` — what
    the rerank pass reads.
    """

    def __init__(self, params: TieredParams = TieredParams()) -> None:
        self.params = params
        self.quantizer = ScalarQuantizer(bits=params.bits)
        self.codes: Optional[np.ndarray] = None
        self.device = None  # BlockDevice over mmap blocks (set by build)
        self._full: Optional[np.memmap] = None
        self._path: Optional[str] = None
        self._owns_path = params.path is None
        self._n = 0
        self._capacity = 0
        self._dim = 0
        self._stats_lock = threading.Lock()
        self.rerank_calls = 0
        self.reranked_rows = 0
        self.last_rerank_depth = 0

    # ------------------------------------------------------------------
    # spill-file management
    # ------------------------------------------------------------------
    def _remap(self, capacity: int) -> None:
        """Grow the spill file to ``capacity`` rows and remap it."""
        assert self._path is not None
        with open(self._path, "r+b") as handle:
            handle.truncate(capacity * self._dim * 8)
        self._full = np.memmap(
            self._path, dtype=np.float64, mode="r+", shape=(capacity, self._dim)
        )
        self._capacity = capacity

    def build(self, matrix: np.ndarray) -> None:
        """Fit the quantizer, encode the resident tier, spill full precision."""
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        self.quantizer.fit(matrix)
        self.codes = self.quantizer.encode(matrix)
        self._n, self._dim = matrix.shape
        if self.params.path is not None:
            self._path = self.params.path
        else:
            fd, self._path = tempfile.mkstemp(
                prefix="repro-tiered-", suffix=".mmap"
            )
            os.close(fd)
        with open(self._path, "wb"):
            pass
        self._remap(max(self._n, 1))
        self._full[: self._n] = matrix
        self._full.flush()
        from repro.index.starling import BlockDevice

        self.device = BlockDevice(
            [row // self.params.block_size for row in range(self._n)],
            cache_blocks=self.params.mmap_cache_blocks,
        )

    def add(self, vector: np.ndarray) -> int:
        """Append one vector to both tiers; returns its row id."""
        self._require_built()
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if self._n == self._capacity:
            self._remap(max(self._capacity * 2, 1))
        row = self._n
        self._full[row] = vector
        self.codes = np.vstack([self.codes, self.quantizer.encode(vector)])
        self.device.extend(row // self.params.block_size)
        self._n += 1
        return row

    def _require_built(self) -> None:
        if self._full is None or self.codes is None or self.device is None:
            raise ConfigurationError("tiered store has not been built")

    # ------------------------------------------------------------------
    # the two tiers
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Rows stored (both tiers always agree)."""
        return self._n

    @property
    def vectors(self) -> np.ndarray:
        """The full-precision tier: a length-limited view of the memmap."""
        self._require_built()
        assert self._full is not None
        return self._full[: self._n]

    @property
    def decoded(self) -> QuantizedCodes:
        """The resident tier as a matrix-like decode-on-access view."""
        self._require_built()
        return QuantizedCodes(self)

    def rerank(
        self,
        query: np.ndarray,
        kernel,
        candidate_ids: Sequence[int],
        k: int,
    ) -> Tuple[List[int], List[float], int, int]:
        """Re-score ``candidate_ids`` from the full-precision tier.

        Every candidate row is charged to the store's block device before
        it is read; exact distances come from one ``kernel.batch`` call and
        the final order is ``(distance, id)`` — greedy search's tie-break.

        Returns ``(ids, distances, block_reads, cache_hits)`` with the
        device charges attributed to *this* call via the access return
        value, so concurrent searches sharing the device stay correct.
        """
        self._require_built()
        ids = [int(v) for v in candidate_ids]
        with self._stats_lock:
            self.rerank_calls += 1
            self.reranked_rows += len(ids)
            self.last_rerank_depth = len(ids)
        if not ids:
            return [], [], 0, 0
        reads = 0
        hits = 0
        for vertex in ids:
            if self.device.access(vertex):
                reads += 1
            else:
                hits += 1
        rows = np.asarray(self._full[ids], dtype=np.float64)
        distances = kernel.batch(np.asarray(query, dtype=np.float64), rows)
        ordered = sorted(zip((float(d) for d in distances), ids))[:k]
        return (
            [vertex for _, vertex in ordered],
            [distance for distance, _ in ordered],
            reads,
            hits,
        )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def resident_bytes(self) -> int:
        """Bytes the resident tier occupies (packed codes + ranges)."""
        return self._n * self._dim * self.params.bits // 8 + 2 * self._dim * 8

    def full_bytes(self) -> int:
        """Bytes of the spilled full-precision tier."""
        return self._n * self._dim * 8

    def snapshot(self) -> Dict[str, Any]:
        """Observability ledger for ``/health`` and the cost plane."""
        reads = self.device.block_reads if self.device is not None else 0
        hits = self.device.cache_hits if self.device is not None else 0
        total = reads + hits
        resident = self.resident_bytes()
        full = self.full_bytes()
        return {
            "bits": self.params.bits,
            "rows": self._n,
            "dims": self._dim,
            "resident_bytes": resident,
            "full_bytes": full,
            "compression_ratio": round(full / resident, 3) if resident else 0.0,
            "rerank_factor": self.params.rerank_factor,
            "mmap_blocks": self.device.n_blocks if self.device is not None else 0,
            "mmap_cache_blocks": self.params.mmap_cache_blocks,
            "mmap_block_reads": reads,
            "mmap_cache_hits": hits,
            "mmap_hit_rate": round(hits / total, 4) if total else 0.0,
            "rerank_calls": self.rerank_calls,
            "reranked_rows": self.reranked_rows,
            "last_rerank_depth": self.last_rerank_depth,
            "spill_path": self._path,
        }

    def close(self) -> None:
        """Release both tiers and delete an owned temporary spill file.

        Idempotent: a second close is a no-op.  The block device is reset
        along with the mmap view — a closed store must stop reporting
        live cache statistics, and ``__del__`` must actually release
        every tier, not just the full-precision one.
        """
        if self._full is None and self.device is None and self._path is None:
            return
        self._full = None
        self.device = None
        if self._owns_path and self._path and os.path.exists(self._path):
            try:
                os.unlink(self._path)
            except OSError:
                pass
        self._path = None

    def __del__(self) -> None:  # best-effort temp-file hygiene
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# observability aggregation (duck-typed so this module never imports the
# retrieval or sharding layers)
# ----------------------------------------------------------------------
def iter_tiered_stores(framework) -> Iterator[Tuple[str, TieredStore]]:
    """Yield ``(label, store)`` for every tiered store behind ``framework``.

    Walks shard routers (one store per replica — each owns its own mmap
    segment), MR's per-modality indexes, and JE/MUST's single index.
    """
    if framework is None:
        return
    groups = getattr(framework, "groups", None)
    if groups is not None:
        for g, group in enumerate(groups):
            for r, replica in enumerate(getattr(group, "replicas", ())):
                inner = getattr(replica, "framework", None)
                for label, store in iter_tiered_stores(inner):
                    yield f"shard{g}/replica{r}/{label}", store
        return
    indexes = getattr(framework, "_indexes", None)
    if indexes:
        for modality, index in indexes.items():
            store = getattr(index, "tiered", None)
            if store is not None:
                yield getattr(modality, "value", str(modality)), store
        return
    index = getattr(framework, "_index", None)
    store = getattr(index, "tiered", None) if index is not None else None
    if store is not None:
        yield "joint", store


def tiered_snapshot(framework) -> Optional[Dict[str, Any]]:
    """Aggregate ledger for ``GET /health`` / ``GET /stats``.

    ``None`` when no tiered store is active (the zero-cost disabled
    surface); otherwise per-store rows plus fleet totals.
    """
    stores = list(iter_tiered_stores(framework))
    if not stores:
        return None
    rows = [{"store": label, **store.snapshot()} for label, store in stores]
    reads = sum(row["mmap_block_reads"] for row in rows)
    hits = sum(row["mmap_cache_hits"] for row in rows)
    total = reads + hits
    return {
        "stores": rows,
        "totals": {
            "stores": len(rows),
            "rows": sum(row["rows"] for row in rows),
            "resident_bytes": sum(row["resident_bytes"] for row in rows),
            "full_bytes": sum(row["full_bytes"] for row in rows),
            "mmap_block_reads": reads,
            "mmap_cache_hits": hits,
            "mmap_hit_rate": round(hits / total, 4) if total else 0.0,
            "reranked_rows": sum(row["reranked_rows"] for row in rows),
        },
    }
