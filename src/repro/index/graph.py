"""The navigation-graph adjacency structure shared by all graph indexes."""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.errors import GraphConstructionError


class NavigationGraph:
    """A directed graph over vertex ids ``0..n-1`` with bounded out-degree.

    Vertices correspond to objects; an edge ``u -> v`` records that ``v`` is
    among ``u``'s selected near neighbours.  The structure is deliberately
    minimal — neighbour lists plus entry points — because that is the whole
    runtime contract of a navigation graph.
    """

    def __init__(self, n_vertices: int, max_degree: int) -> None:
        if n_vertices <= 0:
            raise GraphConstructionError(f"graph needs >= 1 vertex, got {n_vertices}")
        if max_degree <= 0:
            raise GraphConstructionError(f"max_degree must be positive, got {max_degree}")
        self.n_vertices = n_vertices
        self.max_degree = max_degree
        self._neighbors: List[List[int]] = [[] for _ in range(n_vertices)]
        self.entry_points: List[int] = [0]

    def neighbors(self, vertex: int) -> List[int]:
        """Out-neighbours of ``vertex``."""
        return self._neighbors[vertex]

    def add_vertex(self) -> int:
        """Grow the graph by one isolated vertex; returns its id."""
        self._neighbors.append([])
        self.n_vertices += 1
        return self.n_vertices - 1

    def set_neighbors(self, vertex: int, neighbors: Sequence[int]) -> None:
        """Replace ``vertex``'s neighbour list (trimmed to max_degree)."""
        unique: List[int] = []
        seen: Set[int] = {vertex}
        for neighbor in neighbors:
            neighbor = int(neighbor)
            if neighbor not in seen and 0 <= neighbor < self.n_vertices:
                unique.append(neighbor)
                seen.add(neighbor)
            if len(unique) == self.max_degree:
                break
        self._neighbors[vertex] = unique

    def add_edge(self, source: int, target: int) -> bool:
        """Append edge if absent and capacity remains; True when added."""
        if source == target or not 0 <= target < self.n_vertices:
            return False
        row = self._neighbors[source]
        if target in row or len(row) >= self.max_degree:
            return False
        row.append(target)
        return True

    @property
    def edge_count(self) -> int:
        """Total number of directed edges."""
        return sum(len(row) for row in self._neighbors)

    @property
    def average_degree(self) -> float:
        """Mean out-degree."""
        return self.edge_count / self.n_vertices

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def reachable_from(self, sources: Iterable[int]) -> Set[int]:
        """All vertices reachable from ``sources`` by directed edges."""
        visited: Set[int] = set()
        queue = deque(int(s) for s in sources)
        while queue:
            vertex = queue.popleft()
            if vertex in visited:
                continue
            visited.add(vertex)
            for neighbor in self._neighbors[vertex]:
                if neighbor not in visited:
                    queue.append(neighbor)
        return visited

    def is_connected(self) -> bool:
        """True when every vertex is reachable from the entry points."""
        return len(self.reachable_from(self.entry_points)) == self.n_vertices

    def connect_unreachable(self, order: "Sequence[int] | None" = None) -> int:
        """Attach unreachable vertices so the graph becomes navigable.

        Each unreachable vertex gets an edge from a reachable vertex with
        spare capacity; when every reachable vertex is full, the most
        recently attached vertex donates its last edge slot.  Displacing an
        edge can orphan its old target, so reachability is recomputed and
        orphans are revisited in later passes until the graph is connected
        (bounded by ``n_vertices`` passes).  Returns the number of repair
        edges added.
        """
        added = 0
        donor = self.entry_points[0]
        pool = list(order) if order is not None else list(range(self.n_vertices))
        for _ in range(self.n_vertices + 1):
            reachable = self.reachable_from(self.entry_points)
            if len(reachable) == self.n_vertices:
                break
            for vertex in pool:
                if vertex in reachable:
                    continue
                spare = next(
                    (
                        u
                        for u in reachable
                        if len(self._neighbors[u]) < self.max_degree
                    ),
                    None,
                )
                if spare is None:
                    spare = donor if donor in reachable else self.entry_points[0]
                    self._neighbors[spare] = self._neighbors[spare][
                        : self.max_degree - 1
                    ]
                self._neighbors[spare].append(vertex)
                donor = vertex
                added += 1
                # Attaching the vertex exposes its own out-edges, and a
                # displacement may have orphaned an old target.
                reachable = self.reachable_from(self.entry_points)
        return added

    def degree_histogram(self) -> Dict[int, int]:
        """Mapping out-degree -> vertex count (for diagnostics and tests)."""
        histogram: Dict[int, int] = {}
        for row in self._neighbors:
            histogram[len(row)] = histogram.get(len(row), 0) + 1
        return histogram

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Flatten adjacency to (offsets, targets) CSR-style arrays."""
        offsets = np.zeros(self.n_vertices + 1, dtype=np.int64)
        for i, row in enumerate(self._neighbors):
            offsets[i + 1] = offsets[i] + len(row)
        targets = np.zeros(int(offsets[-1]), dtype=np.int64)
        for i, row in enumerate(self._neighbors):
            targets[offsets[i] : offsets[i + 1]] = row
        return offsets, targets
