"""Navigation-graph index family.

Implements the paper's index-construction component: a flat exact index, the
classic navigation graphs (HNSW, NSG, Vamana/DiskANN), a Starling-style
disk-resident layout with simulated block I/O, and the general five-stage
construction pipeline that lets "any current navigation graph be decomposed
and smoothly integrated" (run on the :mod:`repro.pipeline` DAG engine).

Every index searches through a :class:`repro.distance.DistanceKernel`, so
the same graph code serves single-vector searches and MUST's weighted
multi-vector searches with incremental pruning.
"""

from repro.index.base import SearchResult, SearchStats, VectorIndex
from repro.index.diagnostics import GraphReport, analyze_graph
from repro.index.flat import FlatIndex
from repro.index.graph import NavigationGraph
from repro.index.ivf import IvfIndex, IvfParams
from repro.index.hnsw import HnswIndex, HnswParams
from repro.index.must_graph import MustGraphIndex, MustGraphParams
from repro.index.nsg import NsgIndex, NsgParams
from repro.index.pipeline_builder import (
    GraphPipelineSpec,
    PipelineGraphIndex,
    build_navigation_graph,
)
from repro.index.persistence import FrozenGraphIndex, load_index, save_index
from repro.index.quantization import QuantizationReport, ScalarQuantizer
from repro.index.registry import available_indexes, build_index, register_index
from repro.index.search import greedy_search
from repro.index.starling import BlockDevice, StarlingIndex, StarlingParams
from repro.index.tiered import (
    QuantizedCodes,
    TieredParams,
    TieredStore,
    iter_tiered_stores,
    tiered_snapshot,
)
from repro.index.vamana import VamanaIndex, VamanaParams

__all__ = [
    "BlockDevice",
    "FlatIndex",
    "FrozenGraphIndex",
    "GraphPipelineSpec",
    "GraphReport",
    "HnswIndex",
    "HnswParams",
    "IvfIndex",
    "IvfParams",
    "MustGraphIndex",
    "MustGraphParams",
    "NavigationGraph",
    "NsgIndex",
    "NsgParams",
    "PipelineGraphIndex",
    "QuantizationReport",
    "QuantizedCodes",
    "ScalarQuantizer",
    "SearchResult",
    "SearchStats",
    "StarlingIndex",
    "StarlingParams",
    "TieredParams",
    "TieredStore",
    "VamanaIndex",
    "VamanaParams",
    "VectorIndex",
    "analyze_graph",
    "available_indexes",
    "build_index",
    "build_navigation_graph",
    "greedy_search",
    "iter_tiered_stores",
    "load_index",
    "register_index",
    "save_index",
    "tiered_snapshot",
]
