"""Greedy best-first search over navigation graphs.

One search routine serves every graph index and every retrieval framework:
the traversal "starts at a random or fixed vertex, explores neighbouring
vertices closer to the query point, and terminates when no closer vertex is
discovered" — implemented as classic beam search with beam width ``budget``.

Two evaluation modes are supported:

* **batch** (default): each expanded vertex's unvisited neighbours are
  scored in one vectorised kernel call — fastest in numpy.
* **pruned**: neighbours are scored one by one through ``kernel.single``
  with the current beam bound, letting multi-vector kernels terminate a
  distance computation early (the paper's incremental scanning).  Identical
  results, fewer scalar operations; experiment E5 measures the saving.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.distance.kernel import DistanceKernel
from repro.errors import SearchError
from repro.index.base import SearchResult, SearchStats
from repro.index.graph import NavigationGraph
from repro.observability import trace_span

VisitHook = Callable[[int], None]
#: Batched variant: called with ``(beam_index, vertex)`` per vector access.
BatchVisitHook = Callable[[int, int], None]


def greedy_search(
    graph: NavigationGraph,
    vectors: np.ndarray,
    kernel: DistanceKernel,
    query: np.ndarray,
    k: int,
    budget: int = 64,
    entry_points: "Sequence[int] | None" = None,
    use_pruning: bool = False,
    visit_hook: "VisitHook | None" = None,
    admit: "Callable[[int], bool] | None" = None,
) -> SearchResult:
    """Approximate top-``k`` search over ``graph``.

    Args:
        graph: Navigation graph over the corpus.
        vectors: The ``(n, d)`` corpus matrix the graph was built on.
        kernel: Distance kernel (single- or multi-vector).
        query: Query vector.
        k: Result count.
        budget: Beam width (``ef``); clamped up to ``k``.
        entry_points: Traversal start vertices; defaults to the graph's.
        use_pruning: Score neighbours individually with a bound instead of
            in one batch, enabling incremental-scanning early exits.
        visit_hook: Called with each vertex id whose vector is accessed —
            the hook Starling uses to charge simulated block I/O.
        admit: Optional result filter: vertices failing the predicate are
            still *traversed* (the graph must stay navigable through them)
            but never enter the result beam — filtered vector search.

    Returns:
        A :class:`SearchResult` with ids sorted by ascending distance.
    """
    if k <= 0:
        raise SearchError(f"k must be positive, got {k}")
    budget = max(budget, k)
    starts = list(entry_points) if entry_points is not None else list(graph.entry_points)
    if not starts:
        raise SearchError("search needs at least one entry point")

    stats = SearchStats()
    query = np.asarray(query, dtype=np.float64)

    def touch(vertex: int) -> None:
        if visit_hook is not None:
            visit_hook(vertex)

    visited = set()
    candidates: List = []  # min-heap of (distance, vertex)
    beam: List = []  # max-heap of (-distance, vertex), size <= budget
    # With a filter, navigation still flows through non-matching vertices,
    # but results are collected separately from admitted vertices only.
    results: "List | None" = [] if admit is not None else None

    def collect(vertex: int, distance: float) -> None:
        if results is None:
            return
        if admit is not None and admit(vertex):
            heapq.heappush(results, (-distance, vertex))
            if len(results) > budget:
                heapq.heappop(results)

    with trace_span("beam-search", k=k, budget=budget, pruning=use_pruning) as span:
        unique_starts = []
        for start in starts:
            start = int(start)
            if start not in visited:
                visited.add(start)
                unique_starts.append(start)
                touch(start)
        start_distances = kernel.batch(query, vectors[unique_starts])
        stats.distance_evaluations += len(unique_starts)
        for vertex, distance in zip(unique_starts, start_distances):
            distance = float(distance)
            heapq.heappush(candidates, (distance, vertex))
            heapq.heappush(beam, (-distance, vertex))
            collect(vertex, distance)
        while len(beam) > budget:
            heapq.heappop(beam)

        while candidates:
            distance, vertex = heapq.heappop(candidates)
            worst = -beam[0][0]
            if distance > worst and len(beam) >= budget:
                break
            stats.hops += 1
            fresh = [n for n in graph.neighbors(vertex) if n not in visited]
            if not fresh:
                continue
            visited.update(fresh)
            for neighbor in fresh:
                touch(neighbor)

            worst = -beam[0][0]
            bound = worst if len(beam) >= budget else np.inf
            if use_pruning:
                for neighbor in fresh:
                    neighbor_distance = kernel.single(query, vectors[neighbor], bound=bound)
                    stats.distance_evaluations += 1
                    if neighbor_distance >= bound:
                        continue
                    collect(neighbor, float(neighbor_distance))
                    heapq.heappush(candidates, (neighbor_distance, neighbor))
                    heapq.heappush(beam, (-neighbor_distance, neighbor))
                    if len(beam) > budget:
                        heapq.heappop(beam)
                    bound = -beam[0][0] if len(beam) >= budget else np.inf
            else:
                distances = kernel.batch(query, vectors[fresh])
                stats.distance_evaluations += len(fresh)
                # Hot inner loop: np.float64 scalars go straight into the
                # heaps (they compare exactly like float), and a full beam
                # is updated with one heapreplace instead of push+pop.
                # A displacing neighbour is strictly better than the root
                # (equal distances take the `continue`), so the replaced
                # content is identical to the old push-then-pop form.
                for neighbor, neighbor_distance in zip(fresh, distances):
                    if results is not None:
                        collect(neighbor, neighbor_distance)
                    if len(beam) >= budget:
                        if neighbor_distance >= -beam[0][0]:
                            continue
                        heapq.heappush(candidates, (neighbor_distance, neighbor))
                        heapq.heapreplace(beam, (-neighbor_distance, neighbor))
                    else:
                        heapq.heappush(candidates, (neighbor_distance, neighbor))
                        heapq.heappush(beam, (-neighbor_distance, neighbor))
        span.set(
            hops=stats.hops,
            distance_evaluations=stats.distance_evaluations,
            visited=len(visited),
        )

    pool = beam if results is None else results
    ordered = sorted(((-d, v) for d, v in pool))
    top = ordered[:k]
    return SearchResult(
        ids=[int(v) for _, v in top],
        distances=[float(d) for d, _ in top],
        stats=stats,
    )


def _normalise_starts(
    graph: NavigationGraph,
    entry_points,
    n_queries: int,
) -> List[List[int]]:
    """Per-beam start lists from shared, per-beam, or default entry points."""
    if entry_points is None:
        shared = [int(v) for v in graph.entry_points]
        return [list(shared) for _ in range(n_queries)]
    eps = list(entry_points)
    if eps and isinstance(eps[0], (int, np.integer)):
        shared = [int(v) for v in eps]
        return [list(shared) for _ in range(n_queries)]
    per_beam = [[int(v) for v in ep] for ep in eps]
    if len(per_beam) != n_queries:
        raise SearchError(
            f"got {len(per_beam)} entry-point lists for {n_queries} queries"
        )
    return per_beam


def greedy_search_batch(
    graph: NavigationGraph,
    vectors: np.ndarray,
    kernel: DistanceKernel,
    queries: np.ndarray,
    k: int,
    budget: int = 64,
    entry_points=None,
    visit_hook: "BatchVisitHook | None" = None,
    admit=None,
) -> List[SearchResult]:
    """Run Q greedy searches in lockstep, batching distance evaluations.

    Each query gets its own beam, candidate heap, and a preallocated numpy
    bool ``visited`` row.  Per round, every still-active beam pops
    candidates until it either finds a vertex with unvisited neighbours or
    terminates, exactly as the serial loop would; then all frontier
    neighbours across the expanding beams are scored with **one** ragged
    ``kernel.batch_paired`` call — each neighbour against its own beam's
    query, so the pair count matches the serial loop exactly — and the
    result vector is split back per beam.  Because the kernel's batched
    entries are bit-identical to its serial evaluations,
    every beam makes exactly the decisions :func:`greedy_search` would —
    result ids and distances are identical, only the number of numpy
    dispatches changes.

    Args:
        entry_points: ``None`` (graph defaults), a flat sequence of vertex
            ids shared by all beams, or one sequence per query.
        visit_hook: Called with ``(beam_index, vertex)`` per vector access.
        admit: ``None``, a single predicate shared by every beam, or one
            optional predicate per query.

    Returns:
        One :class:`SearchResult` per query row, in input order.
    """
    if k <= 0:
        raise SearchError(f"k must be positive, got {k}")
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    n_queries = queries.shape[0]
    if n_queries == 0:
        return []
    budget = max(budget, k)
    per_beam_starts = _normalise_starts(graph, entry_points, n_queries)
    if any(not starts for starts in per_beam_starts):
        raise SearchError("search needs at least one entry point")
    if admit is None or callable(admit):
        admits: List = [admit] * n_queries
    else:
        admits = list(admit)
        if len(admits) != n_queries:
            raise SearchError(
                f"got {len(admits)} admit predicates for {n_queries} queries"
            )

    stats = [SearchStats() for _ in range(n_queries)]
    visited = np.zeros((n_queries, vectors.shape[0]), dtype=bool)
    candidates: List[List] = [[] for _ in range(n_queries)]
    beams: List[List] = [[] for _ in range(n_queries)]
    results: List = [([] if admits[b] is not None else None) for b in range(n_queries)]

    def touch(beam_index: int, vertex: int) -> None:
        if visit_hook is not None:
            visit_hook(beam_index, vertex)

    def collect(beam_index: int, vertex: int, distance) -> None:
        pool = results[beam_index]
        if pool is None:
            return
        if admits[beam_index](vertex):
            heapq.heappush(pool, (-distance, vertex))
            if len(pool) > budget:
                heapq.heappop(pool)

    with trace_span(
        "beam-search-batch", queries=n_queries, k=k, budget=budget
    ) as span:
        # Seed phase: dedupe each beam's starts, score all of them in one
        # ragged dispatch (each start against its own beam's query).
        seed_lists: List[List[int]] = []
        seed_flat: List[int] = []
        seed_owners: List[int] = []
        for b in range(n_queries):
            unique: List[int] = []
            for start in per_beam_starts[b]:
                if not visited[b, start]:
                    visited[b, start] = True
                    unique.append(start)
                    touch(b, start)
            seed_lists.append(unique)
            seed_flat.extend(unique)
            seed_owners.extend([b] * len(unique))
        seed_distances = kernel.batch_paired(
            queries, vectors[seed_flat], seed_owners
        )
        cursor = 0
        for b in range(n_queries):
            stats[b].distance_evaluations += len(seed_lists[b])
            for vertex in seed_lists[b]:
                distance = float(seed_distances[cursor])
                cursor += 1
                heapq.heappush(candidates[b], (distance, vertex))
                heapq.heappush(beams[b], (-distance, vertex))
                collect(b, vertex, distance)
            while len(beams[b]) > budget:
                heapq.heappop(beams[b])

        alive = list(range(n_queries))
        while alive:
            # Advance each live beam to its next expansion (or retire it).
            expanding: List[int] = []
            fresh_lists: dict = {}
            survivors: List[int] = []
            for b in alive:
                fresh = None
                row_visited = visited[b]
                while candidates[b]:
                    distance, vertex = heapq.heappop(candidates[b])
                    if distance > -beams[b][0][0] and len(beams[b]) >= budget:
                        break
                    stats[b].hops += 1
                    neighbors = [
                        n for n in graph.neighbors(vertex) if not row_visited[n]
                    ]
                    if not neighbors:
                        continue
                    row_visited[neighbors] = True
                    for neighbor in neighbors:
                        touch(b, neighbor)
                    fresh = neighbors
                    break
                if fresh is not None:
                    expanding.append(b)
                    fresh_lists[b] = fresh
                    survivors.append(b)
            alive = survivors
            if not expanding:
                break

            # One ragged kernel dispatch scores every frontier neighbour of
            # every expanding beam against exactly its own query — the same
            # pair count as the serial loop, not queries x union.
            flat: List[int] = []
            owners: List[int] = []
            for b in expanding:
                fresh = fresh_lists[b]
                flat.extend(fresh)
                owners.extend([b] * len(fresh))
            frontier = kernel.batch_paired(queries, vectors[flat], owners)
            cursor = 0
            for b in expanding:
                fresh = fresh_lists[b]
                row = frontier[cursor : cursor + len(fresh)]
                cursor += len(fresh)
                beam = beams[b]
                cands = candidates[b]
                stats[b].distance_evaluations += len(fresh)
                track = results[b] is not None
                for neighbor, neighbor_distance in zip(fresh, row):
                    if track:
                        collect(b, neighbor, neighbor_distance)
                    if len(beam) >= budget:
                        if neighbor_distance >= -beam[0][0]:
                            continue
                        heapq.heappush(cands, (neighbor_distance, neighbor))
                        heapq.heapreplace(beam, (-neighbor_distance, neighbor))
                    else:
                        heapq.heappush(cands, (neighbor_distance, neighbor))
                        heapq.heappush(beam, (-neighbor_distance, neighbor))

        span.set(
            hops=sum(s.hops for s in stats),
            distance_evaluations=sum(s.distance_evaluations for s in stats),
            visited=int(visited.sum()),
        )

    out: List[SearchResult] = []
    for b in range(n_queries):
        pool = beams[b] if results[b] is None else results[b]
        ordered = sorted(((-d, v) for d, v in pool))
        top = ordered[:k]
        out.append(
            SearchResult(
                ids=[int(v) for _, v in top],
                distances=[float(d) for d, _ in top],
                stats=stats[b],
            )
        )
    return out
