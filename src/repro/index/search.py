"""Greedy best-first search over navigation graphs.

One search routine serves every graph index and every retrieval framework:
the traversal "starts at a random or fixed vertex, explores neighbouring
vertices closer to the query point, and terminates when no closer vertex is
discovered" — implemented as classic beam search with beam width ``budget``.

Two evaluation modes are supported:

* **batch** (default): each expanded vertex's unvisited neighbours are
  scored in one vectorised kernel call — fastest in numpy.
* **pruned**: neighbours are scored one by one through ``kernel.single``
  with the current beam bound, letting multi-vector kernels terminate a
  distance computation early (the paper's incremental scanning).  Identical
  results, fewer scalar operations; experiment E5 measures the saving.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.distance.kernel import DistanceKernel
from repro.errors import SearchError
from repro.index.base import SearchResult, SearchStats
from repro.index.graph import NavigationGraph
from repro.observability import trace_span

VisitHook = Callable[[int], None]


def greedy_search(
    graph: NavigationGraph,
    vectors: np.ndarray,
    kernel: DistanceKernel,
    query: np.ndarray,
    k: int,
    budget: int = 64,
    entry_points: "Sequence[int] | None" = None,
    use_pruning: bool = False,
    visit_hook: "VisitHook | None" = None,
    admit: "Callable[[int], bool] | None" = None,
) -> SearchResult:
    """Approximate top-``k`` search over ``graph``.

    Args:
        graph: Navigation graph over the corpus.
        vectors: The ``(n, d)`` corpus matrix the graph was built on.
        kernel: Distance kernel (single- or multi-vector).
        query: Query vector.
        k: Result count.
        budget: Beam width (``ef``); clamped up to ``k``.
        entry_points: Traversal start vertices; defaults to the graph's.
        use_pruning: Score neighbours individually with a bound instead of
            in one batch, enabling incremental-scanning early exits.
        visit_hook: Called with each vertex id whose vector is accessed —
            the hook Starling uses to charge simulated block I/O.
        admit: Optional result filter: vertices failing the predicate are
            still *traversed* (the graph must stay navigable through them)
            but never enter the result beam — filtered vector search.

    Returns:
        A :class:`SearchResult` with ids sorted by ascending distance.
    """
    if k <= 0:
        raise SearchError(f"k must be positive, got {k}")
    budget = max(budget, k)
    starts = list(entry_points) if entry_points is not None else list(graph.entry_points)
    if not starts:
        raise SearchError("search needs at least one entry point")

    stats = SearchStats()
    query = np.asarray(query, dtype=np.float64)

    def touch(vertex: int) -> None:
        if visit_hook is not None:
            visit_hook(vertex)

    visited = set()
    candidates: List = []  # min-heap of (distance, vertex)
    beam: List = []  # max-heap of (-distance, vertex), size <= budget
    # With a filter, navigation still flows through non-matching vertices,
    # but results are collected separately from admitted vertices only.
    results: "List | None" = [] if admit is not None else None

    def collect(vertex: int, distance: float) -> None:
        if results is None:
            return
        if admit is not None and admit(vertex):
            heapq.heappush(results, (-distance, vertex))
            if len(results) > budget:
                heapq.heappop(results)

    with trace_span("beam-search", k=k, budget=budget, pruning=use_pruning) as span:
        unique_starts = []
        for start in starts:
            start = int(start)
            if start not in visited:
                visited.add(start)
                unique_starts.append(start)
                touch(start)
        start_distances = kernel.batch(query, vectors[unique_starts])
        stats.distance_evaluations += len(unique_starts)
        for vertex, distance in zip(unique_starts, start_distances):
            distance = float(distance)
            heapq.heappush(candidates, (distance, vertex))
            heapq.heappush(beam, (-distance, vertex))
            collect(vertex, distance)
        while len(beam) > budget:
            heapq.heappop(beam)

        while candidates:
            distance, vertex = heapq.heappop(candidates)
            worst = -beam[0][0]
            if distance > worst and len(beam) >= budget:
                break
            stats.hops += 1
            fresh = [n for n in graph.neighbors(vertex) if n not in visited]
            if not fresh:
                continue
            visited.update(fresh)
            for neighbor in fresh:
                touch(neighbor)

            worst = -beam[0][0]
            bound = worst if len(beam) >= budget else np.inf
            if use_pruning:
                for neighbor in fresh:
                    neighbor_distance = kernel.single(query, vectors[neighbor], bound=bound)
                    stats.distance_evaluations += 1
                    if neighbor_distance >= bound:
                        continue
                    collect(neighbor, float(neighbor_distance))
                    heapq.heappush(candidates, (neighbor_distance, neighbor))
                    heapq.heappush(beam, (-neighbor_distance, neighbor))
                    if len(beam) > budget:
                        heapq.heappop(beam)
                    bound = -beam[0][0] if len(beam) >= budget else np.inf
            else:
                distances = kernel.batch(query, vectors[fresh])
                stats.distance_evaluations += len(fresh)
                for neighbor, neighbor_distance in zip(fresh, distances):
                    neighbor_distance = float(neighbor_distance)
                    if results is not None:
                        collect(neighbor, neighbor_distance)
                    if len(beam) >= budget and neighbor_distance >= -beam[0][0]:
                        continue
                    heapq.heappush(candidates, (neighbor_distance, neighbor))
                    heapq.heappush(beam, (-neighbor_distance, neighbor))
                    if len(beam) > budget:
                        heapq.heappop(beam)
        span.set(
            hops=stats.hops,
            distance_evaluations=stats.distance_evaluations,
            visited=len(visited),
        )

    pool = beam if results is None else results
    ordered = sorted(((-d, v) for d, v in pool))
    top = ordered[:k]
    return SearchResult(
        ids=[int(v) for _, v in top],
        distances=[float(d) for d, _ in top],
        stats=stats,
    )
