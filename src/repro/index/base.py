"""The vector-index interface all index algorithms implement."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.distance.kernel import DistanceKernel
from repro.errors import IndexError_, IndexNotBuiltError


@dataclass
class SearchStats:
    """Work counters for one search.

    Attributes:
        hops: Graph vertices expanded (0 for flat scans).
        distance_evaluations: Candidate vectors whose distance was computed.
        block_reads: Simulated disk blocks fetched (Starling only).
        cache_hits: Block requests served from cache (Starling only).
    """

    hops: int = 0
    distance_evaluations: int = 0
    block_reads: int = 0
    cache_hits: int = 0

    def merge(self, other: "SearchStats") -> None:
        """Accumulate ``other`` into this instance."""
        self.hops += other.hops
        self.distance_evaluations += other.distance_evaluations
        self.block_reads += other.block_reads
        self.cache_hits += other.cache_hits


@dataclass
class SearchResult:
    """Outcome of a top-k search.

    Attributes:
        ids: Object ids, closest first.
        distances: Matching distances (same order).
        stats: Work counters for this search.
    """

    ids: List[int]
    distances: List[float]
    stats: SearchStats = field(default_factory=SearchStats)

    def __len__(self) -> int:
        return len(self.ids)

    def top(self) -> Optional[int]:
        """The closest id, or None for an empty result."""
        return self.ids[0] if self.ids else None


def _per_query_admits(admit, n_queries: int) -> List:
    """Normalise an admit argument (None / shared callable / per-query
    sequence) into a list with one entry per query."""
    if admit is None or callable(admit):
        return [admit] * n_queries
    admits = list(admit)
    if len(admits) != n_queries:
        raise IndexError_(
            f"got {len(admits)} admit predicates for {n_queries} queries"
        )
    return admits


class VectorIndex(abc.ABC):
    """Searchable structure over a fixed corpus of vectors.

    Lifecycle: construct with parameters, :meth:`build` once over the corpus
    matrix and a distance kernel, then :meth:`search` any number of times.
    """

    #: Identifier used by the registry and the status panel.
    name: str = "index"

    def __init__(self) -> None:
        self._vectors: Optional[np.ndarray] = None
        self._kernel: Optional[DistanceKernel] = None
        self.build_seconds: float = 0.0

    @property
    def is_built(self) -> bool:
        """True once :meth:`build` has completed."""
        return self._vectors is not None

    @property
    def size(self) -> int:
        """Number of indexed vectors (0 before build)."""
        return 0 if self._vectors is None else int(self._vectors.shape[0])

    @property
    def vectors(self) -> np.ndarray:
        """The indexed corpus matrix."""
        self._require_built()
        assert self._vectors is not None
        return self._vectors

    @property
    def kernel(self) -> DistanceKernel:
        """The distance kernel the index was built with."""
        self._require_built()
        assert self._kernel is not None
        return self._kernel

    def _require_built(self) -> None:
        if self._vectors is None:
            raise IndexNotBuiltError(
                f"index {self.name!r} has not been built; call build() first"
            )

    @abc.abstractmethod
    def build(self, vectors: np.ndarray, kernel: DistanceKernel) -> None:
        """Index ``vectors`` (an ``(n, d)`` matrix) under ``kernel``."""

    def add(self, vector: np.ndarray) -> int:
        """Insert one vector into the built index; returns its new id.

        Optional capability — index types that cannot grow raise
        :class:`repro.errors.IndexError_`.  Insertions keep the dense-id
        contract: the returned id always equals the previous :attr:`size`.
        """
        raise IndexError_(
            f"index {self.name!r} does not support incremental insertion"
        )

    @abc.abstractmethod
    def search(self, query: np.ndarray, k: int, budget: int = 64) -> SearchResult:
        """Return the approximate top-``k`` ids for ``query``.

        Args:
            query: Query vector of the kernel's dimensionality.
            k: Result count.
            budget: Search effort (beam width / ef); larger trades speed
                for recall.  Ignored by exact indexes.
        """

    def search_batch(
        self, queries: np.ndarray, k: int, budget: int = 64, **kwargs
    ) -> List[SearchResult]:
        """Top-``k`` for every row of ``queries``; results in input order.

        Contract: element ``i`` is identical (same ids, same distances) to
        ``search(queries[i], ...)`` — batching is a throughput optimisation,
        never a behaviour change.  The default simply loops; concrete
        indexes override it with vectorised or lockstep implementations.
        Keyword arguments are forwarded to :meth:`search`; an ``admit``
        kwarg may be a single predicate shared by all queries or a sequence
        with one (possibly ``None``) predicate per query.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        admits = _per_query_admits(kwargs.pop("admit", None), queries.shape[0])
        out: List[SearchResult] = []
        for i in range(queries.shape[0]):
            call_kwargs = dict(kwargs)
            if admits[i] is not None:
                call_kwargs["admit"] = admits[i]
            out.append(self.search(queries[i], k, budget, **call_kwargs))
        return out

    def describe(self) -> str:
        """One-line summary for the status panel."""
        state = f"{self.size} vectors" if self.is_built else "not built"
        return f"index {self.name!r}: {state}"
