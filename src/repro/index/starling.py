"""Starling-style disk-resident graph index with simulated block I/O.

Starling (Wang et al., SIGMOD 2024) stores graph segments on disk and cuts
I/O by *shuffling* vertices into blocks so that graph neighbours share
blocks — a search that hops along edges then finds many hops already paid
for.  Real NVMe hardware is unavailable here, so :class:`BlockDevice`
models the disk: vectors live in fixed-size blocks, reads are counted, and
a small LRU cache plays the role of the in-memory buffer pool.  The
experiment E4 compares block reads under the shuffled layout vs a naive
id-order layout — the paper's headline I/O-amplification effect.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.distance.kernel import DistanceKernel
from repro.errors import ConfigurationError, SearchError
from repro.index.base import SearchResult, VectorIndex
from repro.index.graph import NavigationGraph
from repro.index.search import greedy_search, greedy_search_batch
from repro.index.tiered import TieredParams, TieredStore
from repro.index.vamana import VamanaIndex, VamanaParams
from repro.observability import trace_span


class BlockDevice:
    """A counted, cached block store mapping vertices to disk blocks.

    Args:
        assignment: ``assignment[vertex]`` is the block holding that vertex.
        cache_blocks: LRU capacity in blocks (0 disables caching).
    """

    def __init__(self, assignment: List[int], cache_blocks: int = 8) -> None:
        if cache_blocks < 0:
            raise ConfigurationError(f"cache_blocks must be >= 0, got {cache_blocks}")
        self._assignment = list(assignment)
        self.cache_blocks = cache_blocks
        self._cache: "OrderedDict[int, None]" = OrderedDict()
        self._lock = threading.Lock()
        self.block_reads = 0
        self.cache_hits = 0

    @property
    def n_blocks(self) -> int:
        """Number of distinct blocks in the layout."""
        return max(self._assignment) + 1 if self._assignment else 0

    def block_of(self, vertex: int) -> int:
        """The block holding ``vertex``."""
        return self._assignment[vertex]

    def access(self, vertex: int) -> bool:
        """Record an access to ``vertex``'s block (read or cache hit).

        Returns ``True`` for a block read, ``False`` for a cache hit, so a
        caller can attribute exactly its own charges even while other
        searches share the device — reading the global counters before and
        after is wrong under concurrency.  The cache update itself runs
        under a lock for the same reason.
        """
        block = self._assignment[vertex]
        with self._lock:
            if block in self._cache:
                self.cache_hits += 1
                self._cache.move_to_end(block)
                return False
            self.block_reads += 1
            if self.cache_blocks:
                self._cache[block] = None
                if len(self._cache) > self.cache_blocks:
                    self._cache.popitem(last=False)
            return True

    def extend(self, block: int) -> None:
        """Assign a newly inserted vertex to ``block``."""
        if block < 0:
            raise ConfigurationError(f"block must be >= 0, got {block}")
        self._assignment.append(block)

    def reset(self) -> None:
        """Clear counters and cache (between measured searches)."""
        with self._lock:
            self._cache.clear()
            self.block_reads = 0
            self.cache_hits = 0


@dataclass(frozen=True)
class StarlingParams:
    """Starling layout and inner-graph parameters.

    Attributes:
        block_size: Vertices per disk block.
        cache_blocks: Buffer-pool capacity in blocks.
        shuffled: Use the neighbour-packing layout (False = naive id order,
            the ablation baseline).
        inner: Parameters for the underlying Vamana graph.
        tiered: Beyond-RAM serving mode: quantized codes resident for
            traversal, full precision memory-mapped and touched only by
            the rerank pass.  ``None`` (the default) keeps the classic
            all-in-RAM Starling behaviour, bit-identical to before the
            tiered store existed.
    """

    block_size: int = 16
    cache_blocks: int = 8
    shuffled: bool = True
    inner: VamanaParams = VamanaParams()
    tiered: Optional[TieredParams] = None

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")


class StarlingIndex(VectorIndex):
    """Disk-resident navigation graph with a block-aware layout."""

    name = "starling"

    def __init__(self, params: StarlingParams = StarlingParams()) -> None:
        super().__init__()
        self.params = params
        self._inner = VamanaIndex(params.inner)
        self.device: Optional[BlockDevice] = None
        self.tiered: Optional[TieredStore] = None
        self._insert_fill = 0

    @property
    def graph(self) -> NavigationGraph:
        """The underlying navigation graph."""
        if self._inner.graph is None:
            raise SearchError("starling index has not been built")
        return self._inner.graph

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    def _naive_layout(self, n: int) -> List[int]:
        return [vertex // self.params.block_size for vertex in range(n)]

    def _shuffled_layout(self, graph: NavigationGraph) -> List[int]:
        """Greedy neighbour packing: BFS from the entry point fills each
        block with a vertex and as many of its graph neighbours as fit,
        so one block read prefetches the vertices a traversal needs next.
        """
        n = graph.n_vertices
        assignment = [-1] * n
        block = 0
        filled = 0
        ordering: List[int] = []
        seen = set()
        stack = list(graph.entry_points)
        while stack or len(seen) < n:
            if not stack:
                stack.append(next(v for v in range(n) if v not in seen))
            vertex = stack.pop()
            if vertex in seen:
                continue
            seen.add(vertex)
            ordering.append(vertex)
            for neighbor in reversed(graph.neighbors(vertex)):
                if neighbor not in seen:
                    stack.append(neighbor)
        for vertex in ordering:
            assignment[vertex] = block
            filled += 1
            if filled == self.params.block_size:
                block += 1
                filled = 0
        return assignment

    # ------------------------------------------------------------------
    # VectorIndex interface
    # ------------------------------------------------------------------
    def build(self, vectors: np.ndarray, kernel: DistanceKernel) -> None:
        start = time.perf_counter()
        self._insert_fill = 0
        self.tiered = None
        self._inner.build(vectors, kernel)
        self._vectors = self._inner.vectors
        self._kernel = kernel
        graph = self._inner.graph
        assert graph is not None
        if self.params.tiered is not None:
            # Tiered mode: the spill file's row-major block layout becomes
            # THE device — traversal runs over resident codes and costs no
            # block I/O at all; only rerank reads charge it.
            self.tiered = TieredStore(self.params.tiered)
            self.tiered.build(self._inner.vectors)
            self._inner._vectors = self.tiered.vectors
            self._vectors = self.tiered.vectors
            self.device = self.tiered.device
        else:
            if self.params.shuffled:
                assignment = self._shuffled_layout(graph)
            else:
                assignment = self._naive_layout(graph.n_vertices)
            self.device = BlockDevice(
                assignment, cache_blocks=self.params.cache_blocks
            )
        self.build_seconds = time.perf_counter() - start

    def add(self, vector: np.ndarray) -> int:
        """Insert into the inner graph; new vertices fill fresh blocks."""
        self._require_built()
        assert self.device is not None
        vertex = self._inner.add(vector)
        if self.tiered is not None:
            row = self.tiered.add(vector)
            assert row == vertex
            # The spill file may have been remapped while growing, so both
            # vector views must be re-pointed at the fresh mapping.
            self._inner._vectors = self.tiered.vectors
            self._vectors = self.tiered.vectors
            self._insert_fill += 1
            return vertex
        self._vectors = self._inner.vectors
        block = self.device.n_blocks
        if self._insert_fill % self.params.block_size != 0:
            block -= 1
        self.device.extend(block)
        self._insert_fill += 1
        return vertex

    def search(
        self, query: np.ndarray, k: int, budget: int = 64, admit=None
    ) -> SearchResult:
        self._require_built()
        assert self.device is not None
        if self.tiered is not None:
            return self._search_tiered(query, k, budget, admit)
        device = self.device
        reads = 0
        hits = 0

        # Charge through the access return value rather than reading the
        # device counters before/after: the device is shared, so deltas
        # would also swallow whatever concurrent searches charged.
        def charge(vertex: int) -> None:
            nonlocal reads, hits
            if device.access(vertex):
                reads += 1
            else:
                hits += 1

        with trace_span(
            "block-io",
            blocks=device.n_blocks,
            layout="shuffled" if self.params.shuffled else "naive",
        ) as span:
            result = greedy_search(
                self.graph,
                self.vectors,
                self.kernel,
                query,
                k=k,
                budget=budget,
                visit_hook=charge,
                admit=admit,
            )
            result.stats.block_reads = reads
            result.stats.cache_hits = hits
            span.set(
                block_reads=result.stats.block_reads,
                cache_hits=result.stats.cache_hits,
            )
        return result

    def _search_tiered(self, query, k: int, budget: int, admit) -> SearchResult:
        """Traverse resident codes, then rerank top-k' at full precision."""
        assert self.tiered is not None
        fetch = max(k * self.tiered.params.rerank_factor, k)
        with trace_span(
            "block-io",
            blocks=self.device.n_blocks,
            layout="tiered",
            bits=self.tiered.params.bits,
            rerank=fetch,
        ) as span:
            result = greedy_search(
                self.graph,
                self.tiered.decoded,
                self.kernel,
                query,
                k=fetch,
                budget=budget,
                admit=admit,
            )
            ids, distances, reads, hits = self.tiered.rerank(
                query, self.kernel, result.ids, k
            )
            result.ids = ids
            result.distances = distances
            result.stats.block_reads = reads
            result.stats.cache_hits = hits
            span.set(block_reads=reads, cache_hits=hits)
        return result

    def search_batch(self, queries, k: int, budget: int = 64, admit=None):
        """Lockstep batched search over the disk-resident graph.

        Ids and distances match :meth:`search` per query.  Block accesses
        are charged to the shared device in lockstep (interleaved) order,
        so per-query ``block_reads``/``cache_hits`` describe this batch's
        cache timeline rather than replaying each query against a cold
        interleaving — totals are exact, the split is attributed per beam
        via the visit hook.
        """
        self._require_built()
        assert self.device is not None
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_queries = queries.shape[0]
        if n_queries == 0:
            return []
        if self.tiered is not None:
            return self._search_batch_tiered(queries, k, budget, admit)
        reads = [0] * n_queries
        hits = [0] * n_queries
        device = self.device

        def charge(beam: int, vertex: int) -> None:
            if device.access(vertex):
                reads[beam] += 1
            else:
                hits[beam] += 1

        with trace_span(
            "block-io",
            blocks=device.n_blocks,
            layout="shuffled" if self.params.shuffled else "naive",
            queries=n_queries,
        ) as span:
            results = greedy_search_batch(
                self.graph,
                self.vectors,
                self.kernel,
                queries,
                k=k,
                budget=budget,
                visit_hook=charge,
                admit=admit,
            )
            for i, result in enumerate(results):
                result.stats.block_reads = reads[i]
                result.stats.cache_hits = hits[i]
            span.set(block_reads=sum(reads), cache_hits=sum(hits))
        return results

    def _search_batch_tiered(self, queries, k: int, budget: int, admit):
        """Lockstep traversal over codes, then per-query exact rerank.

        Rerank reads charge the shared mmap device query by query, so the
        device totals are exact for the batch and each query's counters
        are exactly its own rerank charges.
        """
        assert self.tiered is not None
        fetch = max(k * self.tiered.params.rerank_factor, k)
        with trace_span(
            "block-io",
            blocks=self.device.n_blocks,
            layout="tiered",
            bits=self.tiered.params.bits,
            rerank=fetch,
            queries=queries.shape[0],
        ) as span:
            results = greedy_search_batch(
                self.graph,
                self.tiered.decoded,
                self.kernel,
                queries,
                k=fetch,
                budget=budget,
                admit=admit,
            )
            total_reads = 0
            total_hits = 0
            for i, result in enumerate(results):
                ids, distances, reads, hits = self.tiered.rerank(
                    queries[i], self.kernel, result.ids, k
                )
                result.ids = ids
                result.distances = distances
                result.stats.block_reads = reads
                result.stats.cache_hits = hits
                total_reads += reads
                total_hits += hits
            span.set(block_reads=total_reads, cache_hits=total_hits)
        return results

    def io_amplification(self, result: SearchResult) -> float:
        """Blocks read per distance evaluation for one search."""
        if not result.stats.distance_evaluations:
            return 0.0
        return result.stats.block_reads / result.stats.distance_evaluations

    def describe(self) -> str:
        base = super().describe()
        if self.tiered is not None:
            snap = self.tiered.snapshot()
            base += (
                f", tiered sq{snap['bits']} "
                f"({snap['resident_bytes']} B resident / "
                f"{snap['full_bytes']} B spilled, rerank x{snap['rerank_factor']})"
            )
        elif self.device is not None:
            layout = "shuffled" if self.params.shuffled else "naive"
            base += (
                f", {self.device.n_blocks} blocks of {self.params.block_size} "
                f"({layout} layout, cache {self.params.cache_blocks})"
            )
        return base
