"""Scalar quantization (SQ8/SQ4) for memory- and disk-bound serving.

Disk-resident search (Starling) and large corpora push vector storage cost
to the foreground; scalar quantization stores each dimension as a small
integer code against per-dimension min/max ranges.  The quantizer here is
symmetric-reconstruction: search runs over the *decoded* vectors, so any
index type works unchanged and the accuracy cost of compression is directly
measurable (experiment E9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError


@dataclass(frozen=True)
class QuantizationReport:
    """Compression accounting for one corpus.

    Attributes:
        original_bytes: float64 storage of the raw matrix.
        quantized_bytes: code storage plus the per-dimension ranges.
        compression_ratio: original / quantized.
        mean_reconstruction_error: Mean L2 distance between original and
            decoded vectors.
    """

    original_bytes: int
    quantized_bytes: int
    compression_ratio: float
    mean_reconstruction_error: float


class ScalarQuantizer:
    """Per-dimension linear quantization to ``bits``-wide codes.

    Args:
        bits: Code width; 8 (one byte/dim) or 4 (two dims/byte when packed;
            stored unpacked here, accounted as packed).
    """

    def __init__(self, bits: int = 8) -> None:
        if bits not in (4, 8):
            raise ConfigurationError(f"bits must be 4 or 8, got {bits}")
        self.bits = bits
        self._low: "np.ndarray | None" = None
        self._span: "np.ndarray | None" = None

    @property
    def levels(self) -> int:
        """Number of representable code values."""
        return (1 << self.bits) - 1

    @property
    def is_fitted(self) -> bool:
        """True after :meth:`fit`."""
        return self._low is not None

    def fit(self, matrix: np.ndarray) -> "ScalarQuantizer":
        """Learn per-dimension ranges from ``matrix``; returns self."""
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        if matrix.shape[0] == 0:
            raise ConfigurationError("cannot fit a quantizer on an empty matrix")
        self._low = matrix.min(axis=0)
        span = matrix.max(axis=0) - self._low
        # Constant dimensions quantize to code 0; avoid division by zero.
        self._span = np.where(span > 0, span, 1.0)
        return self

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise ConfigurationError("quantizer has not been fitted; call fit() first")

    def encode(self, matrix: np.ndarray) -> np.ndarray:
        """Quantize rows of ``matrix`` to uint8 codes (clipped to range)."""
        self._require_fitted()
        assert self._low is not None and self._span is not None
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        if matrix.shape[1] != self._low.shape[0]:
            raise DimensionMismatchError(
                f"matrix dim {matrix.shape[1]} != fitted dim {self._low.shape[0]}"
            )
        normalised = (matrix - self._low) / self._span
        codes = np.round(np.clip(normalised, 0.0, 1.0) * self.levels)
        return codes.astype(np.uint8)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct float vectors from codes."""
        self._require_fitted()
        assert self._low is not None and self._span is not None
        codes = np.atleast_2d(np.asarray(codes, dtype=np.float64))
        return self._low + (codes / self.levels) * self._span

    def report(self, matrix: np.ndarray) -> QuantizationReport:
        """Compression/accuracy accounting for ``matrix``."""
        matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
        decoded = self.decode(self.encode(matrix))
        error = float(np.linalg.norm(matrix - decoded, axis=1).mean())
        original = matrix.size * 8
        code_bytes = matrix.size * self.bits // 8
        range_bytes = 2 * matrix.shape[1] * 8
        quantized = code_bytes + range_bytes
        return QuantizationReport(
            original_bytes=original,
            quantized_bytes=quantized,
            compression_ratio=original / quantized,
            mean_reconstruction_error=error,
        )
