"""Navigation-graph diagnostics.

Quality of a navigation graph is more than recall: the status panel (and
any operator) wants degree balance, reachability, and *navigability* — how
often pure greedy descent (beam width 1) actually lands on the true nearest
neighbour.  These checks are also what the index tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.distance.kernel import DistanceKernel
from repro.index.graph import NavigationGraph
from repro.index.search import greedy_search
from repro.utils import derive_rng


@dataclass(frozen=True)
class GraphReport:
    """Structural + navigability summary of one navigation graph.

    Attributes:
        n_vertices: Vertex count.
        edge_count: Directed edge count.
        average_degree: Mean out-degree.
        max_degree_used: Largest out-degree present.
        min_degree_used: Smallest out-degree present.
        reachable_fraction: Share of vertices reachable from entry points.
        greedy_hit_rate: Fraction of sampled self-queries where beam-1
            greedy descent finds the queried vertex itself.
        degree_histogram: Out-degree -> vertex count.
    """

    n_vertices: int
    edge_count: int
    average_degree: float
    max_degree_used: int
    min_degree_used: int
    reachable_fraction: float
    greedy_hit_rate: float
    degree_histogram: Dict[int, int]

    def render(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"graph: {self.n_vertices} vertices, {self.edge_count} edges "
            f"(avg degree {self.average_degree:.1f}, "
            f"range {self.min_degree_used}-{self.max_degree_used})",
            f"reachable from entries: {self.reachable_fraction:.1%}",
            f"greedy self-query hit rate: {self.greedy_hit_rate:.1%}",
        ]
        return "\n".join(lines)


def analyze_graph(
    graph: NavigationGraph,
    vectors: np.ndarray,
    kernel: DistanceKernel,
    sample: int = 50,
    seed: int = 0,
) -> GraphReport:
    """Compute a :class:`GraphReport` for ``graph`` over its corpus.

    Args:
        graph: The navigation graph.
        vectors: The corpus it indexes.
        kernel: The distance kernel it was built with.
        sample: Number of self-queries for the navigability probe.
        seed: Sampling seed.
    """
    histogram = graph.degree_histogram()
    degrees = sorted(histogram)
    reachable = graph.reachable_from(graph.entry_points)

    rng = derive_rng(seed, "graph-diagnostics")
    n = graph.n_vertices
    probes = rng.choice(n, size=min(sample, n), replace=False)
    hits = 0
    for vertex in probes:
        result = greedy_search(
            graph, vectors, kernel, vectors[int(vertex)], k=1, budget=1
        )
        if result.ids and result.ids[0] == int(vertex):
            hits += 1

    return GraphReport(
        n_vertices=n,
        edge_count=graph.edge_count,
        average_degree=graph.average_degree,
        max_degree_used=degrees[-1] if degrees else 0,
        min_degree_used=degrees[0] if degrees else 0,
        reachable_fraction=len(reachable) / n,
        greedy_hit_rate=hits / len(probes) if len(probes) else 0.0,
        degree_histogram=histogram,
    )
