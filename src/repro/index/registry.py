"""Pluggable index registry — the configuration panel's "index" options.

Factories take a parameter dictionary so user configurations map directly
onto index construction; custom graphs register the same way ("or initiate
custom graphs via the backend API").
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Tuple

from repro.errors import ConfigurationError
from repro.index.base import VectorIndex
from repro.index.flat import FlatIndex
from repro.index.hnsw import HnswIndex, HnswParams
from repro.index.ivf import IvfIndex, IvfParams
from repro.index.must_graph import MustGraphIndex, MustGraphParams
from repro.index.nsg import NsgIndex, NsgParams
from repro.index.starling import StarlingIndex, StarlingParams
from repro.index.tiered import TieredParams
from repro.index.vamana import VamanaIndex, VamanaParams

IndexFactory = Callable[[Mapping[str, Any]], VectorIndex]

_REGISTRY: Dict[str, IndexFactory] = {}


def register_index(name: str, factory: IndexFactory) -> None:
    """Register ``factory`` under ``name`` (overwrites an existing entry)."""
    if not name:
        raise ConfigurationError("index name must be non-empty")
    _REGISTRY[name] = factory


def available_indexes() -> Tuple[str, ...]:
    """Names of all registered index algorithms."""
    return tuple(sorted(_REGISTRY))


def build_index(name: str, params: "Mapping[str, Any] | None" = None) -> VectorIndex:
    """Instantiate (but not build) the index algorithm called ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        valid = ", ".join(available_indexes())
        raise ConfigurationError(f"unknown index {name!r}; available: {valid}") from None
    return factory(dict(params or {}))


def _params_from(mapping: Mapping[str, Any], cls):
    try:
        return cls(**mapping)
    except TypeError as exc:
        raise ConfigurationError(f"bad parameters for {cls.__name__}: {exc}") from None


register_index("flat", lambda p: FlatIndex())
register_index("hnsw", lambda p: HnswIndex(_params_from(p, HnswParams)))
register_index("ivf", lambda p: IvfIndex(_params_from(p, IvfParams)))
register_index("nsg", lambda p: NsgIndex(_params_from(p, NsgParams)))
register_index("vamana", lambda p: VamanaIndex(_params_from(p, VamanaParams)))
register_index("diskann", lambda p: VamanaIndex(_params_from(p, VamanaParams)))
def _starling_params(mapping: Mapping[str, Any]) -> StarlingParams:
    """Starling parameters with the ``inner`` / ``tiered`` sub-configs
    inflated from plain mappings (how they arrive from
    ``MQAConfig.index_params`` / JSON)."""
    params = dict(mapping)
    inner = params.get("inner")
    if isinstance(inner, Mapping):
        params["inner"] = _params_from(inner, VamanaParams)
    tiered = params.get("tiered")
    if isinstance(tiered, Mapping):
        params["tiered"] = _params_from(tiered, TieredParams)
    return _params_from(params, StarlingParams)


register_index("starling", lambda p: StarlingIndex(_starling_params(p)))
register_index("nav-must", lambda p: MustGraphIndex(_params_from(p, MustGraphParams)))
