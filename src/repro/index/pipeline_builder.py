"""Assembling the five construction stages into a DAG and running it.

This is the integration point with the CGraph stand-in: the five stages of
:mod:`repro.index.stages` become DAG nodes with explicit dependencies, and
:func:`build_navigation_graph` executes them through
:class:`repro.pipeline.DagPipeline`, returning both the finished graph and
the per-stage reports the status panel displays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.distance.kernel import DistanceKernel
from repro.errors import GraphConstructionError, SearchError
from repro.index.base import SearchResult, VectorIndex
from repro.index.graph import NavigationGraph
from repro.index.search import greedy_search, greedy_search_batch
from repro.index.stages import StageFn
from repro.observability import trace_span
from repro.pipeline import DagPipeline, NodeReport


@dataclass
class GraphPipelineSpec:
    """A navigation-graph algorithm expressed as five pluggable stages.

    Attributes:
        name: Algorithm identifier.
        init: Stage producing the initial :class:`NavigationGraph`.
        candidates: Stage producing per-vertex candidate lists.
        selection: Stage wiring selected edges into the graph.
        connectivity: Stage repairing reachability.
        entry: Stage choosing entry points.
    """

    name: str
    init: StageFn
    candidates: StageFn
    selection: StageFn
    connectivity: StageFn
    entry: StageFn

    def to_pipeline(self) -> DagPipeline:
        """Materialise the spec as a DAG with stage dependencies."""
        pipeline = DagPipeline(name=f"graph-build:{self.name}")

        def run_init(context: Dict[str, Any]) -> NavigationGraph:
            with trace_span("build-init", algorithm=self.name) as span:
                graph = self.init(context)
                span.set(vertices=graph.n_vertices)
            context["graph"] = graph
            return graph

        def run_candidates(context: Dict[str, Any]) -> List[List[int]]:
            with trace_span("build-candidates", algorithm=self.name) as span:
                candidate_lists = self.candidates(context)
                span.set(
                    vertices=len(candidate_lists),
                    candidate_edges=sum(len(lst) for lst in candidate_lists),
                )
            context["candidates"] = candidate_lists
            return candidate_lists

        def run_selection(context: Dict[str, Any]) -> NavigationGraph:
            with trace_span("build-selection", algorithm=self.name) as span:
                graph = self.selection(context)
                span.set(
                    vertices=graph.n_vertices,
                    avg_degree=round(graph.average_degree, 2),
                )
            context["graph"] = graph
            return graph

        def run_connectivity(context: Dict[str, Any]) -> NavigationGraph:
            with trace_span("build-connectivity", algorithm=self.name) as span:
                graph = self.connectivity(context)
                span.set(vertices=graph.n_vertices)
            context["graph"] = graph
            return graph

        def run_entry(context: Dict[str, Any]) -> List[int]:
            with trace_span("build-entry", algorithm=self.name) as span:
                entry_points = self.entry(context)
                span.set(entry_points=len(entry_points))
            return entry_points

        pipeline.add_node("init", run_init)
        pipeline.add_node("candidates", run_candidates, depends_on=["init"])
        pipeline.add_node("selection", run_selection, depends_on=["candidates"])
        pipeline.add_node("connectivity", run_connectivity, depends_on=["selection"])
        pipeline.add_node("entry", run_entry, depends_on=["connectivity"])
        return pipeline


def build_navigation_graph(
    spec: GraphPipelineSpec,
    vectors: np.ndarray,
    kernel: DistanceKernel,
) -> Tuple[NavigationGraph, List[NodeReport]]:
    """Run ``spec`` over ``vectors`` and return (graph, stage reports)."""
    vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
    if vectors.shape[0] == 0:
        raise GraphConstructionError("cannot build a graph over an empty corpus")
    if vectors.shape[1] != kernel.dim:
        raise GraphConstructionError(
            f"corpus dim {vectors.shape[1]} != kernel dim {kernel.dim}"
        )
    pipeline = spec.to_pipeline()
    context, reports = pipeline.run({"vectors": vectors, "kernel": kernel})
    graph = context["graph"]
    if not isinstance(graph, NavigationGraph):
        raise GraphConstructionError(
            f"pipeline {spec.name!r} did not produce a NavigationGraph"
        )
    return graph, reports


class PipelineGraphIndex(VectorIndex):
    """A vector index whose structure comes from a five-stage pipeline.

    NSG, Vamana, and the unified multi-modal navigation graph are all
    instances of this class with different specs.
    """

    def __init__(self, spec: GraphPipelineSpec) -> None:
        super().__init__()
        self.spec = spec
        self.name = spec.name
        self.graph: "NavigationGraph | None" = None
        self.stage_reports: List[NodeReport] = []

    def build(self, vectors: np.ndarray, kernel: DistanceKernel) -> None:
        start = time.perf_counter()
        self.graph, self.stage_reports = build_navigation_graph(self.spec, vectors, kernel)
        self._vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        self._kernel = kernel
        self.build_seconds = time.perf_counter() - start

    def add(
        self,
        vector: np.ndarray,
        candidate_pool: int = 32,
        alpha: float = 1.2,
        budget: int = 48,
    ) -> int:
        """Insert one vector via search-and-prune (Vamana-style).

        The new vertex's neighbours come from a beam search over the
        existing graph followed by robust pruning; reverse edges are added
        with re-pruning when a neighbour overflows.  Works for any
        pipeline-built graph, so NSG/Vamana/nav-must indexes all grow.
        """
        from repro.index.stages import robust_prune

        self._require_built()
        if self.graph is None:
            raise SearchError(f"index {self.name!r} has no graph")
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vector.shape[0] != self.kernel.dim:
            raise GraphConstructionError(
                f"vector dim {vector.shape[0]} != kernel dim {self.kernel.dim}"
            )
        outcome = greedy_search(
            self.graph,
            self.vectors,
            self.kernel,
            vector,
            k=min(candidate_pool, self.size),
            budget=max(budget, candidate_pool),
        )
        self._vectors = np.vstack([self._vectors, vector[None, :]])
        vertex = self.graph.add_vertex()
        neighbors = robust_prune(
            vector, outcome.ids, self._vectors, self.kernel,
            self.graph.max_degree, alpha,
        )
        self.graph.set_neighbors(vertex, neighbors)
        for neighbor in neighbors:
            row = self.graph.neighbors(neighbor)
            if vertex in row:
                continue
            if len(row) < self.graph.max_degree:
                row.append(vertex)
            else:
                pruned = robust_prune(
                    self._vectors[neighbor],
                    row + [vertex],
                    self._vectors,
                    self.kernel,
                    self.graph.max_degree,
                    alpha,
                )
                self.graph.set_neighbors(neighbor, pruned)
        return vertex

    def search(
        self,
        query: np.ndarray,
        k: int,
        budget: int = 64,
        use_pruning: bool = False,
        kernel: "DistanceKernel | None" = None,
        admit=None,
    ) -> SearchResult:
        """Search the graph; ``kernel`` overrides the built kernel for this
        query only (per-query modality re-weighting — the graph is pure
        navigation structure, distances are always computed fresh), and
        ``admit`` filters the result set without blocking traversal."""
        self._require_built()
        if self.graph is None:
            raise SearchError(f"index {self.name!r} has no graph")
        active = kernel if kernel is not None else self.kernel
        if active.dim != self.kernel.dim:
            raise SearchError(
                f"override kernel dim {active.dim} != index dim {self.kernel.dim}"
            )
        return greedy_search(
            self.graph,
            self.vectors,
            active,
            query,
            k=k,
            budget=budget,
            use_pruning=use_pruning,
            admit=admit,
        )

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        budget: int = 64,
        use_pruning: bool = False,
        kernel: "DistanceKernel | None" = None,
        admit=None,
    ) -> List[SearchResult]:
        """Lockstep batched :meth:`search` with the same keyword surface.

        ``use_pruning`` scores neighbours one at a time with a bound — a
        per-query scalar loop with nothing to batch — so that mode falls
        back to serial searches (identical results either way).
        """
        self._require_built()
        if self.graph is None:
            raise SearchError(f"index {self.name!r} has no graph")
        active = kernel if kernel is not None else self.kernel
        if active.dim != self.kernel.dim:
            raise SearchError(
                f"override kernel dim {active.dim} != index dim {self.kernel.dim}"
            )
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if use_pruning:
            from repro.index.base import _per_query_admits

            admits = _per_query_admits(admit, queries.shape[0])
            return [
                greedy_search(
                    self.graph, self.vectors, active, queries[i],
                    k=k, budget=budget, use_pruning=True, admit=admits[i],
                )
                for i in range(queries.shape[0])
            ]
        return greedy_search_batch(
            self.graph,
            self.vectors,
            active,
            queries,
            k=k,
            budget=budget,
            admit=admit,
        )

    def describe(self) -> str:
        base = super().describe()
        if self.graph is not None:
            base += (
                f", avg degree {self.graph.average_degree:.1f}, "
                f"{len(self.graph.entry_points)} entry point(s)"
            )
        return base
