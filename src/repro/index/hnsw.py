"""Hierarchical Navigable Small World graphs (Malkov & Yashunin).

A faithful, pure-Python HNSW: exponentially-distributed layer assignment,
greedy descent through the upper layers, beam search with the
``select_neighbors_heuristic`` diversification rule at the insertion layer,
and bidirectional edge insertion with degree-bounded re-pruning.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.distance.kernel import DistanceKernel
from repro.errors import GraphConstructionError, SearchError
from repro.index.base import SearchResult, VectorIndex
from repro.index.graph import NavigationGraph
from repro.index.search import greedy_search, greedy_search_batch
from repro.observability import trace_span
from repro.utils import derive_rng


@dataclass(frozen=True)
class HnswParams:
    """HNSW construction parameters.

    Attributes:
        m: Target out-degree on upper layers (base layer allows ``2 * m``).
        ef_construction: Beam width used while inserting.
        seed: Layer-assignment seed.
    """

    m: int = 12
    ef_construction: int = 80
    seed: int = 0

    def __post_init__(self) -> None:
        if self.m < 2:
            raise ValueError(f"m must be >= 2, got {self.m}")
        if self.ef_construction < self.m:
            raise ValueError(
                f"ef_construction ({self.ef_construction}) must be >= m ({self.m})"
            )


class HnswIndex(VectorIndex):
    """Multi-layer navigation graph with heuristic neighbour selection."""

    name = "hnsw"

    def __init__(self, params: HnswParams = HnswParams()) -> None:
        super().__init__()
        self.params = params
        self._layers: List[Dict[int, List[int]]] = []
        self._node_level: List[int] = []
        self._entry: int = 0
        self._max_level: int = -1
        self._base_graph: Optional[NavigationGraph] = None
        self._buffer: Optional[np.ndarray] = None
        self._count: int = 0
        self._buffer_grows: int = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self, vectors: np.ndarray, kernel: DistanceKernel) -> None:
        start = time.perf_counter()
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if vectors.shape[0] == 0:
            raise GraphConstructionError("cannot build HNSW over an empty corpus")
        if vectors.shape[1] != kernel.dim:
            raise GraphConstructionError(
                f"corpus dim {vectors.shape[1]} != kernel dim {kernel.dim}"
            )
        self._vectors = vectors
        self._kernel = kernel
        # The growth buffer starts as the corpus itself; the first add()
        # reallocates with doubled capacity (amortized O(1) per insert).
        self._buffer = vectors
        self._count = int(vectors.shape[0])
        self._buffer_grows = 0
        self._layers = []
        self._node_level = []
        self._entry = 0
        self._max_level = -1

        rng = derive_rng(self.params.seed, "hnsw-levels")
        level_scale = 1.0 / np.log(self.params.m)
        with trace_span("hnsw-insert", nodes=int(vectors.shape[0])) as span:
            for node in range(vectors.shape[0]):
                level = int(-np.log(max(rng.random(), 1e-12)) * level_scale)
                self._insert(node, level)
            span.set(layers=self._max_level + 1)
        self._base_graph = None
        self.build_seconds = time.perf_counter() - start

    def _neighbors(self, layer: int, node: int) -> List[int]:
        return self._layers[layer].setdefault(node, [])

    def _distance(self, a: int, b: int) -> float:
        return float(self.kernel.single(self.vectors[a], self.vectors[b]))

    def _greedy_descend(self, query: np.ndarray, start: int, layer: int) -> int:
        """Walk layer ``layer`` greedily to the local minimum for ``query``."""
        current = start
        current_distance = float(self.kernel.single(query, self.vectors[current]))
        improved = True
        while improved:
            improved = False
            neighbors = self._neighbors(layer, current)
            if not neighbors:
                break
            distances = self.kernel.batch(query, self.vectors[neighbors])
            best = int(np.argmin(distances))
            if float(distances[best]) < current_distance:
                current, current_distance = neighbors[best], float(distances[best])
                improved = True
        return current

    def _search_layer(
        self, query: np.ndarray, starts: List[int], ef: int, layer: int
    ) -> List[Tuple[float, int]]:
        """Beam search within one layer; returns (distance, node) ascending."""
        visited = set(starts)
        candidates: List[Tuple[float, int]] = []
        beam: List[Tuple[float, int]] = []
        start_distances = self.kernel.batch(query, self.vectors[starts])
        for node, distance in zip(starts, start_distances):
            distance = float(distance)
            heapq.heappush(candidates, (distance, node))
            heapq.heappush(beam, (-distance, node))
        while len(beam) > ef:
            heapq.heappop(beam)
        while candidates:
            distance, node = heapq.heappop(candidates)
            if beam and distance > -beam[0][0] and len(beam) >= ef:
                break
            fresh = [n for n in self._neighbors(layer, node) if n not in visited]
            if not fresh:
                continue
            visited.update(fresh)
            distances = self.kernel.batch(query, self.vectors[fresh])
            for neighbor, neighbor_distance in zip(fresh, distances):
                neighbor_distance = float(neighbor_distance)
                if len(beam) < ef or neighbor_distance < -beam[0][0]:
                    heapq.heappush(candidates, (neighbor_distance, neighbor))
                    heapq.heappush(beam, (-neighbor_distance, neighbor))
                    if len(beam) > ef:
                        heapq.heappop(beam)
        return sorted((-d, n) for d, n in beam)

    def _select_heuristic(
        self, candidates: List[Tuple[float, int]], m: int
    ) -> List[int]:
        """Diversified neighbour selection (Algorithm 4 of the paper).

        A candidate is kept only if it is closer to the inserted point than
        to every already-selected neighbour, which spreads edges across
        directions instead of clustering them.
        """
        if len(candidates) <= m:
            return [candidate for _, candidate in candidates]
        ids = [candidate for _, candidate in candidates]
        pairwise = self.kernel.matrix(self.vectors[ids], self.vectors[ids])
        selected_rows: List[int] = []
        for row, (distance, _) in enumerate(candidates):
            if len(selected_rows) >= m:
                break
            keep = all(pairwise[row, other] >= distance for other in selected_rows)
            if keep:
                selected_rows.append(row)
        if len(selected_rows) < m:
            chosen = set(selected_rows)
            for row in range(len(candidates)):
                if len(selected_rows) >= m:
                    break
                if row not in chosen:
                    selected_rows.append(row)
                    chosen.add(row)
        return [ids[row] for row in selected_rows]

    def _insert(self, node: int, level: int) -> None:
        self._node_level.append(level)
        while len(self._layers) <= level:
            self._layers.append({})
        for layer in range(level + 1):
            self._layers[layer].setdefault(node, [])

        if self._max_level < 0:
            self._entry = node
            self._max_level = level
            return

        query = self.vectors[node]
        current = self._entry
        for layer in range(self._max_level, level, -1):
            current = self._greedy_descend(query, current, layer)

        starts = [current]
        for layer in range(min(level, self._max_level), -1, -1):
            candidates = self._search_layer(
                query, starts, self.params.ef_construction, layer
            )
            m = self.params.m * 2 if layer == 0 else self.params.m
            neighbors = self._select_heuristic(candidates, m)
            self._layers[layer][node] = list(neighbors)
            for neighbor in neighbors:
                row = self._neighbors(layer, neighbor)
                if node not in row:
                    row.append(node)
                    if len(row) > m:
                        row_distances = self.kernel.batch(
                            self.vectors[neighbor], self.vectors[row]
                        )
                        ranked = sorted(zip((float(d) for d in row_distances), row))
                        self._layers[layer][neighbor] = self._select_heuristic(ranked, m)
            starts = [n for _, n in candidates] or [current]

        if level > self._max_level:
            self._entry = node
            self._max_level = level

    def add(self, vector: np.ndarray) -> int:
        """Insert one vector (HNSW is naturally incremental).

        Vectors live in a capacity-doubling growth buffer, so streaming
        ingestion copies each row O(log n) times overall instead of the
        O(n²) total copying a per-insert ``vstack`` would cost.
        ``self.vectors`` stays a view of the first ``n`` rows, which every
        search path reads through.
        """
        self._require_built()
        if self._buffer is None:
            # Restored from disk (persistence assigns _vectors directly):
            # adopt the matrix as the initial buffer.
            self._buffer = self._vectors
            self._count = int(self._vectors.shape[0])
        vector = np.asarray(vector, dtype=np.float64).reshape(1, -1)
        if vector.shape[1] != self.kernel.dim:
            raise GraphConstructionError(
                f"vector dim {vector.shape[1]} != kernel dim {self.kernel.dim}"
            )
        node = self._count
        if node == self._buffer.shape[0]:
            grown = np.empty(
                (max(2 * self._buffer.shape[0], 8), self._buffer.shape[1]),
                dtype=np.float64,
            )
            grown[:node] = self._buffer
            self._buffer = grown
            self._buffer_grows += 1
        self._buffer[node] = vector[0]
        self._count = node + 1
        self._vectors = self._buffer[: self._count]
        rng = derive_rng(self.params.seed, "hnsw-level-add", node)
        level = int(-np.log(max(rng.random(), 1e-12)) / np.log(self.params.m))
        self._insert(node, level)
        self._base_graph = None
        return node

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(
        self, query: np.ndarray, k: int, budget: int = 64, admit=None
    ) -> SearchResult:
        self._require_built()
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        query = np.asarray(query, dtype=np.float64)
        base = self.base_graph()
        current = self._entry
        with trace_span("hnsw-descent", top_layer=self._max_level) as span:
            for layer in range(self._max_level, 0, -1):
                current = self._greedy_descend(query, current, layer)
            span.set(base_entry=int(current))
        return greedy_search(
            base,
            self.vectors,
            self.kernel,
            query,
            k=k,
            budget=budget,
            entry_points=[current],
            admit=admit,
        )

    def _greedy_descend_batch(
        self, queries: np.ndarray, currents: List[int], layer: int
    ) -> List[int]:
        """Lockstep :meth:`_greedy_descend` for every query on one layer.

        Each query replays exactly the serial walk — same ``kernel.single``
        initialisation, same per-step argmin over its own neighbour list —
        but all still-walking queries share one ragged ``batch_paired``
        dispatch per step (each neighbour scored against its own query).
        """
        n_queries = queries.shape[0]
        currents = list(currents)
        best_distances = [
            float(self.kernel.single(queries[i], self.vectors[currents[i]]))
            for i in range(n_queries)
        ]
        active = list(range(n_queries))
        while active:
            neighbor_lists: Dict[int, List[int]] = {}
            walking: List[int] = []
            for i in active:
                neighbors = self._neighbors(layer, currents[i])
                if neighbors:
                    neighbor_lists[i] = neighbors
                    walking.append(i)
            if not walking:
                break
            flat: List[int] = []
            owners: List[int] = []
            for i in walking:
                flat.extend(neighbor_lists[i])
                owners.extend([i] * len(neighbor_lists[i]))
            frontier = self.kernel.batch_paired(
                queries, self.vectors[flat], owners
            )
            cursor = 0
            improved: List[int] = []
            for i in walking:
                neighbors = neighbor_lists[i]
                distances = frontier[cursor : cursor + len(neighbors)]
                cursor += len(neighbors)
                best = int(np.argmin(distances))
                if float(distances[best]) < best_distances[i]:
                    currents[i] = neighbors[best]
                    best_distances[i] = float(distances[best])
                    improved.append(i)
            active = improved
        return currents

    def search_batch(self, queries, k: int, budget: int = 64, admit=None):
        """Batched search: lockstep descent, then lockstep beam search.

        Per-query ids and distances are identical to :meth:`search`; only
        the number of kernel dispatches changes.
        """
        self._require_built()
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_queries = queries.shape[0]
        if n_queries == 0:
            return []
        base = self.base_graph()
        currents = [self._entry] * n_queries
        with trace_span(
            "hnsw-descent", top_layer=self._max_level, queries=n_queries
        ) as span:
            for layer in range(self._max_level, 0, -1):
                currents = self._greedy_descend_batch(queries, currents, layer)
            span.set(base_entries=len(set(currents)))
        return greedy_search_batch(
            base,
            self.vectors,
            self.kernel,
            queries,
            k=k,
            budget=budget,
            entry_points=[[current] for current in currents],
            admit=admit,
        )

    # ------------------------------------------------------------------
    # structural invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify the graph's structural invariants; raise on violation.

        Checked after any interleaved add/search sequence by the property
        tests:

        * bookkeeping — one level per node, vectors row per node, layer
          count matching the max level, entry node at the max level;
        * membership — node present in layer ``l`` iff ``l <= level(node)``;
        * edges — every neighbour id valid, no self-loops, no duplicates,
          rows within the degree cap (``2m`` on layer 0, ``m`` above);
        * connectivity — for every edge ``u -> v``, either ``v -> u``
          exists or ``v``'s row is saturated at the cap (re-pruning is the
          only way a reverse edge disappears, and it always leaves exactly
          ``cap`` entries).
        """
        self._require_built()
        size = self.size
        if len(self._node_level) != size:
            raise GraphConstructionError(
                f"{len(self._node_level)} node levels for {size} vectors"
            )
        if len(self._layers) != self._max_level + 1:
            raise GraphConstructionError(
                f"{len(self._layers)} layers but max level {self._max_level}"
            )
        if not 0 <= self._entry < size:
            raise GraphConstructionError(f"entry node {self._entry} out of range")
        if self._node_level[self._entry] != self._max_level:
            raise GraphConstructionError(
                f"entry node {self._entry} has level "
                f"{self._node_level[self._entry]}, expected {self._max_level}"
            )
        for node, level in enumerate(self._node_level):
            if not 0 <= level <= self._max_level:
                raise GraphConstructionError(
                    f"node {node} level {level} outside [0, {self._max_level}]"
                )
        for layer_index, layer in enumerate(self._layers):
            cap = self.params.m * 2 if layer_index == 0 else self.params.m
            for node in range(size):
                present = node in layer
                expected = self._node_level[node] >= layer_index
                if present != expected:
                    raise GraphConstructionError(
                        f"node {node} (level {self._node_level[node]}) "
                        f"{'present' if present else 'missing'} on layer {layer_index}"
                    )
            for node, row in layer.items():
                if len(row) > cap:
                    raise GraphConstructionError(
                        f"layer {layer_index} node {node} degree {len(row)} "
                        f"exceeds cap {cap}"
                    )
                if len(set(row)) != len(row):
                    raise GraphConstructionError(
                        f"layer {layer_index} node {node} has duplicate neighbours"
                    )
                for neighbor in row:
                    if not 0 <= neighbor < size:
                        raise GraphConstructionError(
                            f"layer {layer_index} node {node} -> dangling id {neighbor}"
                        )
                    if neighbor == node:
                        raise GraphConstructionError(
                            f"layer {layer_index} node {node} has a self-loop"
                        )
                    if neighbor not in layer:
                        raise GraphConstructionError(
                            f"layer {layer_index} edge {node} -> {neighbor} "
                            f"targets a node absent from the layer"
                        )
                    back = layer[neighbor]
                    if node not in back and len(back) != cap:
                        raise GraphConstructionError(
                            f"layer {layer_index} edge {node} -> {neighbor} has no "
                            f"reverse edge and {neighbor}'s row is unsaturated "
                            f"({len(back)}/{cap})"
                        )

    def base_graph(self) -> NavigationGraph:
        """Expose layer 0 as a :class:`NavigationGraph` (cached)."""
        self._require_built()
        if self._base_graph is None:
            graph = NavigationGraph(self.size, max_degree=self.params.m * 2)
            for node in range(self.size):
                graph.set_neighbors(node, self._layers[0].get(node, []))
            graph.entry_points = [self._entry]
            self._base_graph = graph
        return self._base_graph
