"""The unified multi-modal navigation graph used by MUST.

The paper: "we incorporate components from several state-of-the-art
algorithms in the context of concatenated vectors, resulting in a novel
indexing algorithm".  This spec is that combination, assembled from the
stage library: random-regular initialisation and beam-search candidate
acquisition (Vamana), alpha-relaxed robust pruning with reverse edges
(DiskANN) evaluated under the *weighted multi-vector* kernel, reachability
repair, and a medoid entry point.  Because every distance flows through
:class:`repro.distance.WeightedMultiVectorKernel`, edges reflect the learned
modality weighting — the "assigns multiple vectors per object to a unified
index" property that lets queries run merging-free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.index.pipeline_builder import GraphPipelineSpec, PipelineGraphIndex
from repro.index.stages import (
    candidates_beam_search,
    connect_repair,
    entry_medoid,
    init_random_regular,
    select_alpha_rng,
)


@dataclass(frozen=True)
class MustGraphParams:
    """Parameters of the unified multi-modal navigation graph.

    Attributes:
        max_degree: Out-degree bound.
        alpha: Robust-prune slack (1.0 = strict RNG).
        candidate_pool: Candidate pool size per vertex.
        build_budget: Beam width during candidate acquisition.
        seed: Random-init seed.
    """

    max_degree: int = 16
    alpha: float = 1.15
    candidate_pool: int = 48
    build_budget: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_degree < 2:
            raise ValueError(f"max_degree must be >= 2, got {self.max_degree}")
        if self.alpha < 1.0:
            raise ValueError(f"alpha must be >= 1.0, got {self.alpha}")


def must_graph_spec(params: MustGraphParams = MustGraphParams()) -> GraphPipelineSpec:
    """The composite spec of the unified multi-modal navigation graph."""
    return GraphPipelineSpec(
        name="nav-must",
        init=init_random_regular(
            params.max_degree, out_degree=params.max_degree // 2, seed=params.seed
        ),
        candidates=candidates_beam_search(
            params.candidate_pool, budget=params.build_budget
        ),
        selection=select_alpha_rng(params.max_degree, alpha=params.alpha),
        connectivity=connect_repair(),
        entry=entry_medoid(),
    )


class MustGraphIndex(PipelineGraphIndex):
    """The unified navigation graph, built over concatenated multi-vectors."""

    def __init__(self, params: MustGraphParams = MustGraphParams()) -> None:
        super().__init__(must_graph_spec(params))
        self.params = params
