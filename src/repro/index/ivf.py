"""IVF (inverted-file) index — the clustering-based alternative family.

Navigation graphs are not the only ANN structure the configuration panel
could offer; IVF partitions the corpus into Voronoi cells around k-means
centroids and scans only the ``nprobe`` closest cells per query.  Including
it gives experiment E3 a non-graph reference point: at equal recall IVF
scans far more vectors than a graph traverses, which is the reason the
paper's stack is graph-based.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.distance.kernel import DistanceKernel
from repro.errors import GraphConstructionError, SearchError
from repro.index.base import SearchResult, SearchStats, VectorIndex
from repro.utils import derive_rng


@dataclass(frozen=True)
class IvfParams:
    """IVF construction and search parameters.

    Attributes:
        n_lists: Number of k-means cells.
        nprobe: Cells scanned per query (the recall/speed knob; ``budget``
            at search time overrides it when larger).
        kmeans_iters: Lloyd iterations.
        seed: Centroid-init seed.
    """

    n_lists: int = 32
    nprobe: int = 4
    kmeans_iters: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_lists < 1:
            raise ValueError(f"n_lists must be >= 1, got {self.n_lists}")
        if self.nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {self.nprobe}")
        if self.kmeans_iters < 1:
            raise ValueError(f"kmeans_iters must be >= 1, got {self.kmeans_iters}")


class IvfIndex(VectorIndex):
    """Inverted-file index over k-means cells."""

    name = "ivf"

    def __init__(self, params: IvfParams = IvfParams()) -> None:
        super().__init__()
        self.params = params
        self._centroids: Optional[np.ndarray] = None
        self._lists: List[List[int]] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _kmeans(self, vectors: np.ndarray, kernel: DistanceKernel) -> np.ndarray:
        n = vectors.shape[0]
        n_lists = min(self.params.n_lists, n)
        rng = derive_rng(self.params.seed, "ivf-init")
        centroids = vectors[rng.choice(n, size=n_lists, replace=False)].copy()
        for _ in range(self.params.kmeans_iters):
            assignment = np.empty(n, dtype=np.int64)
            for row in range(n):
                assignment[row] = int(np.argmin(kernel.batch(vectors[row], centroids)))
            for cell in range(n_lists):
                members = vectors[assignment == cell]
                if members.shape[0]:
                    centroids[cell] = members.mean(axis=0)
        return centroids

    def build(self, vectors: np.ndarray, kernel: DistanceKernel) -> None:
        start = time.perf_counter()
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if vectors.shape[0] == 0:
            raise GraphConstructionError("cannot build IVF over an empty corpus")
        if vectors.shape[1] != kernel.dim:
            raise GraphConstructionError(
                f"corpus dim {vectors.shape[1]} != kernel dim {kernel.dim}"
            )
        self._vectors = vectors
        self._kernel = kernel
        self._centroids = self._kmeans(vectors, kernel)
        self._lists = [[] for _ in range(self._centroids.shape[0])]
        for row in range(vectors.shape[0]):
            cell = int(np.argmin(kernel.batch(vectors[row], self._centroids)))
            self._lists[cell].append(row)
        self.build_seconds = time.perf_counter() - start

    def add(self, vector: np.ndarray) -> int:
        self._require_built()
        assert self._centroids is not None
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vector.shape[0] != self.kernel.dim:
            raise GraphConstructionError(
                f"vector dim {vector.shape[0]} != kernel dim {self.kernel.dim}"
            )
        cell = int(np.argmin(self.kernel.batch(vector, self._centroids)))
        new_id = self.size
        self._vectors = np.vstack([self._vectors, vector[None, :]])
        self._lists[cell].append(new_id)
        return new_id

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(
        self, query: np.ndarray, k: int, budget: int = 64, admit=None
    ) -> SearchResult:
        """Scan the closest cells.  ``budget`` maps to extra probes: the
        effective probe count is ``max(nprobe, budget // 8)``."""
        self._require_built()
        assert self._centroids is not None
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        query = np.asarray(query, dtype=np.float64)
        nprobe = min(
            max(self.params.nprobe, budget // 8), self._centroids.shape[0]
        )
        centroid_distances = self.kernel.batch(query, self._centroids)
        candidates = self._gather_candidates(centroid_distances, nprobe, admit)
        stats = SearchStats(
            hops=int(nprobe),
            distance_evaluations=len(candidates) + self._centroids.shape[0],
        )
        if not candidates:
            return SearchResult(ids=[], distances=[], stats=stats)
        distances = self.kernel.batch(query, self.vectors[candidates])
        return self._top_k(candidates, distances, k, stats)

    @staticmethod
    def _probe_cells(centroid_distances: np.ndarray, nprobe: int) -> np.ndarray:
        """The ``nprobe`` closest cells, nearest first.

        ``argpartition`` selects the probe set in O(n_cells), then only the
        selected handful is sorted — the full ``argsort`` this replaces was
        the dominant per-query cost once cells outnumber probes.
        """
        if nprobe >= centroid_distances.size:
            return np.argsort(centroid_distances)
        probe = np.argpartition(centroid_distances, nprobe - 1)[:nprobe]
        return probe[np.argsort(centroid_distances[probe])]

    def _gather_candidates(
        self, centroid_distances: np.ndarray, nprobe: int, admit
    ) -> List[int]:
        candidates: List[int] = []
        for cell in self._probe_cells(centroid_distances, nprobe):
            candidates.extend(self._lists[int(cell)])
        if admit is not None:
            candidates = [c for c in candidates if admit(c)]
        return candidates

    @staticmethod
    def _top_k(
        candidates: List[int], distances: np.ndarray, k: int, stats: SearchStats
    ) -> SearchResult:
        k = min(k, len(candidates))
        top = np.argpartition(distances, k - 1)[:k]
        top = top[np.argsort(distances[top])]
        return SearchResult(
            ids=[int(candidates[i]) for i in top],
            distances=[float(distances[i]) for i in top],
            stats=stats,
        )

    def search_batch(self, queries, k: int, budget: int = 64, admit=None):
        """Batched probe: one centroid scan and one candidate-union scan.

        Candidate gathering and top-k selection reuse the serial helpers
        over bit-identical distance rows, so each element matches
        :meth:`search` exactly.
        """
        from repro.index.base import _per_query_admits

        self._require_built()
        assert self._centroids is not None
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_queries = queries.shape[0]
        if n_queries == 0:
            return []
        admits = _per_query_admits(admit, n_queries)
        nprobe = min(
            max(self.params.nprobe, budget // 8), self._centroids.shape[0]
        )
        centroid_distances = self.kernel.batch_many(queries, self._centroids)
        per_query: List[List[int]] = []
        all_stats: List[SearchStats] = []
        for i in range(n_queries):
            candidates = self._gather_candidates(
                centroid_distances[i], nprobe, admits[i]
            )
            per_query.append(candidates)
            all_stats.append(SearchStats(
                hops=int(nprobe),
                distance_evaluations=len(candidates) + self._centroids.shape[0],
            ))
        union = sorted({c for candidates in per_query for c in candidates})
        out: List[SearchResult] = []
        if union:
            colmap = {c: j for j, c in enumerate(union)}
            union_distances = self.kernel.batch_many(queries, self.vectors[union])
        for i in range(n_queries):
            candidates = per_query[i]
            if not candidates:
                out.append(SearchResult(ids=[], distances=[], stats=all_stats[i]))
                continue
            cols = np.fromiter(
                (colmap[c] for c in candidates), dtype=np.intp,
                count=len(candidates),
            )
            distances = union_distances[i, cols]
            out.append(self._top_k(candidates, distances, k, all_stats[i]))
        return out

    def describe(self) -> str:
        base = super().describe()
        if self._centroids is not None:
            sizes = [len(cell) for cell in self._lists]
            base += (
                f", {len(self._lists)} cells "
                f"(min {min(sizes)}, max {max(sizes)} vectors)"
            )
        return base
