"""Prompt assembly for the answer-generation component.

The paper: "The user's query is simultaneously dispatched to both the query
execution module and the LLM as a prompt.  The search results from the query
execution module are then redirected to the LLM.  The final user response is
a summary from the LLM."  :class:`PromptBuilder` produces that combined
prompt as a structured request so every simulated LLM consumes the same
contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class ContextItem:
    """One retrieved object, serialised for the prompt.

    Attributes:
        object_id: Knowledge-base id (the citation target).
        description: The object's text modality.
        score: Retrieval score (smaller = more relevant).
        preferred: True when the user previously selected this object —
            the "preference markers" the paper's responses include.
    """

    object_id: int
    description: str
    score: float
    preferred: bool = False


@dataclass(frozen=True)
class DialogueTurn:
    """One past exchange in the conversation."""

    user_text: str
    system_text: str


class PromptBuilder:
    """Builds generation requests from query, context, and history."""

    def __init__(self, max_context_items: int = 8, max_history_turns: int = 6) -> None:
        if max_context_items < 1:
            raise ValueError(f"max_context_items must be >= 1, got {max_context_items}")
        if max_history_turns < 0:
            raise ValueError(f"max_history_turns must be >= 0, got {max_history_turns}")
        self.max_context_items = max_context_items
        self.max_history_turns = max_history_turns

    def build(
        self,
        user_query: str,
        context: Sequence[ContextItem] = (),
        history: Sequence[DialogueTurn] = (),
        had_image: bool = False,
    ) -> "GenerationRequest":
        """Assemble a request; trims context and history to the limits."""
        from repro.llm.base import GenerationRequest

        # A zero-turn window must drop everything: history[-0:] is the
        # whole list, not the empty one.
        kept_history = (
            tuple(history[-self.max_history_turns :])
            if self.max_history_turns
            else ()
        )
        return GenerationRequest(
            user_query=user_query,
            context=tuple(context[: self.max_context_items]),
            history=kept_history,
            had_image=had_image,
        )

    @staticmethod
    def render_text(request: "GenerationRequest") -> str:
        """Flatten a request into the single prompt string an API LLM
        would receive (also handy for logging and tests)."""
        lines: List[str] = ["[system] Answer using only the provided context objects."]
        for turn in request.history:
            lines.append(f"[user] {turn.user_text}")
            lines.append(f"[assistant] {turn.system_text}")
        if request.context:
            lines.append("[context]")
            for item in request.context:
                marker = " (user preferred)" if item.preferred else ""
                lines.append(
                    f"  object #{item.object_id}{marker}: {item.description} "
                    f"(score {item.score:.3f})"
                )
        else:
            lines.append("[context] (no knowledge base attached)")
        suffix = " [image attached]" if request.had_image else ""
        lines.append(f"[user] {request.user_query}{suffix}")
        return "\n".join(lines)
