"""The deterministic, fully grounded template LLM.

Composes natural-sounding replies strictly from the retrieved context:
every object it mentions is cited as ``#id`` and appears in the request's
context, so its answers always pass the grounding check.  Without context
(external knowledge disabled) it answers honestly that it is falling back
to parametric knowledge — the behaviour the paper's "LLM-only" mode needs.
"""

from __future__ import annotations

import time
from typing import List

from repro.errors import ConfigurationError
from repro.llm.base import GenerationRequest, GenerationResult, LanguageModel
from repro.utils import derive_rng

_OPENERS = (
    "Here is what I found",
    "I looked through the knowledge base",
    "Good news",
    "These results match your request",
)
_REFINE_OPENERS = (
    "Building on your selection",
    "Taking your preference into account",
    "Refining from the item you liked",
)


class TemplateLLM(LanguageModel):
    """Grounded template-based generation.

    Args:
        seed: Controls which phrasing variant a given request selects
            (temperature widens the variant pool; the choice stays a pure
            function of request + seed + temperature).
        latency_ms: Simulated per-call generation latency.  The production
            MQA demo calls a remote LLM (ChatGPT) over the network; this
            knob models that downstream wait so concurrency experiments
            exercise the regime the system actually serves in.  The sleep
            releases the GIL, exactly as a network wait would.  ``0``
            (the default) keeps generation instantaneous.
    """

    name = "template"

    def __init__(self, seed: int = 0, latency_ms: float = 0.0) -> None:
        if latency_ms < 0:
            raise ConfigurationError(
                f"latency_ms must be >= 0, got {latency_ms}"
            )
        self.seed = seed
        self.latency_ms = float(latency_ms)

    def _pick(self, options: "tuple[str, ...]", request: GenerationRequest, temperature: float) -> str:
        if temperature == 0.0:
            return options[0]
        rng = derive_rng(self.seed, "template-phrase", request.user_query, len(request.history))
        pool = max(1, min(len(options), int(1 + temperature * (len(options) - 1))))
        return options[int(rng.integers(pool))]

    def generate(self, request: GenerationRequest, temperature: float = 0.0) -> GenerationResult:
        temperature = self._check_temperature(temperature)
        if self.latency_ms > 0:
            time.sleep(self.latency_ms / 1000.0)
        if not request.context:
            text = (
                "I do not have a knowledge base attached, so this answer relies on "
                f"my own parametric knowledge and may be incomplete: regarding "
                f"{request.user_query!r}, I cannot point to any verified item."
            )
            return GenerationResult(
                text=text, cited_object_ids=(), grounded=False, model=self.name
            )

        preferred = [item for item in request.context if item.preferred]
        openers = _REFINE_OPENERS if preferred or request.history else _OPENERS
        opener = self._pick(openers, request, temperature)

        lines: List[str] = []
        image_note = " and the image you provided" if request.had_image else ""
        lines.append(
            f"{opener}: based on your request {request.user_query!r}{image_note}, "
            f"the top match is object #{request.context[0].object_id} — "
            f"\"{request.context[0].description}\"."
        )
        if len(request.context) > 1:
            others = ", ".join(f"#{item.object_id}" for item in request.context[1:4])
            lines.append(f"Close alternatives: {others}.")
        if preferred:
            marks = ", ".join(f"#{item.object_id}" for item in preferred)
            lines.append(f"(Preference markers kept from earlier rounds: {marks}.)")
        lines.append("Select any result to refine the search further.")
        cited = tuple(item.object_id for item in request.context[:4])
        return GenerationResult(
            text=" ".join(lines), cited_object_ids=cited, grounded=True, model=self.name
        )
