"""Language-model interface shared by all simulated LLMs."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.llm.prompts import ContextItem, DialogueTurn


@dataclass(frozen=True)
class GenerationRequest:
    """Everything a generation call receives.

    Attributes:
        user_query: The current user message.
        context: Retrieved objects (empty when external knowledge is off).
        history: Prior dialogue turns.
        had_image: Whether the user attached an image this round.
    """

    user_query: str
    context: Tuple[ContextItem, ...] = ()
    history: Tuple[DialogueTurn, ...] = ()
    had_image: bool = False


@dataclass
class GenerationResult:
    """A generated answer.

    Attributes:
        text: The conversational reply shown to the user.
        cited_object_ids: Knowledge-base ids the reply references.
        grounded: True when every claim traces to the provided context;
            False marks parametric (retrieval-free) answers that may
            hallucinate.
        model: Name of the producing model.
    """

    text: str
    cited_object_ids: Tuple[int, ...] = ()
    grounded: bool = True
    model: str = ""


class LanguageModel(abc.ABC):
    """A conversational model consuming :class:`GenerationRequest`.

    Implementations must be deterministic for a fixed ``(request, seed,
    temperature)`` triple so dialogues replay identically in tests.
    """

    #: Registry identifier shown by the configuration panel.
    name: str = "llm"

    @abc.abstractmethod
    def generate(self, request: GenerationRequest, temperature: float = 0.0) -> GenerationResult:
        """Produce a reply for ``request``.

        Args:
            request: Query, retrieved context, and history.
            temperature: Output variability in [0, 2]; 0 is deterministic.
        """

    @staticmethod
    def _check_temperature(temperature: float) -> float:
        if not 0.0 <= temperature <= 2.0:
            raise ValueError(f"temperature must be in [0, 2], got {temperature}")
        return temperature
