"""The generative-image baseline of Figure 5 (the DALL·E 2 stand-in).

GPT-4 with an image generator, "lacking multi-modal retrieval
configurations, generates synthetic images that miss a touch of realism".
This model reproduces that behaviour: it composes a latent from the
concepts it recognises in the query text, *invents* the rest (hallucinated
detail drawn from unrelated concepts), and renders a fresh image — which is
on-topic but corresponds to no knowledge-base object, so its
grounded-in-KB score is zero by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.data.knowledge_base import KnowledgeBase
from repro.data.rendering import TextRenderer
from repro.errors import GenerationError
from repro.utils import derive_rng, l2_normalize


@dataclass
class GeneratedImage:
    """A synthesised image with provenance metadata.

    Attributes:
        image: The pixel grid.
        latent: The latent the generator sampled (for evaluation only).
        recognised_concepts: Query concepts the generator understood.
        hallucinated_concepts: Concepts it invented to fill the scene.
    """

    image: np.ndarray
    latent: np.ndarray
    recognised_concepts: Tuple[str, ...]
    hallucinated_concepts: Tuple[str, ...]

    @property
    def grounded_object_id(self) -> Optional[int]:
        """Always None: generated images correspond to no KB object."""
        return None


class GenerativeImageModel:
    """Text-to-image generation against a knowledge base's visual world.

    Args:
        kb: Supplies the concept vocabulary and image renderer (the
            generator "trained on the same visual world").
        hallucination_rate: Number of invented concepts blended in.
        fidelity: Weight of recognised vs invented content in the latent.
        seed: Sampling seed.
    """

    name = "dalle-sim"

    def __init__(
        self,
        kb: KnowledgeBase,
        hallucination_rate: int = 2,
        fidelity: float = 0.75,
        seed: int = 0,
    ) -> None:
        if hallucination_rate < 0:
            raise GenerationError(
                f"hallucination_rate must be >= 0, got {hallucination_rate}"
            )
        if not 0.0 < fidelity <= 1.0:
            raise GenerationError(f"fidelity must be in (0, 1], got {fidelity}")
        self.kb = kb
        self.hallucination_rate = hallucination_rate
        self.fidelity = fidelity
        self.seed = seed

    def generate(self, text: str, round_index: int = 0) -> GeneratedImage:
        """Synthesise an image for ``text``.

        Raises :class:`GenerationError` when no concept in the text is
        recognised (nothing to draw).
        """
        tokens = TextRenderer.tokenize(text)
        recognised = self.kb.space.known_tokens(tokens)
        if not recognised:
            raise GenerationError(
                f"generative model recognises no concept in {text!r}"
            )
        rng = derive_rng(self.seed, "genimage", text, round_index)
        pool = [name for name in self.kb.space.names if name not in recognised]
        count = min(self.hallucination_rate, len(pool))
        hallucinated: List[str] = []
        if count:
            picks = rng.choice(len(pool), size=count, replace=False)
            hallucinated = [pool[int(i)] for i in picks]

        real_part = self.kb.space.compose(recognised)
        latent = real_part * self.fidelity
        if hallucinated:
            latent = latent + (1.0 - self.fidelity) * self.kb.space.compose(hallucinated)
        latent = l2_normalize(latent)
        image = self.kb.render_model.image.render(
            latent, noise_key=("generated", text, round_index)
        )
        return GeneratedImage(
            image=image,
            latent=latent,
            recognised_concepts=tuple(recognised),
            hallucinated_concepts=tuple(hallucinated),
        )
