"""LLM-guided query rewriting.

The paper's QA panel "promptly returns relevant multi-modal information,
using an optimized retrieval mechanism guided by LLM".  The guidance
implemented here is conversational query rewriting: before a refinement
query hits the index, the intent the user has built up across rounds —
concept terms from earlier requests and from the items they selected — is
folded back into the query text.  A vague follow-up like "more like this
one, please" thereby retrieves against the full accumulated intent.

The rewriter is a deterministic stand-in for an LLM rewriting prompt; like
every simulated model here it only uses information a real LLM would see
(the dialogue transcript), never hidden ground truth.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.data.concepts import ConceptSpace
from repro.data.rendering import TextRenderer


class QueryRewriter:
    """Folds dialogue history into vague follow-up queries.

    Args:
        space: Concept vocabulary used to recognise intent terms.
        max_carried: Maximum history concepts appended to a query.
        min_query_concepts: Queries already carrying at least this many
            recognised concepts are left untouched — rewriting only helps
            when the new text underspecifies the intent.
    """

    def __init__(
        self,
        space: ConceptSpace,
        max_carried: int = 3,
        min_query_concepts: int = 2,
    ) -> None:
        if max_carried < 0:
            raise ValueError(f"max_carried must be >= 0, got {max_carried}")
        if min_query_concepts < 0:
            raise ValueError(
                f"min_query_concepts must be >= 0, got {min_query_concepts}"
            )
        self.space = space
        self.max_carried = max_carried
        self.min_query_concepts = min_query_concepts

    def _concepts_in(self, text: str) -> List[str]:
        return self.space.known_tokens(TextRenderer.tokenize(text))

    def rewrite(
        self,
        text: str,
        history_texts: Sequence[str] = (),
        selected_descriptions: Sequence[str] = (),
    ) -> str:
        """Return ``text``, possibly extended with carried intent terms.

        Args:
            text: The user's current message.
            history_texts: Prior user messages, oldest first.
            selected_descriptions: Text modality of items the user selected
                (their concepts carry the strongest signal).

        Recency wins: concepts from later history override earlier ones up
        to ``max_carried``; selected-item concepts rank above plain history.
        """
        present = set(self._concepts_in(text))
        if len(present) >= self.min_query_concepts:
            return text

        carried: List[str] = []

        def take(source_texts: Iterable[str]) -> None:
            for source in reversed(list(source_texts)):  # most recent first
                for concept in self._concepts_in(source):
                    if concept not in present and concept not in carried:
                        carried.append(concept)

        take(selected_descriptions)
        take(history_texts)
        carried = carried[: self.max_carried]
        if not carried:
            return text
        return text + " " + " ".join(carried)
