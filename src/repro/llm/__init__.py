"""Answer-generation substrate: simulated large language models.

Real MQA proxies GPT-4/ChatGPT over the network; offline we provide:

* :class:`TemplateLLM` — deterministic, fully grounded answers composed from
  the retrieved context (the reliable default).
* :class:`MarkovLLM` — a small word-level Markov generator with a
  temperature knob, modelling "output variability" from the configuration
  panel.
* :class:`GenerativeImageModel` — the DALL·E-2 stand-in of Figure 5:
  synthesises an image from query text alone, plausible but *not grounded*
  in any knowledge-base object.

A grounding checker verifies that answers only cite retrieved objects —
the retrieval-augmentation contract that suppresses hallucination — and the
prompt builder assembles query + context + history exactly as the paper's
answer-generation component describes.
"""

from repro.llm.agentic import (
    ClaimSynthesizer,
    claim_summary_line,
    render_subquery,
)
from repro.llm.attribute_qa import AttributeQALLM
from repro.llm.base import GenerationRequest, GenerationResult, LanguageModel
from repro.llm.generative_image import GenerativeImageModel
from repro.llm.grounding import check_grounding, extract_citations
from repro.llm.markov_llm import MarkovLLM
from repro.llm.prompts import ContextItem, PromptBuilder
from repro.llm.registry import available_llms, build_llm, register_llm
from repro.llm.rewriter import QueryRewriter
from repro.llm.template_llm import TemplateLLM

__all__ = [
    "AttributeQALLM",
    "ClaimSynthesizer",
    "ContextItem",
    "GenerationRequest",
    "GenerationResult",
    "GenerativeImageModel",
    "LanguageModel",
    "MarkovLLM",
    "PromptBuilder",
    "QueryRewriter",
    "TemplateLLM",
    "available_llms",
    "build_llm",
    "check_grounding",
    "claim_summary_line",
    "extract_citations",
    "register_llm",
    "render_subquery",
]
