"""Prompt templates and claim synthesis for agentic multi-hop answering.

The agentic answerer (``repro.core.agentic``) decomposes a question into
per-concept sub-queries, retrieves evidence for each, and composes the
final reply from *claims* — one grounded sentence per concept, each
citing the retrieved objects that back it.  This module is the LLM-layer
half of that loop: deterministic sub-query phrasing (the "planner
prompt") and the deterministic claim synthesizer (the "synthesizer
prompt"), both pure functions of their inputs plus a seed, exactly like
:class:`~repro.llm.template_llm.TemplateLLM`.

Like every simulated model here, the synthesizer only consumes what a
real LLM would see — the retrieved objects' ids and text descriptions —
never hidden ground truth.  The textual-evidence test used to mark a
claim supported reads the *rendered* description (which drops tokens
noisily), so unsupported claims arise naturally and give the refinement
pass real work.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.data.rendering import TextRenderer
from repro.llm.prompts import ContextItem
from repro.utils import derive_rng

#: How a decomposed concept is phrased as a standalone retrieval query.
#: Template 0 is the deterministic (temperature 0) choice.
SUBQUERY_TEMPLATES: Tuple[str, ...] = (
    "show me {concept} items",
    "find objects featuring {concept}",
    "looking for {concept}",
    "i want results about {concept}",
)

#: Phrasing used when a claim's evidence came up empty and the hop is
#: re-retrieved.  The concept appears twice on purpose: the bag-of-tokens
#: text encoder weights repeated tokens higher, so the refinement query
#: leans harder on the concept than the first hop did.
REFINE_TEMPLATES: Tuple[str, ...] = (
    "strictly {concept} results, specifically {concept}",
    "only {concept} items please, {concept} above all",
)


def render_subquery(
    concept: str, seed: int, temperature: float = 0.0, refine: bool = False
) -> str:
    """Phrase one decomposed concept as a retrieval query.

    Deterministic: temperature 0 always picks the first template; a
    positive temperature widens the pool, with the pick derived from
    ``(seed, concept)`` so the same question decomposes identically on
    every run.
    """
    templates = REFINE_TEMPLATES if refine else SUBQUERY_TEMPLATES
    if temperature <= 0.0:
        return templates[0].format(concept=concept)
    rng = derive_rng(seed, "agentic-subquery", concept, refine)
    pool = max(1, min(len(templates), int(1 + temperature * (len(templates) - 1))))
    return templates[int(rng.integers(pool))].format(concept=concept)


class ClaimSynthesizer:
    """Deterministic per-claim synthesis with ``#id`` citations.

    Args:
        seed: Phrasing seed (kept for parity with the other simulated
            models; the default phrasing is temperature-0 deterministic).
        max_citations: Upper bound on citations carried per claim.
    """

    def __init__(self, seed: int = 0, max_citations: int = 3) -> None:
        if max_citations < 1:
            raise ValueError(
                f"max_citations must be >= 1, got {max_citations}"
            )
        self.seed = seed
        self.max_citations = max_citations

    @staticmethod
    def has_evidence(concept: str, item: ContextItem) -> bool:
        """True when ``item``'s rendered description mentions ``concept``.

        This is the only support test a real LLM could run: read the
        retrieved text.  Descriptions are rendered with token dropout, so
        a genuinely relevant object can still fail it — those claims are
        what the refinement pass re-retrieves for.
        """
        return concept.lower() in TextRenderer.tokenize(item.description)

    def compose(
        self, concept: str, items: Sequence[ContextItem]
    ) -> "Tuple[str, List[int], bool]":
        """Build one claim sentence for ``concept`` from retrieved items.

        Returns ``(text, citations, supported)``.  Evidence-bearing items
        are cited first; when none carries evidence the top-ranked item is
        cited anyway (every claim must point at retrieved context) but the
        claim is marked unsupported.
        """
        if not items:
            return (
                f"I could not retrieve anything about '{concept}'.",
                [],
                False,
            )
        backed = [item for item in items if self.has_evidence(concept, item)]
        supported = bool(backed)
        cited_items = (backed or list(items))[: self.max_citations]
        citations = [item.object_id for item in cited_items]
        refs = ", ".join(f"#{object_id}" for object_id in citations)
        if supported:
            lead = cited_items[0]
            text = (
                f"On '{concept}': object #{lead.object_id} "
                f"(\"{lead.description}\") matches it directly"
            )
            if len(citations) > 1:
                others = ", ".join(
                    f"#{object_id}" for object_id in citations[1:]
                )
                text += f"; see also {others}"
            text += "."
        else:
            text = (
                f"On '{concept}': the closest retrieved item is {refs}, "
                f"but its description does not confirm '{concept}'."
            )
        return text, citations, supported


def claim_summary_line(claims: "Sequence[object]") -> Optional[str]:
    """A one-line support tally appended to the agentic answer text.

    ``claims`` are :class:`~repro.core.agentic.Claim`-likes (anything with
    a ``supported`` attribute); returns None when there are none.
    """
    if not claims:
        return None
    supported = sum(1 for claim in claims if getattr(claim, "supported", False))
    return f"(Evidence check: {supported}/{len(claims)} claims supported.)"
