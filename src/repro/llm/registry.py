"""Pluggable LLM registry — the configuration panel's "LLM" options."""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Tuple

from repro.errors import ConfigurationError
from repro.llm.attribute_qa import AttributeQALLM
from repro.llm.base import LanguageModel
from repro.llm.markov_llm import MarkovLLM
from repro.llm.template_llm import TemplateLLM

LLMFactory = Callable[[Mapping[str, Any]], LanguageModel]

_REGISTRY: Dict[str, LLMFactory] = {}


def register_llm(name: str, factory: LLMFactory) -> None:
    """Register ``factory`` under ``name`` (overwrites an existing entry)."""
    if not name:
        raise ConfigurationError("llm name must be non-empty")
    _REGISTRY[name] = factory


def available_llms() -> Tuple[str, ...]:
    """Names of all registered language models."""
    return tuple(sorted(_REGISTRY))


def build_llm(name: str, params: "Mapping[str, Any] | None" = None) -> LanguageModel:
    """Instantiate the language model called ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        valid = ", ".join(available_llms())
        raise ConfigurationError(f"unknown llm {name!r}; available: {valid}") from None
    return factory(dict(params or {}))


register_llm(
    "template",
    lambda p: TemplateLLM(
        seed=int(p.get("seed", 0)),
        latency_ms=float(p.get("latency_ms", 0.0)),
    ),
)
register_llm("attribute-qa", lambda p: AttributeQALLM(seed=int(p.get("seed", 0))))
register_llm(
    "markov",
    lambda p: MarkovLLM(
        seed=int(p.get("seed", 0)), max_words=int(p.get("max_words", 40))
    ),
)
