"""Grounded attribute question answering over retrieved context.

Retrieval-augmented QA is more than summarising: once results are on
screen, users ask *about* them — "which of these are french?", "how many
are moldy?".  This model answers such questions strictly from the retrieved
descriptions (set membership and counting are exact), and delegates
everything else to a wrapped conversational model.  Because every claim is
derived from context items, its answers always pass the grounding check.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.llm.base import GenerationRequest, GenerationResult, LanguageModel
from repro.llm.template_llm import TemplateLLM

_WHICH_PATTERN = re.compile(r"\bwhich (?:of (?:these|them|the results) )?(?:are|is|have|has)\b (.+)")
_COUNT_PATTERN = re.compile(r"\bhow many (?:of (?:these|them|the results) )?(?:are|is|have|has)?\b(.*)")


class AttributeQALLM(LanguageModel):
    """Answers attribute questions about the retrieved items.

    Args:
        fallback: Model used for non-question turns (defaults to
            :class:`TemplateLLM`).
    """

    name = "attribute-qa"

    def __init__(self, fallback: Optional[LanguageModel] = None, seed: int = 0) -> None:
        self.fallback = fallback or TemplateLLM(seed=seed)

    @staticmethod
    def _attribute_terms(raw: str) -> List[str]:
        """The meaningful attribute words of a question tail."""
        stop = {"a", "an", "the", "ones", "one", "of", "these", "them", "?", ""}
        return [
            token.strip("?.,!").lower()
            for token in raw.split()
            if token.strip("?.,!").lower() not in stop
        ]

    def _matching_items(self, request: GenerationRequest, terms: List[str]):
        matches = []
        for item in request.context:
            description = item.description.lower()
            if all(term in description.split() for term in terms):
                matches.append(item)
        return matches

    def _answer_which(self, request: GenerationRequest, raw_terms: str) -> Optional[GenerationResult]:
        terms = self._attribute_terms(raw_terms)
        if not terms:
            return None
        matches = self._matching_items(request, terms)
        pretty = " ".join(terms)
        if not matches:
            text = f"None of the retrieved items mention {pretty!r}."
            return GenerationResult(text=text, cited_object_ids=(), grounded=True, model=self.name)
        listed = ", ".join(f"#{item.object_id}" for item in matches)
        text = (
            f"Of the retrieved items, {listed} "
            f"{'matches' if len(matches) == 1 else 'match'} {pretty!r}."
        )
        return GenerationResult(
            text=text,
            cited_object_ids=tuple(item.object_id for item in matches),
            grounded=True,
            model=self.name,
        )

    def _answer_count(self, request: GenerationRequest, raw_terms: str) -> Optional[GenerationResult]:
        terms = self._attribute_terms(raw_terms)
        if not terms:
            return None
        matches = self._matching_items(request, terms)
        pretty = " ".join(terms)
        cited = tuple(item.object_id for item in matches)
        listed = (
            " (" + ", ".join(f"#{i}" for i in cited) + ")" if cited else ""
        )
        text = f"{len(matches)} of the retrieved items mention {pretty!r}{listed}."
        return GenerationResult(
            text=text, cited_object_ids=cited, grounded=True, model=self.name
        )

    def generate(self, request: GenerationRequest, temperature: float = 0.0) -> GenerationResult:
        temperature = self._check_temperature(temperature)
        if request.context:
            lowered = request.user_query.lower()
            which = _WHICH_PATTERN.search(lowered)
            if which:
                result = self._answer_which(request, which.group(1))
                if result is not None:
                    return result
            count = _COUNT_PATTERN.search(lowered)
            if count and count.group(1).strip():
                result = self._answer_count(request, count.group(1))
                if result is not None:
                    return result
        return self.fallback.generate(request, temperature=temperature)
