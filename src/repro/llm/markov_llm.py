"""A tiny Markov-chain LLM with a working temperature knob.

Trains a word-bigram model on a built-in conversational corpus plus the
request's own context descriptions, then samples a reply.  Temperature
scales the transition distribution exactly the way softmax temperature does
in a real LLM: 0 degenerates to argmax (deterministic), higher values
flatten the distribution and increase variability — giving the
configuration panel's temperature slider observable behaviour.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np

from repro.llm.base import GenerationRequest, GenerationResult, LanguageModel
from repro.utils import derive_rng

_BASE_CORPUS = """
here are the results you asked for . i found several matching items in the
knowledge base . the best match is shown first . you can select any result
to refine the search . based on your preference i adjusted the ranking .
these items align with the image you provided . tell me if you would like
more options . the top result matches your description closely . i kept
your earlier preference in mind while ranking . feel free to add more
detail to narrow things down .
"""


class MarkovLLM(LanguageModel):
    """Word-bigram generation seeded by the retrieval context."""

    name = "markov"

    def __init__(self, seed: int = 0, max_words: int = 40) -> None:
        if max_words < 5:
            raise ValueError(f"max_words must be >= 5, got {max_words}")
        self.seed = seed
        self.max_words = max_words
        self._base_transitions = self._train(_BASE_CORPUS.split())

    @staticmethod
    def _train(words: List[str]) -> Dict[str, Dict[str, int]]:
        transitions: Dict[str, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        for current, following in zip(words, words[1:]):
            transitions[current][following] += 1
        return {w: dict(f) for w, f in transitions.items()}

    def _merged_transitions(self, request: GenerationRequest) -> Dict[str, Dict[str, int]]:
        words: List[str] = []
        for item in request.context:
            words.extend(item.description.lower().split())
            words.append(".")
        if not words:
            return self._base_transitions
        merged: Dict[str, Dict[str, int]] = {
            w: dict(f) for w, f in self._base_transitions.items()
        }
        for current, following in zip(words, words[1:]):
            merged.setdefault(current, {})
            merged[current][following] = merged[current].get(following, 0) + 1
        return merged

    def _sample_next(
        self,
        followers: Dict[str, int],
        temperature: float,
        rng: np.random.Generator,
    ) -> str:
        words = sorted(followers)
        counts = np.array([followers[w] for w in words], dtype=np.float64)
        if temperature == 0.0:
            return words[int(np.argmax(counts))]
        logits = np.log(counts) / temperature
        logits -= logits.max()
        probabilities = np.exp(logits)
        probabilities /= probabilities.sum()
        return words[int(rng.choice(len(words), p=probabilities))]

    def generate(self, request: GenerationRequest, temperature: float = 0.0) -> GenerationResult:
        temperature = self._check_temperature(temperature)
        transitions = self._merged_transitions(request)
        rng = derive_rng(
            self.seed, "markov", request.user_query, len(request.history), temperature
        )
        word = "here" if "here" in transitions else sorted(transitions)[0]
        words = [word]
        for _ in range(self.max_words - 1):
            followers = transitions.get(word)
            if not followers:
                break
            word = self._sample_next(followers, temperature, rng)
            words.append(word)
            if word == "." and len(words) >= 8:
                break

        cited: Tuple[int, ...] = tuple(item.object_id for item in request.context[:3])
        prefix = ""
        if cited:
            prefix = "top matches: " + ", ".join(f"#{i}" for i in cited) + ". "
        return GenerationResult(
            text=prefix + " ".join(words),
            cited_object_ids=cited,
            grounded=bool(cited),
            model=self.name,
        )
