"""Grounding verification for generated answers.

Retrieval augmentation only suppresses hallucination if the generation
layer is *held* to the retrieved context; this module is that enforcement
point.  The coordinator runs every LLM reply through
:func:`check_grounding` before surfacing it.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Set

from repro.errors import GroundingError
from repro.llm.base import GenerationResult

_CITATION_PATTERN = re.compile(r"#(\d+)")


def extract_citations(text: str) -> List[int]:
    """All ``#id`` citations appearing in ``text``, in order."""
    return [int(match) for match in _CITATION_PATTERN.findall(text)]


def check_grounding(
    result: GenerationResult,
    allowed_object_ids: Iterable[int],
    strict: bool = True,
) -> bool:
    """Verify ``result`` only cites objects from ``allowed_object_ids``.

    Args:
        result: The generated answer.
        allowed_object_ids: Ids of the objects retrieval supplied.
        strict: Raise :class:`GroundingError` on violation instead of
            returning False.

    Returns:
        True when grounded.  A result flagged ``grounded=False`` by its own
        model (parametric fallback) passes only if it cites nothing — an
        honest "I don't know" is acceptable, an invented citation is not.
    """
    allowed: Set[int] = set(allowed_object_ids)
    cited = set(result.cited_object_ids) | set(extract_citations(result.text))
    stray = sorted(cited - allowed)
    if not stray:
        return True
    if strict:
        listed = ", ".join(f"#{object_id}" for object_id in stray)
        raise GroundingError(
            f"answer from {result.model!r} cites objects outside the retrieved "
            f"context: {listed}"
        )
    return False
