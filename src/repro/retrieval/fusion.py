"""Rank-fusion strategies for Multi-streamed Retrieval.

MR runs one vector search per modality and must merge the per-stream
rankings into one list — precisely the step MUST's merging-free search
avoids.  Three classic strategies are provided; RRF is the default because
it is score-scale-free (per-modality distances are not comparable across
encoders with different output spaces).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.errors import RetrievalError
from repro.index.base import SearchStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.retrieval.base import RetrievalResponse


class FusionStrategy(str, enum.Enum):
    """How per-modality rankings are merged."""

    RRF = "rrf"
    COMBSUM = "combsum"
    ROUND_ROBIN = "round_robin"

    @classmethod
    def parse(cls, value: "str | FusionStrategy") -> "FusionStrategy":
        """Coerce a string such as ``"rrf"`` into a strategy."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            valid = ", ".join(s.value for s in cls)
            raise RetrievalError(
                f"unknown fusion strategy {value!r}; expected one of: {valid}"
            ) from None


def _rrf(
    rankings: Sequence[List[int]],
    k: int,
    constant: float,
    stream_weights: Sequence[float],
) -> List[Tuple[int, float]]:
    scores: Dict[int, float] = {}
    for ranking, weight in zip(rankings, stream_weights):
        for rank, object_id in enumerate(ranking):
            scores[object_id] = scores.get(object_id, 0.0) + weight / (
                constant + rank + 1
            )
    # Items supported only by zero-weight streams carry no evidence.
    ordered = sorted(
        ((i, s) for i, s in scores.items() if s > 0.0),
        key=lambda pair: (-pair[1], pair[0]),
    )
    # RRF scores grow with quality; negate so "smaller is better" holds.
    return [(object_id, -score) for object_id, score in ordered[:k]]


def _combsum(
    rankings: Sequence[List[int]],
    distances: Sequence[List[float]],
    k: int,
    stream_weights: Sequence[float],
) -> List[Tuple[int, float]]:
    scores: Dict[int, float] = {}
    support: Dict[int, float] = {}  # strongest stream weight backing the item
    for ranking, stream_distances, weight in zip(rankings, distances, stream_weights):
        if not ranking:
            continue
        low = min(stream_distances)
        high = max(stream_distances)
        span = (high - low) or 1.0
        for object_id, distance in zip(ranking, stream_distances):
            normalised = (distance - low) / span
            scores[object_id] = scores.get(object_id, 0.0) + weight * (1.0 - normalised)
            support[object_id] = max(support.get(object_id, 0.0), weight)
    # Items backed only by zero-weight streams carry no evidence.
    ordered = sorted(
        ((i, s) for i, s in scores.items() if support[i] > 0.0),
        key=lambda pair: (-pair[1], pair[0]),
    )
    return [(object_id, -score) for object_id, score in ordered[:k]]


def _round_robin(rankings: Sequence[List[int]], k: int) -> List[Tuple[int, float]]:
    merged: List[Tuple[int, float]] = []
    seen = set()
    position = 0
    while len(merged) < k:
        progressed = False
        for ranking in rankings:
            if position < len(ranking):
                progressed = True
                object_id = ranking[position]
                if object_id not in seen:
                    seen.add(object_id)
                    merged.append((object_id, float(len(merged))))
                    if len(merged) == k:
                        break
        if not progressed:
            break
        position += 1
    return merged


def fuse_rankings(
    rankings: Sequence[List[int]],
    distances: Sequence[List[float]],
    k: int,
    strategy: FusionStrategy = FusionStrategy.RRF,
    rrf_constant: float = 60.0,
    stream_weights: "Sequence[float] | None" = None,
) -> List[Tuple[int, float]]:
    """Merge per-modality rankings into one top-``k`` list.

    Args:
        rankings: Object-id lists, one per modality stream, best first.
        distances: Matching distance lists (used by COMBSUM only).
        k: Result count.
        strategy: Fusion rule.
        rrf_constant: The RRF smoothing constant (60 in the original paper).
        stream_weights: Per-stream importances (RRF/COMBSUM only); default
            equal.  This is how MR honours modality weights — at the rank
            level, after each stream already searched blind.

    Returns:
        ``(object_id, fused_score)`` pairs, best first; smaller is better.
    """
    if not rankings:
        raise RetrievalError("fusion needs at least one ranking")
    if len(rankings) != len(distances):
        raise RetrievalError(
            f"{len(rankings)} rankings but {len(distances)} distance lists"
        )
    if stream_weights is None:
        stream_weights = [1.0] * len(rankings)
    elif len(stream_weights) != len(rankings):
        raise RetrievalError(
            f"{len(rankings)} rankings but {len(stream_weights)} stream weights"
        )
    elif any(w < 0 for w in stream_weights):
        raise RetrievalError("stream weights must be non-negative")
    strategy = FusionStrategy.parse(strategy)
    if strategy is FusionStrategy.RRF:
        return _rrf(rankings, k, rrf_constant, stream_weights)
    if strategy is FusionStrategy.COMBSUM:
        return _combsum(rankings, distances, k, stream_weights)
    return _round_robin(rankings, k)


def fuse_responses(
    responses: "Sequence[RetrievalResponse]",
    k: int,
    strategy: FusionStrategy = FusionStrategy.RRF,
    rrf_constant: float = 60.0,
    stream_weights: "Sequence[float] | None" = None,
) -> "RetrievalResponse":
    """Merge whole :class:`~repro.retrieval.base.RetrievalResponse`s.

    The agentic answerer's cross-hop merge: each hop's response is one
    stream, fused exactly like MR fuses per-modality streams.  Objects
    surfacing in several hops (likely members of the composed-concept
    neighbourhood) accumulate reciprocal-rank mass and float up.

    The merged response carries the first response's framework name, the
    summed work counters of every hop, and the union of degraded reasons;
    per-modality breakdowns and cost ledgers stay on the originals.
    """
    from repro.retrieval.base import RetrievalResponse, RetrievedItem

    if not responses:
        raise RetrievalError("fusion needs at least one response")
    fused = fuse_rankings(
        [response.ids for response in responses],
        [[item.score for item in response.items] for response in responses],
        k,
        strategy=strategy,
        rrf_constant=rrf_constant,
        stream_weights=stream_weights,
    )
    stats = SearchStats()
    for response in responses:
        stats.merge(response.stats)
    degraded: List[str] = []
    for response in responses:
        for reason in response.degraded_reasons:
            if reason not in degraded:
                degraded.append(reason)
    return RetrievalResponse(
        framework=responses[0].framework,
        items=[
            RetrievedItem(object_id=object_id, score=score, rank=rank)
            for rank, (object_id, score) in enumerate(fused)
        ],
        stats=stats,
        degraded_reasons=degraded,
    )
