"""Shared retrieval-framework interface and response types."""

from __future__ import annotations

import abc
import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.data.knowledge_base import KnowledgeBase
from repro.data.modality import Modality
from repro.data.objects import RawQuery
from repro.encoders.base import EncoderSet
from repro.errors import RetrievalError
from repro.index.base import SearchStats, VectorIndex

IndexBuilder = Callable[[], VectorIndex]
"""Zero-argument factory producing a fresh, unbuilt index instance."""

ObjectFilter = Callable[[int], bool]
"""Predicate over object ids used for filtered retrieval."""


def search_capabilities(index: VectorIndex) -> Set[str]:
    """The optional keyword arguments ``index.search`` accepts.

    Frameworks use this to decide whether per-query kernels, pruning, or
    result filters can be pushed into the traversal or need a fallback.
    """
    return set(inspect.signature(index.search).parameters)


def search_batch_capabilities(index: VectorIndex) -> Set[str]:
    """The optional keyword arguments ``index.search_batch`` accepts.

    The base-class default forwards ``**kwargs`` to :meth:`search`, so when
    a var-keyword parameter is present the serial capabilities apply too.
    """
    parameters = inspect.signature(index.search_batch).parameters
    names = set(parameters)
    if any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    ):
        names |= search_capabilities(index)
    return names


@dataclass
class RetrievedItem:
    """One retrieved object.

    Attributes:
        object_id: Id in the knowledge base.
        score: Framework-specific distance/fused score; smaller is better.
        rank: Zero-based final rank.
    """

    object_id: int
    score: float
    rank: int


@dataclass
class RetrievalResponse:
    """Result of one retrieval call.

    Attributes:
        framework: Name of the producing framework.
        items: Retrieved objects, best first.
        stats: Accumulated search-work counters (all sub-searches merged).
        per_modality_ids: For MR, the raw per-stream rankings before fusion
            (empty for single-search frameworks) — surfaced so the UI can
            explain where merged results came from.
        per_modality_distances: The matching per-stream distances, aligned
            with ``per_modality_ids``.  Distances within one stream are
            globally comparable (same encoder, same metric), which is what
            lets the shard router rebuild a global stream ranking from
            per-shard fragments and re-run fusion exactly.
        degraded_reasons: Non-empty when the response is partial — e.g.
            the shard router lost shards to open breakers and merged what
            remained.  Partial responses are never cached.
        cost: The per-query
            :class:`~repro.observability.costs.QueryCostProfile` when
            cost accounting is enabled, else None.  Never cached or
            copied — each call gets its own ledger.
    """

    framework: str
    items: List[RetrievedItem]
    stats: SearchStats = field(default_factory=SearchStats)
    per_modality_ids: Dict[Modality, List[int]] = field(default_factory=dict)
    per_modality_distances: Dict[Modality, List[float]] = field(
        default_factory=dict
    )
    degraded_reasons: List[str] = field(default_factory=list)
    cost: Optional[object] = None

    @property
    def ids(self) -> List[int]:
        """Retrieved object ids, best first."""
        return [item.object_id for item in self.items]

    def __len__(self) -> int:
        return len(self.items)


class RetrievalFramework(abc.ABC):
    """Lifecycle: ``setup`` once over a knowledge base, then ``retrieve``.

    Subclasses store whatever index structures they need during setup; the
    base class only tracks common bookkeeping.
    """

    #: Registry identifier ("mr", "je", "must").
    name: str = "framework"

    def __init__(self) -> None:
        self.kb: Optional[KnowledgeBase] = None
        self.encoder_set: Optional[EncoderSet] = None
        self.setup_seconds: float = 0.0
        self._deleted: set = set()

    @property
    def is_ready(self) -> bool:
        """True once :meth:`setup` has completed."""
        return self.kb is not None

    def _require_ready(self) -> None:
        if not self.is_ready:
            raise RetrievalError(
                f"framework {self.name!r} has not been set up; call setup() first"
            )

    @abc.abstractmethod
    def setup(
        self,
        kb: KnowledgeBase,
        encoder_set: EncoderSet,
        index_builder: IndexBuilder,
        weights: "Dict[Modality, float] | None" = None,
    ) -> None:
        """Encode ``kb`` and build the framework's index structures.

        Args:
            kb: The knowledge base to serve.
            encoder_set: Modality -> encoder assignment.
            index_builder: Factory for each index instance the framework
                needs (MR calls it once per modality).
            weights: Modality weights; only MUST uses them, the others
                accept and ignore them so callers can pass uniformly.
        """

    @abc.abstractmethod
    def retrieve(self, query: RawQuery, k: int, budget: int = 64) -> RetrievalResponse:
        """Return the top-``k`` objects for ``query``."""

    def retrieve_batch(
        self, queries: Sequence[RawQuery], k: int, budget: int = 64, **kwargs
    ) -> List[RetrievalResponse]:
        """Top-``k`` for every query; element ``i`` matches
        ``retrieve(queries[i], ...)`` exactly (same ids, same scores).

        Keyword arguments (``filter_fn``, ``weights``, ...) apply to the
        whole batch.  The default loops; the concrete frameworks override
        this to share encode and index dispatches across the batch.
        """
        return [self.retrieve(query, k, budget=budget, **kwargs) for query in queries]

    def add_object(self, obj) -> int:
        """Index one newly ingested object; returns its index id.

        The object's id must equal the framework's current corpus size
        (dense ids).  Frameworks whose indexes cannot grow propagate the
        underlying :class:`repro.errors.IndexError_`.
        """
        raise RetrievalError(
            f"framework {self.name!r} does not support incremental ingestion"
        )

    # ------------------------------------------------------------------
    # deletion (tombstones)
    # ------------------------------------------------------------------
    def remove_object(self, object_id: int) -> None:
        """Tombstone ``object_id``: it stays in the index structure (graph
        edges may still route *through* it) but never appears in results.

        Ids stay dense, so re-ingestion after deletion keeps working.
        """
        self._require_ready()
        if not isinstance(object_id, int) or object_id < 0:
            raise RetrievalError(f"invalid object id: {object_id!r}")
        self._deleted.add(object_id)

    @property
    def deleted_ids(self) -> frozenset:
        """The tombstoned object ids."""
        return frozenset(self._deleted)

    def restore_object(self, object_id: int) -> None:
        """Remove ``object_id``'s tombstone (the inverse of
        :meth:`remove_object`).

        Tombstoning never mutates index structures, so restoring is always
        safe; the coordinator uses it to roll back a failed removal.  A
        never-tombstoned id is a no-op.
        """
        self._require_ready()
        self._deleted.discard(object_id)

    def _compose_filter(self, filter_fn: "ObjectFilter | None") -> "ObjectFilter | None":
        """Fold tombstones into a result filter."""
        if not self._deleted:
            return filter_fn
        deleted = self._deleted
        if filter_fn is None:
            return lambda object_id: object_id not in deleted
        return lambda object_id: object_id not in deleted and filter_fn(object_id)

    def describe(self) -> str:
        """One-line summary for the status panel."""
        state = "ready" if self.is_ready else "not set up"
        return f"retrieval framework {self.name!r}: {state}"
