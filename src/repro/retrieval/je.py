"""Joint Embedding retrieval (JE): one vector per object, one search.

The ARTEMIS-style framework: a jointly-trained encoder (our simulated CLIP)
collapses all modalities of an object into a single shared-space vector, so
ordinary single-vector ANN machinery applies unchanged.  Its weakness is
the collapse itself — averaging modality vectors discards which modality
carried which detail, so queries whose modalities carry complementary
constraints (the paper's round-two refinements) lose precision.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.knowledge_base import KnowledgeBase
from repro.data.modality import Modality
from repro.data.objects import RawQuery
from repro.distance import SingleVectorKernel
from repro.encoders.base import EncoderSet
from repro.errors import RetrievalError
from repro.index.base import VectorIndex
from repro.observability import cost_stage, trace_span
from repro.retrieval.base import (
    IndexBuilder,
    RetrievalFramework,
    RetrievalResponse,
    RetrievedItem,
)
from repro.utils import l2_normalize


class JointEmbeddingRetrieval(RetrievalFramework):
    """Single index over fused joint-space vectors.

    Requires a *joint* encoder set (every modality served by one shared
    space encoder) — enforced at setup, mirroring the real-world constraint
    that JE needs a jointly trained model.
    """

    name = "je"

    def __init__(self) -> None:
        super().__init__()
        self._index: Optional[VectorIndex] = None

    @staticmethod
    def _fuse(vectors: Dict[Modality, np.ndarray]) -> np.ndarray:
        stacked = np.stack(list(vectors.values()))
        return l2_normalize(stacked.mean(axis=0))

    def setup(
        self,
        kb: KnowledgeBase,
        encoder_set: EncoderSet,
        index_builder: IndexBuilder,
        weights: "Dict[Modality, float] | None" = None,
    ) -> None:
        if not encoder_set.is_joint and len(encoder_set.modalities) > 1:
            raise RetrievalError(
                "joint-embedding retrieval requires a joint encoder set "
                f"(got {encoder_set.name!r} with per-modality spaces)"
            )
        start = time.perf_counter()
        joint_rows = [self._fuse(encoder_set.encode_object(obj)) for obj in kb]
        matrix = np.stack(joint_rows)
        kernel = SingleVectorKernel(matrix.shape[1])
        index = index_builder()
        index.build(matrix, kernel)
        self._index = index
        self.kb = kb
        self.encoder_set = encoder_set
        self.setup_seconds = time.perf_counter() - start

    def add_object(self, obj) -> int:
        """Fuse and insert one new object into the joint index."""
        self._require_ready()
        assert self.encoder_set is not None and self._index is not None
        if obj.object_id != self._index.size:
            raise RetrievalError(
                f"object id {obj.object_id} breaks dense ids "
                f"(index holds {self._index.size} vectors)"
            )
        return self._index.add(self._fuse(self.encoder_set.encode_object(obj)))

    def retrieve(
        self,
        query: RawQuery,
        k: int,
        budget: int = 64,
        filter_fn=None,
    ) -> RetrievalResponse:
        self._require_ready()
        assert self.encoder_set is not None and self._index is not None
        if k <= 0:
            raise RetrievalError(f"k must be positive, got {k}")
        with trace_span("encode"), cost_stage("encode"):
            query_vectors = self.encoder_set.encode_query(query)
            joint_query = self._fuse(query_vectors)
        filter_fn = self._compose_filter(filter_fn)
        with trace_span(
            "index-search", k=k, budget=budget
        ) as span, cost_stage("search"):
            if filter_fn is not None:
                outcome = self._index.search(
                    joint_query, k=k, budget=budget, admit=filter_fn
                )
            else:
                outcome = self._index.search(joint_query, k=k, budget=budget)
            span.set(
                hops=outcome.stats.hops,
                distance_evaluations=outcome.stats.distance_evaluations,
            )
        items = [
            RetrievedItem(object_id=object_id, score=distance, rank=rank)
            for rank, (object_id, distance) in enumerate(
                zip(outcome.ids, outcome.distances)
            )
        ]
        return RetrievalResponse(framework=self.name, items=items, stats=outcome.stats)

    def retrieve_batch(
        self,
        queries: Sequence[RawQuery],
        k: int,
        budget: int = 64,
        filter_fn=None,
    ) -> List[RetrievalResponse]:
        """Batched :meth:`retrieve`: queries are fused per-query (the exact
        serial floats), stacked, and resolved with one ``search_batch``."""
        self._require_ready()
        assert self.encoder_set is not None and self._index is not None
        if k <= 0:
            raise RetrievalError(f"k must be positive, got {k}")
        queries = list(queries)
        if not queries:
            return []
        with trace_span("encode", queries=len(queries)), cost_stage("encode"):
            joint_queries = np.stack(
                [
                    self._fuse(self.encoder_set.encode_query(query))
                    for query in queries
                ]
            )
        filter_fn = self._compose_filter(filter_fn)
        with trace_span(
            "index-search", k=k, budget=budget, queries=len(queries)
        ) as span, cost_stage("search"):
            if filter_fn is not None:
                outcomes = self._index.search_batch(
                    joint_queries, k=k, budget=budget, admit=filter_fn
                )
            else:
                outcomes = self._index.search_batch(joint_queries, k=k, budget=budget)
            span.set(
                hops=sum(o.stats.hops for o in outcomes),
                distance_evaluations=sum(
                    o.stats.distance_evaluations for o in outcomes
                ),
            )
        responses: List[RetrievalResponse] = []
        for outcome in outcomes:
            items = [
                RetrievedItem(object_id=object_id, score=distance, rank=rank)
                for rank, (object_id, distance) in enumerate(
                    zip(outcome.ids, outcome.distances)
                )
            ]
            responses.append(
                RetrievalResponse(
                    framework=self.name, items=items, stats=outcome.stats
                )
            )
        return responses

    def describe(self) -> str:
        base = super().describe()
        if self._index is not None:
            base += f", joint index {self._index.name!r} over {self._index.size} vectors"
        return base
