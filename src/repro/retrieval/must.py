"""MUST: merging-free multi-vector retrieval over a unified graph.

Objects keep one vector *per modality*; the unified navigation graph is
built over their weighted concatenation, with the modality weights coming
from the contrastive weight learner (or user input).  A query is encoded
per modality, concatenated under the same schema, and resolved in a single
graph traversal — no per-stream searches, no rank fusion, and incremental
scanning prunes partial distance computations along the way.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.knowledge_base import KnowledgeBase
from repro.data.modality import Modality
from repro.data.objects import RawQuery
from repro.distance import MultiVectorSchema, WeightedMultiVectorKernel
from repro.encoders.base import EncoderSet
from repro.errors import RetrievalError
from repro.index.base import VectorIndex
from repro.observability import cost_stage, trace_span
from repro.retrieval.base import (
    IndexBuilder,
    ObjectFilter,
    RetrievalFramework,
    RetrievalResponse,
    RetrievedItem,
    search_batch_capabilities,
    search_capabilities,
)


class MustRetrieval(RetrievalFramework):
    """The paper's framework: weighted multi-vector, merging-free search.

    Args:
        use_pruning: Enable incremental-scanning early termination during
            graph traversal (only takes effect on indexes that expose a
            ``use_pruning`` search flag; others ignore it).
    """

    name = "must"

    def __init__(self, use_pruning: bool = False) -> None:
        super().__init__()
        self.use_pruning = use_pruning
        self._index: Optional[VectorIndex] = None
        self._schema: Optional[MultiVectorSchema] = None
        self._kernel: Optional[WeightedMultiVectorKernel] = None

    @property
    def schema(self) -> MultiVectorSchema:
        """The concatenation schema (available after setup)."""
        if self._schema is None:
            raise RetrievalError("MUST has not been set up")
        return self._schema

    @property
    def weights(self) -> Dict[Modality, float]:
        """The modality weights in force (available after setup)."""
        if self._kernel is None:
            raise RetrievalError("MUST has not been set up")
        return self._kernel.weights_by_modality()

    def setup(
        self,
        kb: KnowledgeBase,
        encoder_set: EncoderSet,
        index_builder: IndexBuilder,
        weights: "Dict[Modality, float] | None" = None,
    ) -> None:
        start = time.perf_counter()
        corpus = encoder_set.encode_corpus(list(kb))
        schema = MultiVectorSchema(encoder_set.dims())
        kernel = WeightedMultiVectorKernel(schema, weights, prune=True)
        matrix = kernel.stack_corpus(corpus)
        index = index_builder()
        index.build(matrix, kernel)
        self._index = index
        self._schema = schema
        self._kernel = kernel
        self.kb = kb
        self.encoder_set = encoder_set
        self.setup_seconds = time.perf_counter() - start

    def add_object(self, obj) -> int:
        """Encode and insert one new object into the unified graph."""
        self._require_ready()
        assert self.encoder_set is not None
        assert self._index is not None and self._schema is not None
        if obj.object_id != self._index.size:
            raise RetrievalError(
                f"object id {obj.object_id} breaks dense ids "
                f"(index holds {self._index.size} vectors)"
            )
        vectors = self.encoder_set.encode_object(obj)
        return self._index.add(self._schema.concat(vectors))

    def retrieve(
        self,
        query: RawQuery,
        k: int,
        budget: int = 64,
        weights: "Dict[Modality, float] | None" = None,
        filter_fn: "ObjectFilter | None" = None,
    ) -> RetrievalResponse:
        """Top-``k`` retrieval.

        ``weights`` re-weights modalities for this query only ("modality
        weights at the query point"): the navigation graph is
        weight-agnostic structure, so per-query weights plug straight into
        the traversal when the index supports a kernel override, and are
        applied by re-ranking an over-fetched candidate set otherwise.

        ``filter_fn`` restricts results to object ids satisfying the
        predicate (metadata-filtered vector search); graph traversal still
        flows through non-matching vertices.
        """
        self._require_ready()
        assert self.encoder_set is not None
        assert self._index is not None and self._schema is not None
        assert self._kernel is not None
        if k <= 0:
            raise RetrievalError(f"k must be positive, got {k}")
        with trace_span("encode"), cost_stage("encode"):
            query_vectors = self.encoder_set.encode_query_full(query)
            concatenated = self._schema.concat(query_vectors)
        override = None
        if weights is not None:
            with trace_span("weight-inference", modalities=len(weights)):
                override = self._kernel.with_weights(weights)
        filter_fn = self._compose_filter(filter_fn)

        capabilities = search_capabilities(self._index)
        kwargs = {}
        if "use_pruning" in capabilities:
            kwargs["use_pruning"] = self.use_pruning
        push_kernel = override is not None and "kernel" in capabilities
        if push_kernel:
            kwargs["kernel"] = override
        push_filter = filter_fn is not None and "admit" in capabilities
        if push_filter:
            kwargs["admit"] = filter_fn

        rerank = override is not None and not push_kernel
        post_filter = filter_fn is not None and not push_filter
        fetch = k
        if rerank or post_filter:
            fetch = max(4 * k, k)
        with trace_span(
            "index-search", k=fetch, budget=budget
        ) as span, cost_stage("search"):
            outcome = self._index.search(concatenated, k=fetch, budget=budget, **kwargs)
            span.set(
                hops=outcome.stats.hops,
                distance_evaluations=outcome.stats.distance_evaluations,
            )
        if post_filter:
            keep = [i for i, object_id in enumerate(outcome.ids) if filter_fn(object_id)]
            outcome.ids = [outcome.ids[i] for i in keep]
            outcome.distances = [outcome.distances[i] for i in keep]
        if rerank and outcome.ids:
            with trace_span(
                "rerank", candidates=len(outcome.ids)
            ), cost_stage("fuse"):
                rescored = override.batch(
                    concatenated, self._index.vectors[outcome.ids]
                )
                # kind="stable" preserves candidate order on score ties,
                # exactly like the sorted(..., key=...) this replaces.
                order = np.argsort(rescored, kind="stable")
                outcome.ids = [outcome.ids[i] for i in order]
                outcome.distances = [float(rescored[i]) for i in order]
        outcome.ids = outcome.ids[:k]
        outcome.distances = outcome.distances[:k]

        items = [
            RetrievedItem(object_id=object_id, score=distance, rank=rank)
            for rank, (object_id, distance) in enumerate(
                zip(outcome.ids, outcome.distances)
            )
        ]
        return RetrievalResponse(framework=self.name, items=items, stats=outcome.stats)

    def retrieve_batch(
        self,
        queries: Sequence[RawQuery],
        k: int,
        budget: int = 64,
        weights: "Dict[Modality, float] | None" = None,
        filter_fn: "ObjectFilter | None" = None,
    ) -> List[RetrievalResponse]:
        """Batched :meth:`retrieve`: the whole batch is concatenated under
        one schema and resolved by a single lockstep graph traversal, with
        the same kernel-override / rerank / post-filter decisions as the
        serial path (reranks stay per-query — they already operate on a
        short candidate list)."""
        self._require_ready()
        assert self.encoder_set is not None
        assert self._index is not None and self._schema is not None
        assert self._kernel is not None
        if k <= 0:
            raise RetrievalError(f"k must be positive, got {k}")
        queries = list(queries)
        if not queries:
            return []
        with trace_span("encode", queries=len(queries)), cost_stage("encode"):
            query_vectors_list = self.encoder_set.encode_query_batch(queries)
            concatenated = np.stack(
                [
                    self._schema.concat(query_vectors)
                    for query_vectors in query_vectors_list
                ]
            )
        override = None
        if weights is not None:
            with trace_span("weight-inference", modalities=len(weights)):
                override = self._kernel.with_weights(weights)
        filter_fn = self._compose_filter(filter_fn)

        capabilities = search_batch_capabilities(self._index)
        kwargs = {}
        if "use_pruning" in capabilities:
            kwargs["use_pruning"] = self.use_pruning
        push_kernel = override is not None and "kernel" in capabilities
        if push_kernel:
            kwargs["kernel"] = override
        push_filter = filter_fn is not None and "admit" in capabilities
        if push_filter:
            kwargs["admit"] = filter_fn

        rerank = override is not None and not push_kernel
        post_filter = filter_fn is not None and not push_filter
        fetch = k
        if rerank or post_filter:
            fetch = max(4 * k, k)
        with trace_span(
            "index-search", k=fetch, budget=budget, queries=len(queries)
        ) as span, cost_stage("search"):
            outcomes = self._index.search_batch(
                concatenated, k=fetch, budget=budget, **kwargs
            )
            span.set(
                hops=sum(o.stats.hops for o in outcomes),
                distance_evaluations=sum(
                    o.stats.distance_evaluations for o in outcomes
                ),
            )
        responses: List[RetrievalResponse] = []
        for position, outcome in enumerate(outcomes):
            if post_filter:
                keep = [
                    i for i, object_id in enumerate(outcome.ids)
                    if filter_fn(object_id)
                ]
                outcome.ids = [outcome.ids[i] for i in keep]
                outcome.distances = [outcome.distances[i] for i in keep]
            if rerank and outcome.ids:
                with trace_span(
                    "rerank", candidates=len(outcome.ids)
                ), cost_stage("fuse"):
                    rescored = override.batch(
                        concatenated[position], self._index.vectors[outcome.ids]
                    )
                    order = np.argsort(rescored, kind="stable")
                    outcome.ids = [outcome.ids[i] for i in order]
                    outcome.distances = [float(rescored[i]) for i in order]
            outcome.ids = outcome.ids[:k]
            outcome.distances = outcome.distances[:k]
            items = [
                RetrievedItem(object_id=object_id, score=distance, rank=rank)
                for rank, (object_id, distance) in enumerate(
                    zip(outcome.ids, outcome.distances)
                )
            ]
            responses.append(
                RetrievalResponse(
                    framework=self.name, items=items, stats=outcome.stats
                )
            )
        return responses

    def describe(self) -> str:
        base = super().describe()
        if self._kernel is not None and self._index is not None:
            weight_text = ", ".join(
                f"{m.value}={w:.2f}" for m, w in self.weights.items()
            )
            base += (
                f", unified index {self._index.name!r} "
                f"(dim {self._schema.total_dim if self._schema else 0}), "
                f"weights [{weight_text}]"
            )
        return base
