"""Maximal-marginal-relevance result diversification.

Interactive result panels (the QA panel shows a handful of cards) benefit
from *varied* candidates: near-duplicates waste card slots and give the
feedback loop nothing to choose between.  MMR re-ranks an over-fetched
candidate list to trade relevance against novelty:

    score(x) = (1 - lambda) * relevance(x) - lambda * max_sim(x, selected)

with distances standing in (negated) for similarities.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.distance.kernel import DistanceKernel
from repro.errors import RetrievalError
from repro.retrieval.base import RetrievalResponse, RetrievedItem


def diversify(
    response: RetrievalResponse,
    vectors: np.ndarray,
    kernel: DistanceKernel,
    k: int,
    trade_off: float = 0.3,
) -> RetrievalResponse:
    """Re-rank ``response`` with MMR, keeping ``k`` items.

    Args:
        response: An over-fetched retrieval response (ideally 2-4x ``k``).
        vectors: The corpus matrix the ids index into.
        kernel: Distance kernel for item-item similarity.
        k: Items to keep.
        trade_off: 0 = pure relevance (no change beyond truncation),
            1 = pure diversity.

    Returns:
        A new response with re-ranked items; scores become MMR scores
        (smaller still better).
    """
    if not 0.0 <= trade_off <= 1.0:
        raise RetrievalError(f"trade_off must be in [0, 1], got {trade_off}")
    if k <= 0:
        raise RetrievalError(f"k must be positive, got {k}")
    if not response.items:
        return response

    ids = [item.object_id for item in response.items]
    relevance = np.array([item.score for item in response.items])
    # Normalise relevance to [0, 1] so the trade-off is scale-free.
    span = relevance.max() - relevance.min()
    relevance_norm = (relevance - relevance.min()) / (span if span > 0 else 1.0)
    pairwise = kernel.matrix(vectors[ids], vectors[ids])
    pair_span = pairwise.max() or 1.0
    novelty_norm = pairwise / pair_span  # larger distance = more novel

    selected: List[int] = []
    remaining = list(range(len(ids)))
    while remaining and len(selected) < k:
        best_row = None
        best_score = np.inf
        for row in remaining:
            if selected:
                closest = min(float(novelty_norm[row, s]) for s in selected)
            else:
                closest = 1.0
            score = (1.0 - trade_off) * float(relevance_norm[row]) + trade_off * (
                1.0 - closest
            )
            if score < best_score:
                best_score = score
                best_row = row
        assert best_row is not None
        selected.append(best_row)
        remaining.remove(best_row)

    items = [
        RetrievedItem(object_id=ids[row], score=float(relevance[row]), rank=rank)
        for rank, row in enumerate(selected)
    ]
    return RetrievalResponse(
        framework=response.framework,
        items=items,
        stats=response.stats,
        per_modality_ids=response.per_modality_ids,
    )
