"""Multi-streamed Retrieval (MR): per-modality searches merged afterwards.

The framework Milvus-style systems use for multi-modal data: each modality
gets its own single-vector index; a query searches every stream it has
content for, and the per-stream rankings are fused.  Its weakness — shown
in the paper's Figure 5 — is that fusion happens on *ranks*, after each
stream has already discarded cross-modal context: an object that is
mediocre in every single modality but best overall never surfaces.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

from repro.data.knowledge_base import KnowledgeBase
from repro.data.modality import Modality
from repro.data.objects import RawQuery
from repro.distance import SingleVectorKernel
from repro.encoders.base import EncoderSet
from repro.errors import RetrievalError
from repro.index.base import SearchStats, VectorIndex
from repro.observability import cost_stage, trace_span
from repro.retrieval.base import (
    IndexBuilder,
    RetrievalFramework,
    RetrievalResponse,
    RetrievedItem,
)
from repro.retrieval.fusion import FusionStrategy, fuse_rankings


class MultiStreamedRetrieval(RetrievalFramework):
    """One index per modality plus rank fusion.

    Args:
        fusion: Merge strategy for per-stream rankings.
        expansion: Each stream retrieves ``expansion * k`` candidates so the
            fused list has enough overlap material.
    """

    name = "mr"

    def __init__(
        self,
        fusion: FusionStrategy = FusionStrategy.RRF,
        expansion: int = 3,
    ) -> None:
        super().__init__()
        if expansion < 1:
            raise RetrievalError(f"expansion must be >= 1, got {expansion}")
        self.fusion = FusionStrategy.parse(fusion)
        self.expansion = expansion
        self._indexes: Dict[Modality, VectorIndex] = {}

    def setup(
        self,
        kb: KnowledgeBase,
        encoder_set: EncoderSet,
        index_builder: IndexBuilder,
        weights: "Dict[Modality, float] | None" = None,
    ) -> None:
        start = time.perf_counter()
        corpus = encoder_set.encode_corpus(list(kb))
        self._indexes = {}
        for modality, matrix in corpus.items():
            kernel = SingleVectorKernel(matrix.shape[1])
            index = index_builder()
            index.build(matrix, kernel)
            self._indexes[modality] = index
        self.kb = kb
        self.encoder_set = encoder_set
        self.setup_seconds = time.perf_counter() - start

    def add_object(self, obj) -> int:
        """Encode and insert one new object into every modality stream."""
        self._require_ready()
        assert self.encoder_set is not None
        sizes = {index.size for index in self._indexes.values()}
        if sizes != {obj.object_id}:
            raise RetrievalError(
                f"object id {obj.object_id} breaks dense ids "
                f"(streams hold {sorted(sizes)} vectors)"
            )
        vectors = self.encoder_set.encode_object(obj)
        new_id = -1
        for modality, vector in vectors.items():
            new_id = self._indexes[modality].add(vector)
        return new_id

    def retrieve(
        self,
        query: RawQuery,
        k: int,
        budget: int = 64,
        filter_fn=None,
        weights: "Dict[Modality, float] | None" = None,
    ) -> RetrievalResponse:
        """Top-``k`` retrieval; per-query ``weights`` scale each stream's
        contribution at fusion time (weighted RRF/CombSUM) — the best MR
        can do with modality importances, since each stream has already
        searched blind by the time weights can act."""
        self._require_ready()
        assert self.encoder_set is not None
        if k <= 0:
            raise RetrievalError(f"k must be positive, got {k}")
        with trace_span("encode"), cost_stage("encode"):
            query_vectors = self.encoder_set.encode_query_full(query)
        filter_fn = self._compose_filter(filter_fn)
        parsed_weights = None
        if weights is not None:
            parsed_weights = {Modality.parse(m): float(w) for m, w in weights.items()}

        rankings: List[List[int]] = []
        distances: List[List[float]] = []
        per_modality: Dict[Modality, List[int]] = {}
        per_modality_distances: Dict[Modality, List[float]] = {}
        stats = SearchStats()
        fetch = self.expansion * k
        for modality, vector in query_vectors.items():
            index = self._indexes.get(modality)
            if index is None:
                raise RetrievalError(
                    f"MR has no index for query modality {modality.value!r}"
                )
            with trace_span(
                "index-search", modality=modality.value, k=fetch,
                budget=max(budget, fetch),
            ) as span, cost_stage("search"):
                if filter_fn is not None:
                    outcome = index.search(
                        vector, k=fetch, budget=max(budget, fetch), admit=filter_fn
                    )
                else:
                    outcome = index.search(vector, k=fetch, budget=max(budget, fetch))
                span.set(
                    hops=outcome.stats.hops,
                    distance_evaluations=outcome.stats.distance_evaluations,
                )
            rankings.append(outcome.ids)
            distances.append(outcome.distances)
            per_modality[modality] = list(outcome.ids)
            per_modality_distances[modality] = [float(d) for d in outcome.distances]
            stats.merge(outcome.stats)

        stream_weights = None
        if parsed_weights is not None:
            stream_weights = [
                parsed_weights.get(modality, 1.0) for modality in per_modality
            ]
        with trace_span(
            "fusion", strategy=self.fusion.value, streams=len(rankings)
        ), cost_stage("fuse"):
            fused = fuse_rankings(
                rankings,
                distances,
                k,
                strategy=self.fusion,
                stream_weights=stream_weights,
            )
        items = [
            RetrievedItem(object_id=object_id, score=score, rank=rank)
            for rank, (object_id, score) in enumerate(fused)
        ]
        return RetrievalResponse(
            framework=self.name,
            items=items,
            stats=stats,
            per_modality_ids=per_modality,
            per_modality_distances=per_modality_distances,
        )

    def retrieve_batch(
        self,
        queries: Sequence[RawQuery],
        k: int,
        budget: int = 64,
        filter_fn=None,
        weights: "Dict[Modality, float] | None" = None,
    ) -> List[RetrievalResponse]:
        """Batched :meth:`retrieve`: one ``search_batch`` per modality
        stream over the queries that carry that modality, then per-query
        rank fusion.  Every stream row is bit-identical to the serial
        search, and fusion consumes identical inputs — so each response
        matches the serial one exactly."""
        self._require_ready()
        assert self.encoder_set is not None
        if k <= 0:
            raise RetrievalError(f"k must be positive, got {k}")
        queries = list(queries)
        if not queries:
            return []
        with trace_span("encode", queries=len(queries)), cost_stage("encode"):
            query_vectors_list = self.encoder_set.encode_query_batch(queries)
        filter_fn = self._compose_filter(filter_fn)
        parsed_weights = None
        if weights is not None:
            parsed_weights = {Modality.parse(m): float(w) for m, w in weights.items()}
        fetch = self.expansion * k

        # Group query rows per modality stream (queries may be partial).
        stream_members: Dict[Modality, List[int]] = {}
        for position, query_vectors in enumerate(query_vectors_list):
            for modality in query_vectors:
                if modality not in self._indexes:
                    raise RetrievalError(
                        f"MR has no index for query modality {modality.value!r}"
                    )
                stream_members.setdefault(modality, []).append(position)

        outcomes: Dict[Modality, Dict[int, object]] = {}
        for modality, members in stream_members.items():
            index = self._indexes[modality]
            matrix = np.stack(
                [query_vectors_list[position][modality] for position in members]
            )
            with trace_span(
                "index-search", modality=modality.value, k=fetch,
                budget=max(budget, fetch), queries=len(members),
            ) as span, cost_stage("search"):
                if filter_fn is not None:
                    results = index.search_batch(
                        matrix, k=fetch, budget=max(budget, fetch), admit=filter_fn
                    )
                else:
                    results = index.search_batch(
                        matrix, k=fetch, budget=max(budget, fetch)
                    )
                span.set(
                    hops=sum(r.stats.hops for r in results),
                    distance_evaluations=sum(
                        r.stats.distance_evaluations for r in results
                    ),
                )
            outcomes[modality] = dict(zip(members, results))

        responses: List[RetrievalResponse] = []
        for position, query_vectors in enumerate(query_vectors_list):
            rankings: List[List[int]] = []
            distances: List[List[float]] = []
            per_modality: Dict[Modality, List[int]] = {}
            per_modality_distances: Dict[Modality, List[float]] = {}
            stats = SearchStats()
            for modality in query_vectors:
                outcome = outcomes[modality][position]
                rankings.append(outcome.ids)
                distances.append(outcome.distances)
                per_modality[modality] = list(outcome.ids)
                per_modality_distances[modality] = [
                    float(d) for d in outcome.distances
                ]
                stats.merge(outcome.stats)
            stream_weights = None
            if parsed_weights is not None:
                stream_weights = [
                    parsed_weights.get(modality, 1.0) for modality in per_modality
                ]
            with trace_span(
                "fusion", strategy=self.fusion.value, streams=len(rankings)
            ), cost_stage("fuse"):
                fused = fuse_rankings(
                    rankings,
                    distances,
                    k,
                    strategy=self.fusion,
                    stream_weights=stream_weights,
                )
            items = [
                RetrievedItem(object_id=object_id, score=score, rank=rank)
                for rank, (object_id, score) in enumerate(fused)
            ]
            responses.append(
                RetrievalResponse(
                    framework=self.name,
                    items=items,
                    stats=stats,
                    per_modality_ids=per_modality,
                    per_modality_distances=per_modality_distances,
                )
            )
        return responses

    def describe(self) -> str:
        base = super().describe()
        if self._indexes:
            streams = ", ".join(
                f"{m.value}:{idx.name}" for m, idx in self._indexes.items()
            )
            base += f", streams [{streams}], fusion {self.fusion.value}"
        return base
