"""The three multi-modal retrieval frameworks the paper compares.

* :class:`MultiStreamedRetrieval` (MR) — one single-vector index per
  modality; per-modality searches are merged afterwards (Milvus-style).
* :class:`JointEmbeddingRetrieval` (JE) — all modalities collapse into one
  joint CLIP-space vector; a single single-vector search.
* :class:`MustRetrieval` (MUST) — one unified navigation graph over
  concatenated per-modality vectors with learned weights; a single
  *merging-free* multi-vector search with incremental pruning.

All three share the same ``setup -> retrieve`` lifecycle so the MQA system
can swap them from the configuration panel.
"""

from repro.retrieval.base import (
    ObjectFilter,
    RetrievalFramework,
    RetrievalResponse,
    RetrievedItem,
    search_capabilities,
)
from repro.retrieval.diversify import diversify
from repro.retrieval.fusion import FusionStrategy, fuse_rankings, fuse_responses
from repro.retrieval.je import JointEmbeddingRetrieval
from repro.retrieval.mr import MultiStreamedRetrieval
from repro.retrieval.must import MustRetrieval
from repro.retrieval.registry import (
    available_frameworks,
    build_framework,
    register_framework,
)

__all__ = [
    "FusionStrategy",
    "JointEmbeddingRetrieval",
    "MultiStreamedRetrieval",
    "MustRetrieval",
    "ObjectFilter",
    "RetrievalFramework",
    "RetrievalResponse",
    "RetrievedItem",
    "available_frameworks",
    "build_framework",
    "diversify",
    "fuse_rankings",
    "fuse_responses",
    "register_framework",
    "search_capabilities",
]
