"""Pluggable retrieval-framework registry."""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Tuple

from repro.errors import ConfigurationError
from repro.retrieval.base import RetrievalFramework
from repro.retrieval.fusion import FusionStrategy
from repro.retrieval.je import JointEmbeddingRetrieval
from repro.retrieval.mr import MultiStreamedRetrieval
from repro.retrieval.must import MustRetrieval

FrameworkFactory = Callable[[Mapping[str, Any]], RetrievalFramework]

_REGISTRY: Dict[str, FrameworkFactory] = {}


def register_framework(name: str, factory: FrameworkFactory) -> None:
    """Register ``factory`` under ``name`` (overwrites an existing entry)."""
    if not name:
        raise ConfigurationError("framework name must be non-empty")
    _REGISTRY[name] = factory


def available_frameworks() -> Tuple[str, ...]:
    """Names of all registered frameworks."""
    return tuple(sorted(_REGISTRY))


def build_framework(
    name: str, params: "Mapping[str, Any] | None" = None
) -> RetrievalFramework:
    """Instantiate the framework called ``name`` with ``params``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        valid = ", ".join(available_frameworks())
        raise ConfigurationError(
            f"unknown retrieval framework {name!r}; available: {valid}"
        ) from None
    return factory(dict(params or {}))


def _build_mr(params: Mapping[str, Any]) -> MultiStreamedRetrieval:
    fusion = FusionStrategy.parse(params.get("fusion", FusionStrategy.RRF))
    expansion = int(params.get("expansion", 3))
    return MultiStreamedRetrieval(fusion=fusion, expansion=expansion)


register_framework("mr", _build_mr)
register_framework("je", lambda p: JointEmbeddingRetrieval())
register_framework(
    "must", lambda p: MustRetrieval(use_pruning=bool(p.get("use_pruning", False)))
)
