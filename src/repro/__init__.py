"""MQA reproduction: interactive multi-modal query answering with
retrieval-augmented LLMs (Wang et al., PVLDB 17(12), 2024).

The public API re-exports the pieces a downstream user needs:

>>> from repro import DatasetSpec, MQAConfig, MQASystem, generate_knowledge_base
>>> kb = generate_knowledge_base(DatasetSpec(domain="scenes", size=200))
>>> system = MQASystem.from_knowledge_base(kb, MQAConfig())   # doctest: +SKIP
>>> answer = system.ask("foggy clouds over mountains")        # doctest: +SKIP
"""

from repro.core import Answer, Coordinator, DialogueSession, MQAConfig, MQASystem, WeightMode
from repro.data import (
    DatasetSpec,
    KnowledgeBase,
    Modality,
    MultiModalObject,
    RawQuery,
    generate_knowledge_base,
    load_knowledge_base,
    save_knowledge_base,
)

__version__ = "1.0.0"

__all__ = [
    "Answer",
    "Coordinator",
    "DatasetSpec",
    "DialogueSession",
    "KnowledgeBase",
    "MQAConfig",
    "MQASystem",
    "Modality",
    "MultiModalObject",
    "RawQuery",
    "WeightMode",
    "__version__",
    "generate_knowledge_base",
    "load_knowledge_base",
    "save_knowledge_base",
]
