"""Vector weight learning: discovering how much each modality matters.

MUST measures multi-modal similarity as a *weighted* sum of per-modality
distances.  This package learns those weights with contrastive learning over
augmented views of knowledge-base objects — no ground-truth latents, no
labels — and also supports fixed, user-specified weights (the "tailored
weight adjustments" option of the configuration panel).
"""

from repro.weights.contrastive import (
    VectorWeightLearner,
    WeightLearningConfig,
    WeightLearningReport,
)
from repro.weights.fixed import equal_weights, fixed_weights
from repro.weights.sampler import ContrastiveBatch, ViewPairSampler

__all__ = [
    "ContrastiveBatch",
    "VectorWeightLearner",
    "ViewPairSampler",
    "WeightLearningConfig",
    "WeightLearningReport",
    "equal_weights",
    "fixed_weights",
]
