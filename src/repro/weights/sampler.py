"""Contrastive pair sampling for the weight learner.

Positives are *augmented views*: the same object re-rendered with fresh
modality noise and re-encoded.  Negatives are other objects drawn uniformly.
Neither uses the hidden ground-truth latent, so the learner sees exactly
what a practitioner with an unlabelled corpus would see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.data.knowledge_base import KnowledgeBase
from repro.data.modality import Modality
from repro.encoders.base import EncoderSet
from repro.errors import DataError
from repro.utils import derive_rng


@dataclass
class ContrastiveBatch:
    """One training batch of per-modality distance features.

    For each modality ``m``, ``positive[m]`` holds the anchor-to-positive
    squared distances (shape ``(batch,)``) and ``negative[m]`` the
    anchor-to-negative distances (shape ``(batch, n_negatives)``).  The loss
    only needs these per-modality distances, never the vectors themselves.
    """

    positive: Dict[Modality, np.ndarray]
    negative: Dict[Modality, np.ndarray]

    @property
    def size(self) -> int:
        first = next(iter(self.positive.values()))
        return int(first.shape[0])


class ViewPairSampler:
    """Samples contrastive batches from a knowledge base + encoder set."""

    def __init__(
        self,
        kb: KnowledgeBase,
        encoder_set: EncoderSet,
        n_negatives: int = 8,
        seed: int = 0,
    ) -> None:
        if len(kb) < 2:
            raise DataError("contrastive sampling needs at least two objects")
        if n_negatives < 1:
            raise ValueError(f"n_negatives must be >= 1, got {n_negatives}")
        self.kb = kb
        self.encoder_set = encoder_set
        self.n_negatives = n_negatives
        self.seed = seed
        self._anchor_vectors = encoder_set.encode_corpus(list(kb))
        self._modalities = list(self._anchor_vectors)

    def _encode_view(self, object_id: int, view_seed: int) -> Dict[Modality, np.ndarray]:
        content = self.kb.render_view(object_id, view_seed)
        vectors: Dict[Modality, np.ndarray] = {}
        for modality in self._modalities:
            encoder = self.encoder_set.encoder_for(modality)
            vectors[modality] = encoder.encode(modality, content[modality])
        return vectors

    def sample(self, batch_size: int, step: int) -> ContrastiveBatch:
        """Draw a deterministic batch for training step ``step``."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        rng = derive_rng(self.seed, "contrastive-batch", step)
        n = len(self.kb)
        anchors = rng.integers(0, n, size=batch_size)

        positive: Dict[Modality, List[float]] = {m: [] for m in self._modalities}
        negative: Dict[Modality, List[List[float]]] = {m: [] for m in self._modalities}
        for anchor in anchors:
            anchor = int(anchor)
            view = self._encode_view(anchor, view_seed=int(rng.integers(1 << 30)))
            negatives = []
            while len(negatives) < self.n_negatives:
                candidate = int(rng.integers(n))
                if candidate != anchor:
                    negatives.append(candidate)
            for modality in self._modalities:
                anchor_vec = self._anchor_vectors[modality][anchor]
                diff = anchor_vec - view[modality]
                positive[modality].append(float(diff @ diff))
                row = []
                for neg in negatives:
                    diff = anchor_vec - self._anchor_vectors[modality][neg]
                    row.append(float(diff @ diff))
                negative[modality].append(row)

        return ContrastiveBatch(
            positive={m: np.asarray(v) for m, v in positive.items()},
            negative={m: np.asarray(v) for m, v in negative.items()},
        )
