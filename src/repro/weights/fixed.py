"""Fixed modality weightings (the non-learned alternative)."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.data.modality import Modality
from repro.errors import ConfigurationError


def equal_weights(modalities: Sequence[Modality]) -> Dict[Modality, float]:
    """Weight every modality 1.0 — the default when learning is disabled."""
    if not modalities:
        raise ConfigurationError("need at least one modality")
    return {Modality.parse(m): 1.0 for m in modalities}


def fixed_weights(
    modalities: Sequence[Modality],
    values: Mapping[str, float],
) -> Dict[Modality, float]:
    """Validate user-specified weights against the configured modalities.

    Args:
        modalities: The modalities the system is configured with.
        values: User input, keyed by modality name.

    Returns:
        A complete modality -> weight mapping.

    Raises:
        ConfigurationError: On missing modalities, unknown extras, negative
            values, or an all-zero weighting.
    """
    modalities = [Modality.parse(m) for m in modalities]
    parsed = {Modality.parse(k): float(v) for k, v in values.items()}
    missing = [m.value for m in modalities if m not in parsed]
    if missing:
        raise ConfigurationError(f"weights missing for modalities: {', '.join(missing)}")
    extras = [m.value for m in parsed if m not in modalities]
    if extras:
        raise ConfigurationError(f"weights given for unconfigured modalities: {', '.join(extras)}")
    if any(v < 0 for v in parsed.values()):
        raise ConfigurationError("modality weights must be non-negative")
    if all(v == 0 for v in parsed.values()):
        raise ConfigurationError("modality weights must not all be zero")
    return {m: parsed[m] for m in modalities}
