"""The contrastive vector-weight-learning model.

Learns per-modality weights ``w`` for the distance

    d_w(a, x) = sum_m  w_m * d_m(a, x)

by minimising an InfoNCE-style loss over (anchor, positive-view, negatives)
triples:

    L = d_w(a, p) / tau + log sum_x exp(-d_w(a, x) / tau)

where ``x`` ranges over the positive and the negatives.  Because ``d_w`` is
linear in ``w``, the gradient has the closed form

    dL/dw_m = ( d_m(a, p) - sum_x softmax_x(-d_w/tau) * d_m(a, x) ) / tau

so training is plain SGD with momentum, followed by projection onto the
scaled simplex (weights non-negative, summing to the modality count).  A
noisy modality inflates ``d_m(a, p)`` relative to its negatives' spread, so
its weight is pushed down — exactly the behaviour the paper describes for
"capturing individual modality importance through contrastive learning".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.data.knowledge_base import KnowledgeBase
from repro.data.modality import Modality
from repro.encoders.base import EncoderSet
from repro.utils import project_to_simplex
from repro.weights.sampler import ContrastiveBatch, ViewPairSampler


@dataclass(frozen=True)
class WeightLearningConfig:
    """Hyper-parameters of the weight learner.

    Attributes:
        steps: Number of SGD steps.
        batch_size: Anchors per step.
        n_negatives: Negatives per anchor.
        learning_rate: SGD step size.
        momentum: Heavy-ball momentum coefficient.
        temperature: Softmax temperature ``tau`` of the InfoNCE loss.
        uniform_pull: Strength of the regulariser pulling weights toward the
            uniform weighting.  The raw InfoNCE objective is linear in the
            weights, so its simplex optimum is a vertex (one modality takes
            everything); the quadratic pull ``uniform_pull * |w - 1|^2 / 2``
            yields interior solutions that still order modalities by
            informativeness.
        seed: Sampling seed.
    """

    steps: int = 60
    batch_size: int = 32
    n_negatives: int = 8
    learning_rate: float = 0.05
    momentum: float = 0.8
    temperature: float = 0.5
    uniform_pull: float = 0.15
    seed: int = 0

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {self.momentum}")
        if self.temperature <= 0:
            raise ValueError(f"temperature must be positive, got {self.temperature}")
        if self.uniform_pull < 0:
            raise ValueError(f"uniform_pull must be >= 0, got {self.uniform_pull}")


@dataclass
class WeightLearningReport:
    """Outcome of a training run.

    Attributes:
        weights: Learned modality -> weight mapping (sums to modality count).
        loss_curve: Mean batch loss per step.
        steps: Steps actually executed.
    """

    weights: Dict[Modality, float]
    loss_curve: List[float] = field(default_factory=list)
    steps: int = 0

    @property
    def converged(self) -> bool:
        """Heuristic: loss in the last quarter is below the first quarter."""
        if len(self.loss_curve) < 8:
            return False
        quarter = len(self.loss_curve) // 4
        return float(np.mean(self.loss_curve[-quarter:])) < float(
            np.mean(self.loss_curve[:quarter])
        )


class VectorWeightLearner:
    """Trains modality weights for one knowledge base + encoder set."""

    def __init__(self, config: WeightLearningConfig = WeightLearningConfig()) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # loss and gradient
    # ------------------------------------------------------------------
    def _loss_and_gradient(
        self,
        weights: np.ndarray,
        batch: ContrastiveBatch,
        modalities: List[Modality],
    ) -> "tuple[float, np.ndarray]":
        tau = self.config.temperature
        # Weighted distances: positive (batch,), negatives (batch, n_neg).
        pos = np.zeros_like(batch.positive[modalities[0]])
        neg = np.zeros_like(batch.negative[modalities[0]])
        for w, modality in zip(weights, modalities):
            pos += w * batch.positive[modality]
            neg += w * batch.negative[modality]

        # Log-sum-exp over {positive} ∪ negatives, numerically stabilised.
        all_d = np.concatenate([pos[:, None], neg], axis=1)
        logits = -all_d / tau
        max_logit = logits.max(axis=1, keepdims=True)
        log_z = max_logit[:, 0] + np.log(np.exp(logits - max_logit).sum(axis=1))
        loss = float(np.mean(pos / tau + log_z))

        softmax = np.exp(logits - max_logit)
        softmax /= softmax.sum(axis=1, keepdims=True)

        gradient = np.zeros(len(modalities))
        for i, modality in enumerate(modalities):
            d_all = np.concatenate(
                [batch.positive[modality][:, None], batch.negative[modality]], axis=1
            )
            expected = (softmax * d_all).sum(axis=1)
            gradient[i] = float(np.mean(batch.positive[modality] - expected)) / tau
        pull = self.config.uniform_pull
        if pull:
            loss += 0.5 * pull * float(((weights - 1.0) ** 2).sum())
            gradient += pull * (weights - 1.0)
        return loss, gradient

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, kb: KnowledgeBase, encoder_set: EncoderSet) -> WeightLearningReport:
        """Learn modality weights for ``kb`` under ``encoder_set``."""
        sampler = ViewPairSampler(
            kb,
            encoder_set,
            n_negatives=self.config.n_negatives,
            seed=self.config.seed,
        )
        modalities = list(encoder_set.modalities)
        count = len(modalities)
        weights = np.ones(count)
        velocity = np.zeros(count)
        loss_curve: List[float] = []

        for step in range(self.config.steps):
            batch = sampler.sample(self.config.batch_size, step)
            loss, gradient = self._loss_and_gradient(weights, batch, modalities)
            velocity = self.config.momentum * velocity - self.config.learning_rate * gradient
            weights = project_to_simplex(weights + velocity, total=float(count))
            loss_curve.append(loss)

        learned = {m: float(w) for m, w in zip(modalities, weights)}
        return WeightLearningReport(weights=learned, loss_curve=loss_curve, steps=self.config.steps)
