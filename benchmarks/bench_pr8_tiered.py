"""PR 8 — tiered beyond-RAM serving: recall / latency / memory Pareto.

Claims pinned here:

* **Beyond-RAM regime.**  Every tiered configuration keeps the
  full-precision matrix at least 4x larger than the resident budget
  (quantized codes + per-dimension ranges) — the traversal tier really
  is the only thing that has to fit in memory.
* **Rerank restores quality.**  On a 1000-vector corpus the best
  tiered configuration reaches recall@10 of at least 0.9x the
  full-precision index's recall@10 at the same traversal budget, and
  the sweep across SQ8/SQ4 x rerank factors draws the Pareto curve of
  recall vs latency vs resident bytes.
* **Disabled mode is free.**  With ``tiered`` off the only new work per
  query is the dispatch check in ``StarlingIndex.search``; the
  estimated overhead must stay under 1%.
* **Tiered-off ids are bit-identical to the seed.**  A loadgen run with
  every tiered knob set to non-default values but ``tiered=False``
  returns exactly the same read result ids as a run that never mentions
  tiering — the knobs are inert unless the tier is enabled.

Results go to stdout, ``benchmarks/results/``, and ``BENCH_PR8.json`` at
the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.distance import SingleVectorKernel
from repro.evaluation import ExperimentTable, exact_knn
from repro.index import StarlingIndex, StarlingParams, TieredParams
from repro.index.vamana import VamanaParams
from repro.server.loadgen import run_loadgen

from benchmarks.conftest import report

BENCH_JSON = Path(__file__).parent.parent / "BENCH_PR8.json"

N, DIMS = 1000, 32
K = 10
BUDGET = 64
N_QUERIES = 30
ROUNDS = 4
INNER = VamanaParams(max_degree=10, candidate_pool=20, build_budget=40)
SWEEP = [(8, 1), (8, 2), (8, 4), (4, 2), (4, 4), (4, 8)]
#: Work a query crosses with tiering off: the ``tiered is None`` dispatch
#: in ``search``/``search_batch`` plus the per-search charging-closure
#: setup — rounded up for headroom.
DISABLED_SITES_PER_QUERY = 4

LOADGEN_KWARGS = dict(
    workers=1,
    queries=40,
    write_every=10,
    domain="scenes",
    size=240,
    seed=7,
    llm_latency_ms=0.0,
    k=5,
    index="starling",
)
STARLING_PARAMS = {
    "block_size": 8,
    "cache_blocks": 4,
    "inner": {"max_degree": 8, "candidate_pool": 16, "build_budget": 24},
}


def _world():
    rng = np.random.default_rng(11)
    vectors = rng.normal(size=(N + N_QUERIES, DIMS))
    vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
    return vectors[:N], vectors[N:]


def _build(corpus, kernel, tiered=None):
    index = StarlingIndex(
        StarlingParams(block_size=8, cache_blocks=8, inner=INNER, tiered=tiered)
    )
    index.build(corpus, kernel)
    return index


def _recall_at_k(index, queries, truth) -> float:
    hits = 0
    for query, expected in zip(queries, truth):
        ids = index.search(query, k=K, budget=BUDGET).ids
        hits += len(set(ids) & set(expected))
    return hits / (K * len(truth))


def _mean_query_seconds(index, queries, rounds: int = ROUNDS) -> float:
    def block() -> float:
        start = time.perf_counter()
        for query in queries:
            index.search(query, k=K, budget=BUDGET)
        return (time.perf_counter() - start) / len(queries)

    block()  # warm-up
    return min(block() for _ in range(rounds))


def _disabled_site_seconds(index, calls: int = 200_000) -> float:
    """Cost of one tiered-off dispatch site (attribute read + None check)."""
    start = time.perf_counter()
    for _ in range(calls):
        if index.tiered is not None:  # pragma: no cover - never taken
            raise AssertionError
    return (time.perf_counter() - start) / calls


def test_benchmark_pr8_tiered():
    corpus, queries = _world()
    kernel = SingleVectorKernel(DIMS)
    truth = exact_knn(corpus, kernel, queries, k=K)

    # -- full-precision baseline ----------------------------------------
    plain = _build(corpus, kernel)
    plain_recall = _recall_at_k(plain, queries, truth)
    plain_ms = _mean_query_seconds(plain, queries) * 1000
    full_bytes = corpus.nbytes

    site_cost = _disabled_site_seconds(plain)
    estimated_overhead_pct = (
        DISABLED_SITES_PER_QUERY * site_cost / (plain_ms / 1000) * 100.0
    )

    # -- tiered Pareto sweep --------------------------------------------
    pareto = []
    for bits, factor in SWEEP:
        index = _build(
            corpus, kernel, tiered=TieredParams(bits=bits, rerank_factor=factor)
        )
        snapshot = index.tiered.snapshot()
        pareto.append(
            {
                "bits": bits,
                "rerank_factor": factor,
                "recall_at_10": round(_recall_at_k(index, queries, truth), 4),
                "mean_query_ms": round(
                    _mean_query_seconds(index, queries) * 1000, 3
                ),
                "resident_bytes": snapshot["resident_bytes"],
                "full_bytes": snapshot["full_bytes"],
                "compression_ratio": round(snapshot["compression_ratio"], 2),
            }
        )
        index.tiered.close()
    best_recall = max(row["recall_at_10"] for row in pareto)

    # -- tiered-off loadgen parity with the seed behaviour ---------------
    runs = {
        "seed": run_loadgen(index_params=STARLING_PARAMS, **LOADGEN_KWARGS),
        "off": run_loadgen(
            index_params=STARLING_PARAMS,
            tiered=False,
            quantize_bits=4,
            rerank_factor=8,
            mmap_cache_blocks=64,
            **LOADGEN_KWARGS,
        ),
        "on": run_loadgen(
            index_params=STARLING_PARAMS, tiered=True, **LOADGEN_KWARGS
        ),
    }
    for name, run in runs.items():
        assert run["errors"] == 0, (name, run["error_messages"])
    assert runs["seed"]["read_ids"] == runs["off"]["read_ids"]
    assert runs["seed"]["tiered"] is None and runs["off"]["tiered"] is None
    ledger = runs["on"]["tiered"]["totals"]
    assert ledger["stores"] >= 1 and ledger["reranked_rows"] > 0

    table = ExperimentTable(
        f"PR8: tiered serving (n={N} d={DIMS}, k={K}, budget={BUDGET})",
        ["config", "recall@10", "ms/query", "resident B", "x smaller"],
    )
    table.add_row(
        ["full precision", round(plain_recall, 4), round(plain_ms, 3), full_bytes, 1.0]
    )
    for row in pareto:
        table.add_row(
            [
                f"sq{row['bits']} rerank x{row['rerank_factor']}",
                row["recall_at_10"],
                row["mean_query_ms"],
                row["resident_bytes"],
                row["compression_ratio"],
            ]
        )
    table.add_row(["est. disabled overhead %", round(estimated_overhead_pct, 4), "", "", ""])
    report(table)

    BENCH_JSON.write_text(
        json.dumps(
            {
                "corpus": {"rows": N, "dims": DIMS, "full_bytes": full_bytes},
                "full_precision": {
                    "recall_at_10": round(plain_recall, 4),
                    "mean_query_ms": round(plain_ms, 3),
                },
                "pareto": pareto,
                "best_tiered_recall_at_10": best_recall,
                "recall_floor": round(0.9 * plain_recall, 4),
                "min_full_to_resident_ratio": min(
                    row["full_bytes"] / row["resident_bytes"] for row in pareto
                ),
                "disabled_site_ns": round(site_cost * 1e9, 2),
                "disabled_sites_per_query": DISABLED_SITES_PER_QUERY,
                "estimated_disabled_overhead_pct": round(
                    estimated_overhead_pct, 4
                ),
                "tiered_off_ids_identical": True,
                "loadgen_tiered_totals": ledger,
            },
            indent=2,
        )
        + "\n"
    )

    # Beyond-RAM regime: full precision >= 4x the resident budget.
    for row in pareto:
        assert row["full_bytes"] >= 4 * row["resident_bytes"], row
    # Rerank restores quality.
    assert best_recall >= 0.9 * plain_recall, (best_recall, plain_recall)
    # Disabled mode is free.
    assert estimated_overhead_pct < 1.0, (
        f"tiered-off dispatch adds {estimated_overhead_pct:.3f}% per query"
    )
