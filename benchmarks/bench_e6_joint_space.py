"""E6 — joint-space capacity ablation (why JE hits a ceiling).

Sweeps the simulated CLIP's output dimensionality — the capacity of the
jointly-trained space — and measures JE's recall, alongside MUST running on
*unimodal* encoders, which is insulated from the joint space entirely.
Expected shape: JE tracks the joint space's capacity and degrades as it
compresses, while the unimodal-MUST line stays flat; this is the mechanism
behind Figure 5's "JE underperforms" and is exactly the trade the paper's
multi-vector representation avoids.
"""

from __future__ import annotations

import pytest

from repro.data import DatasetSpec, Modality, generate_knowledge_base
from repro.encoders import EncoderSet, SimulatedClipEncoder, build_encoder_set
from repro.evaluation import ExperimentTable, composed_queries, evaluate_framework
from repro.index import build_index
from repro.retrieval import build_framework
from repro.weights import VectorWeightLearner

from benchmarks.conftest import FAST_LEARNING, HNSW_PARAMS, report

K = 10
N_QUERIES = 30
CLIP_DIMS = (8, 16, 32, 48)


@pytest.fixture(scope="module")
def sweep():
    kb = generate_knowledge_base(DatasetSpec(domain="scenes", size=400, seed=7))
    workload = composed_queries(kb, N_QUERIES, k=K, seed=2)
    builder = lambda: build_index("hnsw", HNSW_PARAMS)

    je_recalls = {}
    for dim in CLIP_DIMS:
        clip = SimulatedClipEncoder(kb.render_model.image, output_dim=dim, seed=3)
        encoder_set = EncoderSet(
            {Modality.TEXT: clip, Modality.IMAGE: clip}, name=f"clip-{dim}d"
        )
        framework = build_framework("je")
        framework.setup(kb, encoder_set, builder)
        je_recalls[dim] = evaluate_framework(framework, workload, k=K).recall

    unimodal = build_encoder_set("unimodal-strong", kb, seed=3)
    weights = VectorWeightLearner(FAST_LEARNING).fit(kb, unimodal).weights
    must = build_framework("must")
    must.setup(kb, unimodal, builder, weights=weights)
    must_recall = evaluate_framework(must, workload, k=K).recall
    return je_recalls, must_recall


def test_benchmark_e6(benchmark, sweep):
    """Regenerates the capacity sweep and times one JE setup."""
    je_recalls, must_recall = sweep
    table = ExperimentTable(
        f"E6: joint-space capacity ablation (scenes n=400, composed queries, recall@{K})",
        ["framework", "joint dim", "recall"],
    )
    for dim in CLIP_DIMS:
        table.add_row(["je", dim, je_recalls[dim]])
    table.add_row(["must (unimodal)", "n/a", must_recall])
    report(table)

    # JE's quality must track the joint space's capacity...
    assert je_recalls[48] > je_recalls[8]
    # ...while the multi-vector representation stays clear of the most
    # compressed joint spaces.
    assert must_recall > je_recalls[8]

    kb = generate_knowledge_base(DatasetSpec(domain="scenes", size=150, seed=7))
    clip = SimulatedClipEncoder(kb.render_model.image, output_dim=16, seed=3)
    encoder_set = EncoderSet({Modality.TEXT: clip, Modality.IMAGE: clip}, name="tiny")

    def je_setup():
        framework = build_framework("je")
        framework.setup(kb, encoder_set, lambda: build_index("flat"))
        return framework

    benchmark(je_setup)
