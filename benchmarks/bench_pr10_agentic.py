"""PR 10 — agentic multi-hop answering: groundedness and answer recall.

Claims pinned here:

* **Higher oracle groundedness on multi-concept questions.**  Per target
  concept, an answer is oracle-grounded when it cites at least one
  object from that concept's true top-k.  The agentic answerer's
  per-concept claims (each backed by its own retrieval hop) score at
  least as high as single-hop answers judged the same way, and strictly
  higher in aggregate.
* **No answer-recall regression.**  The cross-hop fusion (original query
  at double stream weight plus one hop per concept) recovers at least as
  many ground-truth objects in the final result list as the single-hop
  baseline on the same questions.
* **Every claim cites retrieved evidence.**  No agentic answer ships a
  claim with an empty citation list when its hop retrieved anything.
* **Off by default is bit-identical.**  With ``agentic`` off — even with
  the hop/refinement knobs at non-default values — ``ask_agentic``
  returns exactly the single-hop answer: same text, same result ids.
* **Disabled mode is free.**  Off-mode dispatch is a handful of
  ``is None`` checks; the estimated overhead must stay under 1%.

Results go to stdout, ``benchmarks/results/``, and ``BENCH_PR10.json``
at the repository root.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple

from repro.core import MQAConfig, MQASystem
from repro.data import DatasetSpec, generate_knowledge_base
from repro.data.modality import Modality
from repro.evaluation import ExperimentTable, groundedness_score, text_queries

from benchmarks.conftest import report

BENCH_JSON = Path(__file__).parent.parent / "BENCH_PR10.json"

#: Dispatch work a query crosses with agentic off: the coordinator's
#: ``self.agentic is None`` fall-through, the payload's ``claims`` /
#: ``groundedness`` None checks, and the answer-field defaults — rounded
#: up for headroom.
DISABLED_SITES_PER_QUERY = 6

DATASET = DatasetSpec(domain="scenes", size=240, seed=7)
LEARNING = {"steps": 30, "batch_size": 16, "n_negatives": 6}
INDEX_PARAMS = {"m": 8, "ef_construction": 48}
QUERY_COUNT = 40
CONCEPTS_PER_QUERY = 3
K = 10


def make_system(**overrides) -> Tuple[MQASystem, object]:
    kb = generate_knowledge_base(DATASET)
    config = MQAConfig(
        dataset=DATASET,
        weight_learning=dict(LEARNING),
        index_params=dict(INDEX_PARAMS),
        result_count=K,
        **overrides,
    )
    return MQASystem.from_knowledge_base(kb, config), kb


@dataclass
class PseudoClaim:
    """Single-hop answers judged per concept, like agentic claims are."""

    concept: str
    citations: List[int]


def answer_recall(ids: List[int], gt_ids: List[int]) -> float:
    return len(set(ids) & set(gt_ids)) / len(gt_ids) if gt_ids else 0.0


class _Gate:
    """Stand-in carrying the disabled answerer's dispatch attribute."""

    agentic = None


def _disabled_site_seconds(calls: int = 200_000) -> float:
    """Cost of one disabled dispatch site (attribute read + None check)."""
    gate = _Gate()
    start = time.perf_counter()
    for _ in range(calls):
        if gate.agentic is not None:  # pragma: no cover - never taken
            raise AssertionError
    return (time.perf_counter() - start) / calls


def test_benchmark_pr10_agentic():
    queries = None

    # -- single-hop baseline ----------------------------------------------
    baseline_system, kb = make_system()
    queries = text_queries(
        kb, QUERY_COUNT, k=K, concepts_per_query=CONCEPTS_PER_QUERY, seed=7
    )
    base_recalls, base_claims = [], []
    base_latency = 0.0
    for query in queries:
        baseline_system.reset_dialogue()
        text = str(query.raw.get(Modality.TEXT))
        start = time.perf_counter()
        answer = baseline_system.ask(text, k=K)
        base_latency += time.perf_counter() - start
        ids = [item.object_id for item in answer.items]
        base_recalls.append(answer_recall(ids, query.gt_ids))
        base_claims.extend(
            PseudoClaim(concept=concept, citations=ids)
            for concept in query.target_concepts
        )
    base_groundedness = groundedness_score(kb, base_claims, k=K)
    base_mean_recall = sum(base_recalls) / len(base_recalls)

    # -- agentic run -------------------------------------------------------
    agentic_system, agentic_kb = make_system(agentic=True)
    agentic_recalls, agentic_claims = [], []
    citation_holes = 0
    agentic_latency = 0.0
    for query in queries:
        agentic_system.reset_dialogue()
        text = str(query.raw.get(Modality.TEXT))
        start = time.perf_counter()
        answer = agentic_system.ask_agentic(text, k=K)
        agentic_latency += time.perf_counter() - start
        ids = [item.object_id for item in answer.items]
        agentic_recalls.append(answer_recall(ids, query.gt_ids))
        agentic_claims.extend(answer.claims)
        citation_holes += sum(
            1 for claim in answer.claims if not claim.citations
        )
    agentic_groundedness = groundedness_score(agentic_kb, agentic_claims, k=K)
    agentic_mean_recall = sum(agentic_recalls) / len(agentic_recalls)
    snapshot = agentic_system.coordinator.agentic.snapshot()

    # -- off-mode bit-identity (knobs at non-defaults, flag off) ----------
    plain_system, _ = make_system()
    knobbed_system, _ = make_system(
        agentic=False, agentic_max_hops=2, agentic_refine_rounds=3
    )
    parity = True
    for query in queries[:10]:
        plain_system.reset_dialogue()
        knobbed_system.reset_dialogue()
        text = str(query.raw.get(Modality.TEXT))
        plain = plain_system.ask(text, k=K)
        agentic_off = knobbed_system.ask_agentic(text, k=K)
        if plain.text != agentic_off.text or [
            i.object_id for i in plain.items
        ] != [i.object_id for i in agentic_off.items]:
            parity = False

    # -- disabled overhead -------------------------------------------------
    site_cost = _disabled_site_seconds()
    per_query_s = base_latency / len(queries)
    estimated_overhead_pct = (
        DISABLED_SITES_PER_QUERY * site_cost / per_query_s * 100.0
    )

    groundedness_uplift = (
        agentic_groundedness / base_groundedness
        if base_groundedness
        else float("inf")
    )
    recall_ratio = (
        agentic_mean_recall / base_mean_recall
        if base_mean_recall
        else float("inf")
    )

    table = ExperimentTable(
        "PR10: agentic multi-hop answering "
        f"({QUERY_COUNT} questions x {CONCEPTS_PER_QUERY} concepts, k={K})",
        ["run", "groundedness", "answer recall", "claims", "supported"],
    )
    table.add_row(
        ["single-hop", round(base_groundedness, 4),
         round(base_mean_recall, 4), len(base_claims), "-"]
    )
    table.add_row(
        ["agentic", round(agentic_groundedness, 4),
         round(agentic_mean_recall, 4), len(agentic_claims),
         snapshot["supported_claims"]]
    )
    table.add_row(
        ["groundedness uplift", round(groundedness_uplift, 3), "", "", ""]
    )
    table.add_row(["recall ratio", round(recall_ratio, 3), "", "", ""])
    table.add_row(["off-mode parity", parity, "", "", ""])
    table.add_row(
        ["est. disabled overhead %", round(estimated_overhead_pct, 4),
         "", "", ""]
    )
    report(table)

    BENCH_JSON.write_text(
        json.dumps(
            {
                "scenario": {
                    "domain": DATASET.domain,
                    "size": DATASET.size,
                    "seed": DATASET.seed,
                    "queries": QUERY_COUNT,
                    "concepts_per_query": CONCEPTS_PER_QUERY,
                    "k": K,
                },
                "single_hop": {
                    "groundedness": round(base_groundedness, 4),
                    "answer_recall": round(base_mean_recall, 4),
                    "claims": len(base_claims),
                },
                "agentic": {
                    "groundedness": round(agentic_groundedness, 4),
                    "answer_recall": round(agentic_mean_recall, 4),
                    "claims": len(agentic_claims),
                    "supported_claims": snapshot["supported_claims"],
                    "refined_claims": snapshot["refined_claims"],
                    "hops": snapshot["hops"],
                    "mean_self_groundedness": snapshot["mean_groundedness"],
                },
                "groundedness_uplift": round(groundedness_uplift, 4),
                "recall_ratio": round(recall_ratio, 4),
                "citation_holes": citation_holes,
                "off_mode_bit_identical": parity,
                "disabled_site_ns": round(site_cost * 1e9, 2),
                "disabled_sites_per_query": DISABLED_SITES_PER_QUERY,
                "estimated_disabled_overhead_pct": round(
                    estimated_overhead_pct, 4
                ),
            },
            indent=2,
        )
        + "\n"
    )

    # Higher oracle groundedness on multi-concept questions.
    assert groundedness_uplift >= 1.05, (
        f"agentic groundedness {agentic_groundedness:.4f} is not a clear "
        f"uplift over single-hop {base_groundedness:.4f}"
    )
    # No answer-recall regression from cross-hop fusion.
    assert recall_ratio >= 1.0, (
        f"agentic answer recall {agentic_mean_recall:.4f} regressed vs "
        f"single-hop {base_mean_recall:.4f}"
    )
    # Every claim cites retrieved evidence.
    assert citation_holes == 0, f"{citation_holes} claims cite nothing"
    # Off by default is bit-identical.
    assert parity, "agentic-off answers diverged from the single-hop path"
    # Disabled mode is free.
    assert estimated_overhead_pct < 1.0, (
        f"disabled agentic layer adds {estimated_overhead_pct:.3f}% per query"
    )
