"""E7 — rank-fusion ablation for Multi-streamed Retrieval.

MR's quality hinges on how the per-modality rankings are merged; this
ablation compares RRF, CombSUM, and round-robin on the composed workload
(and, for context, MUST's merging-free result).  Expected shape: the
score-aware and rank-aware fusions beat naive interleaving, and *all* of
them trail MUST — the merging step itself is the bottleneck the paper's
framework removes.
"""

from __future__ import annotations

import pytest

from repro.evaluation import ExperimentTable, composed_queries, evaluate_framework
from repro.index import build_index
from repro.retrieval import FusionStrategy, build_framework

from benchmarks.conftest import HNSW_PARAMS, report

K = 10
N_QUERIES = 40


@pytest.fixture(scope="module")
def fusion_scores(scenes_world):
    kb, encoder_set, weights = scenes_world
    workload = composed_queries(kb, N_QUERIES, k=K, seed=2)
    builder = lambda: build_index("hnsw", HNSW_PARAMS)

    scores = {}
    for strategy in FusionStrategy:
        framework = build_framework("mr", {"fusion": strategy.value})
        framework.setup(kb, encoder_set, builder, weights=weights)
        scores[f"mr/{strategy.value}"] = evaluate_framework(
            framework, workload, k=K
        ).recall

    # The strongest MR variant: learned weights applied at fusion time.
    weighted_mr = build_framework("mr", {"fusion": "rrf"})
    weighted_mr.setup(kb, encoder_set, builder, weights=weights)
    import time

    from repro.evaluation import recall_at_k

    total = 0.0
    for query in workload:
        fetch = K + (1 if query.reference_id is not None else 0)
        response = weighted_mr.retrieve(
            query.raw, k=fetch, budget=64, weights=weights
        )
        ids = [i for i in response.ids if i != query.reference_id][:K]
        total += recall_at_k(ids, query.gt_ids, K)
    scores["mr/rrf + learned stream weights"] = total / len(workload)

    must = build_framework("must")
    must.setup(kb, encoder_set, builder, weights=weights)
    scores["must (merging-free)"] = evaluate_framework(must, workload, k=K).recall
    return scores


def test_benchmark_e7(benchmark, fusion_scores, scenes_world):
    """Regenerates the fusion ablation and times an RRF retrieval."""
    kb, encoder_set, weights = scenes_world
    table = ExperimentTable(
        f"E7: MR fusion-strategy ablation (scenes n={len(kb)}, "
        f"composed queries, recall@{K})",
        ["configuration", "recall"],
    )
    for name, recall in fusion_scores.items():
        table.add_row([name, recall])
    report(table)

    # Naive interleaving must not beat the principled fusions, and no
    # fusion variant — even with learned stream weights — reaches the
    # merging-free search.
    best_fusion = max(
        fusion_scores[k] for k in fusion_scores if k.startswith("mr/")
    )
    assert fusion_scores["mr/round_robin"] <= best_fusion
    assert fusion_scores["must (merging-free)"] > best_fusion

    from repro.data import RawQuery

    framework = build_framework("mr", {"fusion": "rrf"})
    framework.setup(
        kb, encoder_set, lambda: build_index("hnsw", HNSW_PARAMS), weights=weights
    )
    query = RawQuery.from_text("foggy clouds")
    benchmark(lambda: framework.retrieve(query, k=K, budget=64))
