"""E9 — scalar-quantization ablation (memory vs accuracy).

Disk-resident serving (E4/Starling territory) pays per-byte; scalar
quantization shrinks vector storage ~8x (SQ8) or ~16x (SQ4) at some
accuracy cost.  This ablation builds the unified multi-vector index over
original, SQ8-decoded, and SQ4-decoded vectors and measures recall against
the full-precision ground truth.  Expected shape: SQ8 is near-lossless,
SQ4 visibly degrades — the standard trade vector databases expose.
"""

from __future__ import annotations

import pytest

from repro.data import DatasetSpec, generate_knowledge_base
from repro.distance import MultiVectorSchema, WeightedMultiVectorKernel
from repro.encoders import build_encoder_set
from repro.evaluation import ExperimentTable, exact_knn
from repro.index import MustGraphIndex, MustGraphParams, ScalarQuantizer
from repro.utils import derive_rng

from benchmarks.conftest import report

K = 10
N_QUERIES = 30


@pytest.fixture(scope="module")
def quantization_sweep():
    kb = generate_knowledge_base(DatasetSpec(domain="scenes", size=800, seed=7))
    encoder_set = build_encoder_set("clip-joint", kb, seed=3)
    schema = MultiVectorSchema(encoder_set.dims())
    kernel = WeightedMultiVectorKernel(schema, [0.9, 1.1])
    corpus = kernel.stack_corpus(encoder_set.encode_corpus(list(kb)))

    rng = derive_rng(13, "e9-queries")
    query_ids = rng.choice(len(kb), size=N_QUERIES, replace=False)
    queries = corpus[query_ids] + 0.05 * rng.standard_normal(
        (N_QUERIES, corpus.shape[1])
    )
    truth = exact_knn(corpus, kernel.with_weights([0.9, 1.1]), queries, k=K)

    rows = []
    indexes = {}
    for label, bits in (("float64", None), ("sq8", 8), ("sq4", 4)):
        if bits is None:
            stored = corpus
            ratio = 1.0
            error = 0.0
        else:
            quantizer = ScalarQuantizer(bits).fit(corpus)
            stored = quantizer.decode(quantizer.encode(corpus))
            quant_report = quantizer.report(corpus)
            ratio = quant_report.compression_ratio
            error = quant_report.mean_reconstruction_error
        index = MustGraphIndex(
            MustGraphParams(max_degree=12, candidate_pool=32, build_budget=48)
        )
        index.build(stored, kernel.with_weights([0.9, 1.1]))
        recall = 0.0
        for query, gt in zip(queries, truth):
            result = index.search(query, k=K, budget=64)
            recall += len(set(result.ids) & set(gt)) / K
        rows.append((label, ratio, error, recall / N_QUERIES))
        indexes[label] = index
    return rows, indexes, queries


def test_benchmark_e9(benchmark, quantization_sweep):
    """Regenerates the compression sweep and times a search on SQ8 data."""
    rows, indexes, queries = quantization_sweep
    table = ExperimentTable(
        f"E9: scalar-quantization ablation (scenes n=800, unified index, recall@{K})",
        ["storage", "compression", "reconstruction err", "recall vs fp ground truth"],
    )
    for row in rows:
        table.add_row(list(row))
    report(table)

    recalls = {label: recall for label, _, _, recall in rows}
    # SQ8 must be near-lossless; SQ4 coarser than SQ8.
    assert recalls["sq8"] >= recalls["float64"] - 0.05
    assert recalls["sq4"] <= recalls["sq8"] + 0.02
    errors = {label: error for label, _, error, _ in rows}
    assert errors["sq4"] > errors["sq8"] > 0.0

    sq8 = indexes["sq8"]
    benchmark(lambda: sq8.search(queries[0], k=K, budget=64))
