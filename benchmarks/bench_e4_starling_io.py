"""E4 — Starling's block-shuffled disk layout vs a naive layout.

Both variants share the same inner Vamana graph; only the vertex-to-block
assignment differs.  Expected shape (the Starling paper's headline): the
neighbour-packing layout reads markedly fewer blocks per query because one
block fetch prefetches the vertices the traversal needs next, and the
buffer cache hits more often.
"""

from __future__ import annotations

import pytest

from repro.data import DatasetSpec, generate_knowledge_base
from repro.distance import SingleVectorKernel
from repro.encoders import build_encoder_set
from repro.evaluation import ExperimentTable
from repro.index import StarlingIndex, StarlingParams
from repro.index.vamana import VamanaParams
from repro.utils import derive_rng

from benchmarks.conftest import report

K = 10
BUDGET = 64
N_QUERIES = 30
INNER = VamanaParams(max_degree=12, candidate_pool=32, build_budget=48)


@pytest.fixture(scope="module")
def disk_world():
    kb = generate_knowledge_base(DatasetSpec(domain="scenes", size=1000, seed=7))
    encoder_set = build_encoder_set("clip-joint", kb, seed=3)
    corpus = encoder_set.encode_corpus(list(kb))["image"]
    rng = derive_rng(4, "e4-queries")
    query_ids = rng.choice(len(kb), size=N_QUERIES, replace=False)
    queries = corpus[query_ids] + 0.05 * rng.standard_normal(
        (N_QUERIES, corpus.shape[1])
    )

    variants = {}
    for label, shuffled in (("shuffled", True), ("naive", False)):
        index = StarlingIndex(
            StarlingParams(block_size=16, cache_blocks=8, shuffled=shuffled, inner=INNER)
        )
        index.build(corpus, SingleVectorKernel(corpus.shape[1]))
        variants[label] = index
    return variants, queries


def measure(index, queries) -> "tuple[float, float, float]":
    index.device.reset()
    reads = 0
    hits = 0
    amplification = 0.0
    for query in queries:
        result = index.search(query, k=K, budget=BUDGET)
        reads += result.stats.block_reads
        hits += result.stats.cache_hits
        amplification += index.io_amplification(result)
    count = len(queries)
    return reads / count, hits / count, amplification / count


def test_benchmark_e4(benchmark, disk_world):
    """Regenerates the I/O table and times a disk-resident search."""
    variants, queries = disk_world
    table = ExperimentTable(
        f"E4: Starling block I/O (n=1000, block=16 vectors, cache=8 blocks, "
        f"budget={BUDGET})",
        ["layout", "block reads/query", "cache hits/query", "I/O amplification"],
    )
    measured = {}
    for label, index in variants.items():
        reads, hits, amplification = measure(index, queries)
        table.add_row([label, reads, hits, amplification])
        measured[label] = (reads, hits, amplification)
    report(table)

    # The shuffled layout must cut block reads and raise cache hits.
    assert measured["shuffled"][0] < measured["naive"][0]
    assert measured["shuffled"][1] > measured["naive"][1]

    shuffled = variants["shuffled"]
    benchmark(lambda: shuffled.search(queries[0], k=K, budget=BUDGET))
