"""E8 — LLM-guided query-rewriting ablation.

Users rarely restate their full intent each round; follow-ups like "more
like this one, please" carry almost no lexical signal.  This ablation runs
scripted dialogues whose round-two text is deliberately vague and compares
round-two recall with conversational query rewriting on vs off.  Expected
shape: rewriting recovers most of the recall that explicit restatement
would give, because the carried concepts restore the text modality's
contribution to the weighted multi-vector distance.
"""

from __future__ import annotations

import pytest

from repro.core import MQAConfig, MQASystem
from repro.data import DatasetSpec
from repro.evaluation import ExperimentTable, recall_at_k
from repro.utils import derive_rng

from benchmarks.conftest import HNSW_PARAMS, report

K = 5
N_DIALOGUES = 25
VAGUE_TEXT = "i like this one, more please"


def run_dialogues(query_rewriting: bool) -> float:
    config = MQAConfig(
        dataset=DatasetSpec(domain="scenes", size=400, seed=7),
        weight_learning={"steps": 25, "batch_size": 12},
        index_params=dict(HNSW_PARAMS),
        result_count=K,
        query_rewriting=query_rewriting,
    )
    system = MQASystem.from_config(config)
    kb = system.kb
    rng = derive_rng(11, "e8-dialogues")
    total = 0.0
    for _ in range(N_DIALOGUES):
        system.reset_dialogue()
        anchor = kb.get(int(rng.integers(len(kb))))
        concepts = list(anchor.concepts[:2])
        system.ask("i would like " + " ".join(concepts))
        selected_id = system.select(0)
        answer = system.refine(VAGUE_TEXT)
        selected = kb.get(selected_id)
        target = list(dict.fromkeys(list(selected.concepts) + concepts))
        gt = kb.ground_truth_for_concepts(target, K, exclude=[selected_id])
        total += recall_at_k(answer.ids, gt, K)
    return total / N_DIALOGUES


@pytest.fixture(scope="module")
def ablation():
    return {"rewriting on": run_dialogues(True), "rewriting off": run_dialogues(False)}


def test_benchmark_e8(benchmark, ablation):
    """Regenerates the rewriting ablation and times one rewritten round."""
    table = ExperimentTable(
        f"E8: query-rewriting ablation (scenes n=400, {N_DIALOGUES} vague "
        f"dialogues, recall@{K})",
        ["configuration", "round-2 recall"],
    )
    for label, recall in ablation.items():
        table.add_row([label, recall])
    report(table)

    assert ablation["rewriting on"] > ablation["rewriting off"]

    config = MQAConfig(
        dataset=DatasetSpec(domain="scenes", size=200, seed=7),
        weight_learning={"steps": 15, "batch_size": 8},
        index_params=dict(HNSW_PARAMS),
        query_rewriting=True,
    )
    system = MQASystem.from_config(config)

    def vague_round():
        system.reset_dialogue()
        system.ask("foggy clouds")
        system.select(0)
        return system.refine(VAGUE_TEXT)

    benchmark(vague_round)
